//! # kcore — order-based core maintenance for dynamic graphs
//!
//! A from-scratch Rust implementation of
//! *"A Fast Order-Based Approach for Core Maintenance"*
//! (Zhang, Yu, Zhang, Qin — ICDE 2017), including every substrate the
//! paper depends on: the dynamic graph store, the `O(m + n)` core
//! decomposition, the k-order index (order-statistics treaps + intrusive
//! lists + jump heap), the traversal baseline family (`Trav-h`), synthetic
//! workload generators, and a benchmark harness regenerating every table
//! and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use kcore::OrderCore;
//! use kcore::graph::DynamicGraph;
//!
//! // A path 0-1-2: every vertex is in the 1-core only.
//! let mut g = DynamicGraph::with_vertices(3);
//! g.insert_edge(0, 1).unwrap();
//! g.insert_edge(1, 2).unwrap();
//!
//! let mut cores = OrderCore::new(g, 42);
//! assert_eq!(cores.cores(), &[1, 1, 1]);
//!
//! // Closing the triangle promotes everyone to the 2-core …
//! cores.insert_edge(2, 0).unwrap();
//! assert_eq!(cores.cores(), &[2, 2, 2]);
//!
//! // … and removing any edge demotes them again.
//! cores.remove_edge(0, 1).unwrap();
//! assert_eq!(cores.cores(), &[1, 1, 1]);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `kcore-graph` | dynamic graph, I/O, fixtures, stats |
//! | [`order`] | `kcore-order` | treap `A_k`, lists `O_k`, jump heap, tag list |
//! | [`decomp`] | `kcore-decomp` | decomposition, k-order generation, `sc`/`pc`/`oc` |
//! | [`traversal`] | `kcore-traversal` | the Sariyüce et al. baseline, `Trav-h` |
//! | [`maint`] | `kcore-maint` | `OrderInsert` / `OrderRemoval` (the paper) |
//! | [`gen`] | `kcore-gen` | generators, dataset registry, samplers |
//! | [`ingest`] | `kcore-ingest` | streaming ingest service, snapshots, durability |
//! | [`obs`] | `kcore-obs` | metrics registry, latency histograms, span tracing |

pub use kcore_decomp as decomp;
pub use kcore_gen as gen;
pub use kcore_graph as graph;
pub use kcore_ingest as ingest;
pub use kcore_maint as maint;
pub use kcore_obs as obs;
pub use kcore_order as order;
pub use kcore_traversal as traversal;

pub use kcore_decomp::{core_decomposition, korder_decomposition, Heuristic};
pub use kcore_graph::{DynamicGraph, VertexId};
pub use kcore_graph::{HashShardMap, RangeShardMap, ShardMap};
pub use kcore_ingest::{
    CoreSnapshot, GraphEvent, IngestConfig, IngestService, MergedHandle, MergedSnapshot, ObsConfig,
    ShardRouter,
};
pub use kcore_maint::{
    CoreMaintainer, PlanPolicy, PlannedTreapCore, PlannerConfig, RecomputeCore, SkipOrderCore,
    TagOrderCore, TreapOrderCore, UpdateStats,
};
pub use kcore_obs::{Histogram, MetricsRegistry, MetricsSnapshot, SpanRecorder};
pub use kcore_traversal::{SubCoreAlgo, TraversalCore};

/// The default order-based maintenance engine (treap-backed `A_k`).
pub type OrderCore = kcore_maint::TreapOrderCore;
