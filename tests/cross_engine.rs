//! Property-based cross-validation: all three maintenance engines (order,
//! traversal at several hop counts, naive recompute) must agree on every
//! core number after every update, for arbitrary graphs and update
//! sequences.

use kcore::graph::DynamicGraph;
use kcore::{
    CoreMaintainer, OrderCore, RecomputeCore, SkipOrderCore, SubCoreAlgo, TagOrderCore,
    TraversalCore,
};
use proptest::prelude::*;

/// A random simple graph as a deduplicated edge list over `n` vertices.
fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut seen = std::collections::HashSet::new();
        pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .filter(|e| seen.insert(*e))
            .collect()
    })
}

/// A sequence of updates: `true` = try-insert a random pair, `false` =
/// remove a random currently-present edge (index into the live list).
fn arb_updates(n: u32, len: usize) -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    prop::collection::vec((any::<bool>(), 0..n, 0..n), 0..len)
}

fn build_graph(n: u32, edges: &[(u32, u32)]) -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(n as usize);
    for &(a, b) in edges {
        g.insert_edge_unchecked(a, b);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_under_churn(
        edges in arb_graph(20, 60),
        updates in arb_updates(20, 60),
    ) {
        let g = build_graph(20, &edges);
        let mut order = OrderCore::new(g.clone(), 1);
        let mut tag: TagOrderCore = TagOrderCore::new(g.clone(), 1);
        let mut skip: SkipOrderCore = SkipOrderCore::new(g.clone(), 1);
        let mut sub = SubCoreAlgo::new(g.clone());
        let mut trav2 = TraversalCore::new(g.clone(), 2);
        let mut trav4 = TraversalCore::new(g.clone(), 4);
        let mut oracle = RecomputeCore::new(g.clone());
        let mut present: Vec<(u32, u32)> = g.edge_vec();

        for (ins, a, b) in updates {
            if ins {
                if a == b || oracle.graph_ref().has_edge(a, b) {
                    continue;
                }
                order.insert(a, b).unwrap();
                tag.insert(a, b).unwrap();
                skip.insert(a, b).unwrap();
                sub.insert(a, b).unwrap();
                trav2.insert(a, b).unwrap();
                trav4.insert(a, b).unwrap();
                oracle.insert(a, b).unwrap();
                present.push((a, b));
            } else {
                if present.is_empty() {
                    continue;
                }
                let idx = (a as usize * 31 + b as usize) % present.len();
                let (x, y) = present.swap_remove(idx);
                order.remove(x, y).unwrap();
                tag.remove(x, y).unwrap();
                skip.remove(x, y).unwrap();
                sub.remove(x, y).unwrap();
                trav2.remove(x, y).unwrap();
                trav4.remove(x, y).unwrap();
                oracle.remove(x, y).unwrap();
            }
            prop_assert_eq!(order.core_slice(), oracle.core_slice());
            prop_assert_eq!(tag.core_slice(), oracle.core_slice());
            prop_assert_eq!(skip.core_slice(), oracle.core_slice());
            prop_assert_eq!(sub.core_slice(), oracle.core_slice());
            prop_assert_eq!(trav2.core_slice(), oracle.core_slice());
            prop_assert_eq!(trav4.core_slice(), oracle.core_slice());
        }
        // Deep index invariants at the end of the run.
        order.validate();
        tag.validate();
        skip.validate();
        sub.validate();
        trav2.validate();
        trav4.validate();
    }

    #[test]
    fn order_index_invariants_hold_after_every_update(
        edges in arb_graph(14, 40),
        updates in arb_updates(14, 40),
    ) {
        let g = build_graph(14, &edges);
        let mut order = OrderCore::new(g, 3);
        let mut present = order.graph().edge_vec();
        for (ins, a, b) in updates {
            if ins {
                if a != b && !order.graph().has_edge(a, b) {
                    order.insert_edge(a, b).unwrap();
                    present.push((a.min(b), a.max(b)));
                }
            } else if !present.is_empty() {
                let idx = (a as usize * 17 + b as usize) % present.len();
                let (x, y) = present.swap_remove(idx);
                order.remove_edge(x, y).unwrap();
            }
            // validate() asserts Lemma 5.1, deg+, mcd, list/treap
            // agreement, and core correctness.
            order.validate();
        }
    }

    #[test]
    fn theorem_3_1_single_step_delta(
        edges in arb_graph(16, 50),
        extra in (0u32..16, 0u32..16),
    ) {
        // Inserting (removing) one edge changes each core number by at
        // most 1, never negatively (positively).
        let g = build_graph(16, &edges);
        let (a, b) = extra;
        prop_assume!(a != b && !g.has_edge(a, b));
        let mut order = OrderCore::new(g, 2);
        let before = order.cores().to_vec();
        order.insert_edge(a, b).unwrap();
        for (v, &b0) in before.iter().enumerate() {
            let d = order.cores()[v] as i64 - b0 as i64;
            prop_assert!((0..=1).contains(&d));
        }
        let mid = order.cores().to_vec();
        order.remove_edge(a, b).unwrap();
        for (v, &m0) in mid.iter().enumerate() {
            let d = m0 as i64 - order.cores()[v] as i64;
            prop_assert!((0..=1).contains(&d));
        }
        // Full revert.
        prop_assert_eq!(order.cores(), &before[..]);
    }

    #[test]
    fn insert_remove_sequences_are_invertible(
        edges in arb_graph(18, 50),
        new_edges in prop::collection::vec((0u32..18, 0u32..18), 1..12),
    ) {
        let g = build_graph(18, &edges);
        let mut order = OrderCore::new(g.clone(), 9);
        let before = order.cores().to_vec();
        let mut applied = Vec::new();
        for (a, b) in new_edges {
            if a != b && !order.graph().has_edge(a, b) {
                order.insert_edge(a, b).unwrap();
                applied.push((a, b));
            }
        }
        for &(a, b) in applied.iter().rev() {
            order.remove_edge(a, b).unwrap();
        }
        prop_assert_eq!(order.cores(), &before[..]);
        order.validate();
    }
}
