//! Miniature end-to-end runs of every experiment pipeline (the binaries in
//! `kcore-bench`), at tiny scale, asserting the *shape* each figure/table
//! relies on rather than wall-clock numbers.

use kcore::decomp::regions::{ordercore_sizes, purecore_sizes, subcore_sizes};
use kcore::decomp::{core_decomposition, korder_decomposition, max_core, Heuristic};
use kcore::gen::sample::{induced_vertex_sample, sample_edge_subgraph, sample_vertices};
use kcore::gen::{load_dataset, Scale, DATASETS};
use kcore::graph::stats::fig1_buckets;
use kcore::{CoreMaintainer, OrderCore, TraversalCore};

fn insert_all<M: CoreMaintainer>(engine: &mut M, stream: &[(u32, u32)]) -> (usize, usize) {
    let mut visited = 0;
    let mut changed = 0;
    for &(u, v) in stream {
        let s = engine.insert(u, v).unwrap();
        visited += s.visited;
        changed += s.changed;
    }
    (visited, changed)
}

/// Table I pipeline: every dataset generates, has sane statistics, and
/// max k is ordered the way the paper's families are.
#[test]
fn table1_pipeline() {
    let mut max_k = std::collections::HashMap::new();
    for d in &DATASETS {
        let ds = load_dataset(d.name, Scale::Tiny, 100);
        let g = ds.full_graph();
        let core = core_decomposition(&g);
        max_k.insert(d.name, max_core(&core));
        assert!(g.num_edges() > 0);
    }
    // road network shallow, dense social deepest — the family contrast
    // every experiment depends on.
    assert!(max_k["ca"] <= 3);
    assert!(max_k["orkut"] > 3 * max_k["ca"]);
}

/// Fig 1 + Fig 2 pipeline on one heavy-tailed dataset: order
/// concentrates in the small buckets, traversal has tail mass; ratios
/// ordered the paper's way.
#[test]
fn fig1_fig2_pipeline() {
    let ds = load_dataset("patents", Scale::Tiny, 400);
    let mut trav = TraversalCore::new(ds.base.clone(), 2);
    let mut order = OrderCore::new(ds.base.clone(), 7);
    let mut tv = Vec::new();
    let mut ov = Vec::new();
    for &(u, v) in &ds.stream {
        tv.push(trav.insert(u, v).unwrap().visited);
        ov.push(order.insert(u, v).unwrap().visited);
    }
    assert_eq!(order.core_slice(), trav.core_slice());
    let tb = fig1_buckets(&tv);
    let ob = fig1_buckets(&ov);
    // order: essentially nothing beyond the <=100 bucket (tiny-scale
    // tie-breaking can leave a sliver in <=1000), never >1000;
    // traversal: real mass past <=10.
    assert_eq!(ob[4], 0.0, "order visited >1000 vertices: {ob:?}");
    assert!(ob[3] < 0.02, "order tail too heavy: {ob:?}");
    assert!(
        tb[2] + tb[3] + tb[4] > 0.0,
        "traversal should spill past <=10 on a citation-family graph: {tb:?}"
    );
    // Fig 2 ratios.
    let tsum: usize = tv.iter().sum();
    let osum: usize = ov.iter().sum();
    assert!(tsum > 3 * osum, "traversal {tsum} vs order {osum}");
}

/// Fig 5 pipeline: oc has a lighter tail than pc and sc.
#[test]
fn fig5_pipeline() {
    let g = load_dataset("patents", Scale::Tiny, 10).full_graph();
    let core = core_decomposition(&g);
    let sc = subcore_sizes(&g, &core);
    let pc = purecore_sizes(&g, &core);
    let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
    let sample = sample_vertices(&g, 800, 5);
    let oc = ordercore_sizes(&g, &ko, &sample);
    // Compare all three on the same vertex sample.
    let pc_s: Vec<u32> = sample.iter().map(|&v| pc[v as usize]).collect();
    let sc_s: Vec<u32> = sample.iter().map(|&v| sc[v as usize]).collect();
    let frac = |xs: &[u32], t: u32| xs.iter().filter(|&&x| x <= t).count() as f64 / xs.len() as f64;
    // At thresholds 10/100: oc >= pc >= sc concentration (paper Fig 5).
    for t in [10, 100] {
        assert!(frac(&oc, t) >= frac(&pc_s, t), "t={t}");
        assert!(frac(&pc_s, t) >= frac(&sc_s, t) - 1e-9, "t={t}");
    }
}

/// Fig 9 pipeline: small-deg+-first yields the smallest |V+|/|V*|.
#[test]
fn fig9_pipeline() {
    let ds = load_dataset("gowalla", Scale::Tiny, 400);
    let mut ratios = Vec::new();
    for h in Heuristic::ALL {
        let mut engine = kcore::maint::OrderCore::<kcore::order::OrderTreap>::with_heuristic(
            ds.base.clone(),
            h,
            9,
        );
        let (visited, changed) = insert_all(&mut engine, &ds.stream);
        ratios.push(visited as f64 / changed.max(1) as f64);
    }
    // small (index 0) <= large and <= random, with a small tolerance for
    // tie-breaking noise at tiny scale.
    assert!(
        ratios[0] <= ratios[1] * 1.15 && ratios[0] <= ratios[2] * 1.15,
        "heuristic ratios out of order: {ratios:?}"
    );
}

/// Fig 10 pipeline: the sampled K values span more than one core level.
#[test]
fn fig10_pipeline() {
    let ds = load_dataset("livejournal", Scale::Tiny, 300);
    let g = ds.full_graph();
    let core = core_decomposition(&g);
    let ks: std::collections::HashSet<u32> = ds
        .stream
        .iter()
        .map(|&(u, v)| core[u as usize].min(core[v as usize]))
        .collect();
    assert!(ks.len() > 3, "K diversity too low: {ks:?}");
}

/// Fig 11 pipeline: sampled subgraphs behave (sizes monotone in ratio)
/// and insertion on them completes.
#[test]
fn fig11_pipeline() {
    let g = load_dataset("orkut", Scale::Tiny, 10).full_graph();
    let v20 = induced_vertex_sample(&g, 0.2, 3);
    let v80 = induced_vertex_sample(&g, 0.8, 3);
    assert!(v20.num_edges() < v80.num_edges());
    let e20 = sample_edge_subgraph(&g, 0.2, 3);
    let e80 = sample_edge_subgraph(&g, 0.8, 3);
    assert!(e20.num_edges() < e80.num_edges());
    let mut engine = OrderCore::new(e80, 3);
    engine.insert_edge(0, 1).ok(); // may be duplicate — just exercise
    engine.validate();
}

/// Table II pipeline (counts, not time): order visits less than Trav-2 on
/// insertion for a heavy-tailed dataset, and both agree.
#[test]
fn table2_pipeline() {
    let ds = load_dataset("google", Scale::Tiny, 300);
    let mut order = OrderCore::new(ds.base.clone(), 11);
    let mut trav = TraversalCore::new(ds.base.clone(), 2);
    let (ov, _) = insert_all(&mut order, &ds.stream);
    let (tv, _) = insert_all(&mut trav, &ds.stream);
    assert_eq!(order.core_slice(), trav.core_slice());
    assert!(ov <= tv);
    // Removal leg: run backwards, engines stay in lockstep.
    for &(u, v) in ds.stream.iter().rev() {
        order.remove(u, v).unwrap();
        trav.remove(u, v).unwrap();
    }
    assert_eq!(order.core_slice(), trav.core_slice());
}

/// Table III pipeline: both index builders produce consistent engines on
/// the full graph.
#[test]
fn table3_pipeline() {
    let g = load_dataset("facebook", Scale::Tiny, 10).full_graph();
    let order = OrderCore::new(g.clone(), 1);
    order.validate();
    for h in [2, 4, 6] {
        let trav = TraversalCore::new(g.clone(), h);
        trav.validate();
        assert_eq!(trav.cores(), order.cores());
    }
}

/// Stability pipeline (Fig 12): sustained churn does not degrade the
/// index invariants.
#[test]
fn fig12_pipeline() {
    use kcore::gen::sample::{EdgeSampler, Op};
    use kcore::gen::sample_edges;
    let full = load_dataset("dblp", Scale::Tiny, 10).full_graph();
    let pool = sample_edges(&full, 1500, 77);
    let mut base = full.clone();
    for &(u, v) in &pool {
        base.remove_edge(u, v).unwrap();
    }
    let mut engine = OrderCore::new(base, 7);
    let mut sampler = EdgeSampler::new(pool, 8);
    let mut step = 0u32;
    while let Some(Op::Insert(u, v)) = sampler.next_insert() {
        engine.insert_edge(u, v).unwrap();
        if let Some(Op::Remove(a, b)) = sampler.maybe_remove(0.2) {
            engine.remove_edge(a, b).unwrap();
        }
        step += 1;
        if step.is_multiple_of(500) {
            engine.validate();
        }
    }
    engine.validate();
}
