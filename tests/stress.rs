//! Dataset-wide stress: every registry dataset is driven through a full
//! insert-then-remove cycle with deep validation checkpoints, a windowed
//! replay, and journaled deltas — the "does the whole system hold
//! together" test.

use kcore::gen::temporal::{SlidingWindow, WindowOp};
use kcore::gen::{load_dataset, timestamp_edges, Scale, DATASETS};
use kcore::maint::journal::Journaled;
use kcore::{CoreMaintainer, OrderCore};

/// Full cycle on all eleven datasets (tiny scale): insert the stream,
/// validate, remove it, validate, and check the engine returned exactly
/// to its baseline.
#[test]
fn all_datasets_full_cycle() {
    for d in &DATASETS {
        let ds = load_dataset(d.name, Scale::Tiny, 400);
        let mut engine = OrderCore::new(ds.base.clone(), 1);
        let baseline = engine.cores().to_vec();
        for &(u, v) in &ds.stream {
            engine.insert_edge(u, v).unwrap();
        }
        engine.validate();
        for &(u, v) in ds.stream.iter().rev() {
            engine.remove_edge(u, v).unwrap();
        }
        engine.validate();
        assert_eq!(engine.cores(), &baseline[..], "{} did not revert", d.name);
    }
}

/// Sliding-window replay over a temporal dataset: the maintained cores
/// must equal a from-scratch decomposition of the live window at several
/// checkpoints.
#[test]
fn sliding_window_replay_stays_exact() {
    let ds = load_dataset("youtube", Scale::Tiny, 10);
    let full = ds.full_graph();
    let stamped = timestamp_edges(&full, 4, 7);
    let horizon = stamped.last().unwrap().t / 3;
    let mut window = SlidingWindow::new(stamped, horizon);
    let n = full.num_vertices();
    let mut engine = OrderCore::new(kcore::DynamicGraph::with_vertices(n), 3);
    let mut steps = 0usize;
    while let Some(op) = window.step() {
        match op {
            WindowOp::Admit(u, v) => {
                engine.insert_edge(u, v).unwrap();
            }
            WindowOp::Expire(u, v) => {
                engine.remove_edge(u, v).unwrap();
            }
        }
        steps += 1;
        if steps.is_multiple_of(5000) {
            engine.validate();
        }
    }
    assert_eq!(engine.graph().num_edges(), 0);
    engine.validate();
}

/// Journal ledger property at dataset scale: summing all recorded
/// transitions reconstructs the final core array from the initial one.
#[test]
fn journal_ledger_reconstructs_cores() {
    let ds = load_dataset("gowalla", Scale::Tiny, 600);
    let engine = OrderCore::new(ds.base.clone(), 11);
    let initial = engine.core_slice().to_vec();
    let mut j = Journaled::new(engine);
    for &(u, v) in &ds.stream {
        j.insert_edge(u, v).unwrap();
    }
    for &(u, v) in ds.stream.iter().take(200) {
        j.remove_edge(u, v).unwrap();
    }
    let mut replayed = initial;
    for entry in j.entries() {
        for &(v, old, new) in &entry.transitions {
            assert_eq!(replayed[v as usize], old, "stale old value at {v}");
            replayed[v as usize] = new;
        }
    }
    assert_eq!(&replayed[..], j.engine().core_slice());
}

/// Persistence under load: snapshot mid-stream, reload, continue on both
/// and stay identical.
#[test]
fn persist_mid_stream_and_diverge_nowhere() {
    let ds = load_dataset("google", Scale::Tiny, 400);
    let mut engine = OrderCore::new(ds.base.clone(), 3);
    let (first, second) = ds.stream.split_at(ds.stream.len() / 2);
    for &(u, v) in first {
        engine.insert_edge(u, v).unwrap();
    }
    let mut buf = Vec::new();
    engine.save(&mut buf).unwrap();
    let mut reloaded = OrderCore::load(&buf[..], 99).unwrap();
    for &(u, v) in second {
        engine.insert_edge(u, v).unwrap();
        reloaded.insert_edge(u, v).unwrap();
    }
    assert_eq!(engine.cores(), reloaded.cores());
    reloaded.validate();
}

/// Batch path at dataset scale: a big batch through the rebuild path
/// equals incremental application.
#[test]
fn batch_rebuild_equals_incremental() {
    use kcore::maint::BatchOp;
    let ds = load_dataset("facebook", Scale::Tiny, 500);
    let ops: Vec<BatchOp> = ds
        .stream
        .iter()
        .map(|&(u, v)| BatchOp::Insert(u, v))
        .collect();

    let mut bulk = OrderCore::new(ds.base.clone(), 5);
    bulk.apply_batch(&ops, 0.0).unwrap(); // force rebuild path
    let mut incr = OrderCore::new(ds.base.clone(), 5);
    for &(u, v) in &ds.stream {
        incr.insert_edge(u, v).unwrap();
    }
    assert_eq!(bulk.cores(), incr.cores());
    bulk.validate();
}
