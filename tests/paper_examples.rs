//! End-to-end encodings of the paper's worked examples and claims, run
//! against the full public API (the facade crate).

use kcore::decomp::regions::subcore_sizes;
use kcore::decomp::validate::{compute_mcd, compute_pcd};
use kcore::graph::fixtures::PaperGraph;
use kcore::{core_decomposition, CoreMaintainer, OrderCore, TraversalCore};

/// Example 3.1: cores, subcores of the Fig 3 graph.
#[test]
fn example_3_1_cores_and_subcores() {
    let pg = PaperGraph::full();
    let core = core_decomposition(&pg.graph);
    for i in 0..=2000 {
        assert_eq!(core[pg.u(i) as usize], 1, "core(u{i})");
    }
    for j in 1..=5 {
        assert_eq!(core[pg.v(j) as usize], 2, "core(v{j})");
    }
    for j in 6..=13 {
        assert_eq!(core[pg.v(j) as usize], 3, "core(v{j})");
    }
    // "there does not exist a 4-core in G"
    assert!(core.iter().all(|&c| c <= 3));
    // subcores: {v1..v5} unique 2-subcore, two 3-subcores of size 4, one
    // 1-subcore of 2001 vertices
    let sc = subcore_sizes(&pg.graph, &core);
    assert_eq!(sc[pg.v(2) as usize], 5);
    assert_eq!(sc[pg.v(7) as usize], 4);
    assert_eq!(sc[pg.v(11) as usize], 4);
    assert_eq!(sc[pg.u(42) as usize], 2001);
}

/// Example 4.1: mcd/pcd around the chain after inserting (v4, u0).
#[test]
fn example_4_1_mcd_pcd_bounds() {
    let pg = PaperGraph::full();
    let mut g = pg.graph.clone();
    g.insert_edge(pg.v(4), pg.u(0)).unwrap();
    let core = core_decomposition(&pg.graph); // old cores
    let mcd = compute_mcd(&g, &core);
    let pcd = compute_pcd(&g, &core, &mcd);
    // "both mcd(u0) and pcd(u0) become 4"
    assert_eq!(mcd[pg.u(0) as usize], 4);
    assert_eq!(pcd[pg.u(0) as usize], 4);
    // "mcd(u1999) < 2" — u1999 cannot be in the new 2-core
    assert!(mcd[pg.u(1999) as usize] < 2);
    // "mcd(u1997) = 2, pcd(u1997) = 1"
    assert_eq!(mcd[pg.u(1997) as usize], 2);
    assert_eq!(pcd[pg.u(1997) as usize], 1);
}

/// Example 4.2: the traversal algorithm visits ~1,999 vertices and ends
/// with V* = {u0}.
#[test]
fn example_4_2_traversal_blowup() {
    let pg = PaperGraph::full();
    let mut trav = TraversalCore::new(pg.graph.clone(), 2);
    let stats = trav.insert_edge(pg.v(4), pg.u(0)).unwrap();
    assert_eq!(stats.changed, 1);
    assert_eq!(trav.core(pg.u(0)), 2);
    // The DFS walks both chains: 1,999 total (the two leaves u1999 and
    // u2000 are pruned by the mcd test, u0 + 1,998 interior vertices are
    // visited).
    assert_eq!(stats.visited, 1999);
}

/// Example 5.2: the order-based algorithm visits exactly one vertex for
/// the same update.
#[test]
fn example_5_2_order_visits_one() {
    let pg = PaperGraph::full();
    let mut order = OrderCore::new(pg.graph.clone(), 42);
    let stats = order.insert_edge(pg.v(4), pg.u(0)).unwrap();
    assert_eq!(stats.changed, 1);
    assert_eq!(stats.visited, 1);
    assert_eq!(order.core(pg.u(0)), 2);
    order.validate();
}

/// Fig 6's deg+ values hold for the generated k-order (small-deg+-first
/// may produce a different but equivalent order; the *invariant* checked
/// is Lemma 5.1 plus the per-level grouping).
#[test]
fn fig_6_korder_invariants() {
    let pg = PaperGraph::full();
    let order = OrderCore::new(pg.graph.clone(), 0);
    // O_1 has 2001 vertices, O_2 five, O_3 eight.
    assert_eq!(order.level_order(1).len(), 2001);
    assert_eq!(order.level_order(2).len(), 5);
    assert_eq!(order.level_order(3).len(), 8);
    // deg+(v) <= k for every v in O_k (Lemma 5.1) — validate() checks it
    // plus everything else.
    order.validate();
}

/// The introduction's headline: on a long chain insertion the traversal
/// search space is ~3 orders of magnitude larger than the order-based
/// one.
#[test]
fn headline_search_space_gap() {
    let pg = PaperGraph::full();
    let mut order = OrderCore::new(pg.graph.clone(), 1);
    let mut trav = TraversalCore::new(pg.graph.clone(), 2);
    let o = order.insert(pg.v(4), pg.u(0)).unwrap();
    let t = trav.insert(pg.v(4), pg.u(0)).unwrap();
    assert!(t.visited >= 1000 * o.visited);
}

/// Theorem 3.2 part 3: V* is connected around the inserted edge — a
/// smoke-level check via the engines' agreement plus locality: inserting
/// inside one 4-clique never touches the other.
#[test]
fn theorem_3_2_locality() {
    let pg = PaperGraph::full();
    let mut order = OrderCore::new(pg.graph.clone(), 5);
    // (v6, v10) joins the two 3-subcores; no core changes (both already
    // have exactly 3 intra-clique neighbours, the new edge makes 4 for
    // two vertices but their neighbours cap at mcd 3).
    let stats = order.insert_edge(pg.v(6), pg.v(10)).unwrap();
    assert_eq!(stats.changed, 0);
    assert_eq!(order.core(pg.v(6)), 3);
    order.validate();
}

/// Golden values: the O_2 block of the generated k-order carries exactly
/// the deg+ multiset of Fig 6 ({2, 1, 2, 2, 2}), and O_3 splits into the
/// two cliques with deg+ {3, 2, 1, 0} each.
#[test]
fn fig_6_deg_plus_golden_values() {
    let pg = PaperGraph::full();
    let order = OrderCore::new(pg.graph.clone(), 42);
    let mut o2_degs: Vec<u32> = order
        .level_order(2)
        .iter()
        .map(|&v| order.deg_plus(v))
        .collect();
    o2_degs.sort_unstable();
    assert_eq!(o2_degs, vec![1, 2, 2, 2, 2]);
    let mut o3_degs: Vec<u32> = order
        .level_order(3)
        .iter()
        .map(|&v| order.deg_plus(v))
        .collect();
    o3_degs.sort_unstable();
    assert_eq!(o3_degs, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    // O_1: every chain vertex has deg+ exactly 1 (Fig 6's bottom row).
    assert!(order.level_order(1).iter().all(|&v| order.deg_plus(v) == 1));
}

/// The four-engine panorama of the search-space hierarchy on the
/// paper's own example: |V+| <= |V'| <= |sc| <= n.
#[test]
fn search_space_hierarchy_on_fig3() {
    use kcore::SubCoreAlgo;
    let pg = PaperGraph::full();
    let mut order = OrderCore::new(pg.graph.clone(), 1);
    let mut trav = TraversalCore::new(pg.graph.clone(), 2);
    let mut sub = SubCoreAlgo::new(pg.graph.clone());
    let o = order.insert(pg.v(4), pg.u(0)).unwrap();
    let t = trav.insert(pg.v(4), pg.u(0)).unwrap();
    let s = sub.insert(pg.v(4), pg.u(0)).unwrap();
    assert!(o.visited <= t.visited);
    assert!(t.visited <= s.visited);
    assert!(s.visited <= pg.graph.num_vertices());
    assert_eq!(o.visited, 1);
    assert_eq!(t.visited, 1999);
    assert_eq!(s.visited, 2001);
}
