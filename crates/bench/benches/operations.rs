//! Criterion micro-benchmarks: per-operation maintenance latency of the
//! order-based engine vs the traversal baseline (Table II at
//! microbenchmark granularity). Each iteration performs one insert and
//! the matching remove, so engine state is unchanged across iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcore_gen::{load_dataset, Scale};
use kcore_maint::{CoreMaintainer, TreapOrderCore};
use kcore_traversal::TraversalCore;

fn bench_update_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_remove_pair");
    group.sample_size(20);
    for name in ["facebook", "patents", "ca"] {
        let ds = load_dataset(name, Scale::Tiny, 64);
        let stream = ds.stream.clone();

        let mut order = TreapOrderCore::new(ds.base.clone(), 1);
        group.bench_with_input(BenchmarkId::new("order", name), &stream, |b, stream| {
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = stream[i % stream.len()];
                i += 1;
                order.insert(u, v).unwrap();
                order.remove(u, v).unwrap();
            });
        });

        let mut trav = TraversalCore::new(ds.base.clone(), 2);
        group.bench_with_input(BenchmarkId::new("trav2", name), &stream, |b, stream| {
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = stream[i % stream.len()];
                i += 1;
                trav.insert(u, v).unwrap();
                trav.remove(u, v).unwrap();
            });
        });

        let mut trav5 = TraversalCore::new(ds.base.clone(), 5);
        group.bench_with_input(BenchmarkId::new("trav5", name), &stream, |b, stream| {
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = stream[i % stream.len()];
                i += 1;
                trav5.insert(u, v).unwrap();
                trav5.remove(u, v).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_pair);
criterion_main!(benches);
