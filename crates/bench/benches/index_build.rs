//! Criterion micro-benchmarks: index construction (Table III at
//! microbenchmark granularity) — core decomposition alone, the order
//! index, and Trav-h indices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcore_decomp::{core_decomposition, core_decomposition_csr, korder_decomposition, Heuristic};
use kcore_gen::{load_dataset, Scale};
use kcore_graph::CsrGraph;
use kcore_maint::TreapOrderCore;
use kcore_traversal::TraversalCore;
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for name in ["facebook", "google"] {
        let g = load_dataset(name, Scale::Tiny, 16).full_graph();

        group.bench_with_input(BenchmarkId::new("decomp_only", name), &g, |b, g| {
            b.iter(|| black_box(core_decomposition(g)));
        });
        let csr = CsrGraph::from(&g);
        group.bench_with_input(BenchmarkId::new("decomp_csr", name), &csr, |b, csr| {
            b.iter(|| black_box(core_decomposition_csr(csr)));
        });
        group.bench_with_input(BenchmarkId::new("korder_small", name), &g, |b, g| {
            b.iter(|| black_box(korder_decomposition(g, Heuristic::SmallDegFirst, 1)));
        });
        group.bench_with_input(BenchmarkId::new("order_index", name), &g, |b, g| {
            b.iter(|| black_box(TreapOrderCore::new(g.clone(), 1)));
        });
        for h in [2usize, 4, 6] {
            group.bench_with_input(
                BenchmarkId::new(format!("trav{h}_index"), name),
                &g,
                |b, g| {
                    b.iter(|| black_box(TraversalCore::new(g.clone(), h)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
