//! Criterion micro-benchmarks of the batched update engine: batched vs
//! one-at-a-time update throughput at several batch sizes, on a
//! power-law base graph with degree-weighted (preferential-attachment)
//! update endpoints. Each iteration inserts the whole stream and then
//! removes it again, so engine state is unchanged across iterations and
//! no index rebuild pollutes the measurement. The `batch` binary is the
//! full experiment; this is the quick regression guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcore_bench::degree_weighted_fresh_edges;
use kcore_gen::barabasi_albert;
use kcore_maint::TreapOrderCore;
use std::hint::black_box;

fn bench_batching(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 4, 7);
    let stream = degree_weighted_fresh_edges(&g, 2_000, 99);
    let mut group = c.benchmark_group("insert_remove_stream");
    group.sample_size(10);

    let mut single = TreapOrderCore::new(g.clone(), 7);
    group.bench_with_input(BenchmarkId::new("single", "2k"), &stream, |b, stream| {
        b.iter(|| {
            for &(u, v) in stream {
                single.insert_edge(u, v).unwrap();
            }
            for &(u, v) in stream.iter().rev() {
                single.remove_edge(u, v).unwrap();
            }
            black_box(single.core(0))
        });
    });

    for bs in [100usize, 1_000, 2_000] {
        let mut batched = TreapOrderCore::new(g.clone(), 7);
        group.bench_with_input(BenchmarkId::new("batched", bs), &stream, |b, stream| {
            b.iter(|| {
                for chunk in stream.chunks(bs) {
                    let s = batched.insert_edges(chunk);
                    assert_eq!(s.skipped, 0);
                }
                for chunk in stream.rchunks(bs) {
                    let s = batched.remove_edges(chunk);
                    assert_eq!(s.skipped, 0);
                }
                black_box(batched.core(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
