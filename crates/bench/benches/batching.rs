//! Criterion micro-benchmarks of the batched update engine: batched vs
//! one-at-a-time update throughput at several batch sizes, on a
//! power-law base graph with degree-weighted (preferential-attachment)
//! update endpoints. Each iteration inserts the whole stream and then
//! removes it again — and the churn group replays its micro-batches and
//! then their exact inverse — so engine state is unchanged across
//! iterations and no index rebuild pollutes the measurement. The `batch`
//! binary is the full experiment; this is the quick regression guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcore_bench::degree_weighted_fresh_edges;
use kcore_gen::{barabasi_albert, churn_stream};
use kcore_maint::TreapOrderCore;
use std::hint::black_box;

fn bench_batching(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 4, 7);
    let stream = degree_weighted_fresh_edges(&g, 2_000, 99);
    let mut group = c.benchmark_group("insert_remove_stream");
    group.sample_size(10);

    let mut single = TreapOrderCore::new(g.clone(), 7);
    group.bench_with_input(BenchmarkId::new("single", "2k"), &stream, |b, stream| {
        b.iter(|| {
            for &(u, v) in stream {
                single.insert_edge(u, v).unwrap();
            }
            for &(u, v) in stream.iter().rev() {
                single.remove_edge(u, v).unwrap();
            }
            black_box(single.core(0))
        });
    });

    for bs in [100usize, 1_000, 2_000] {
        let mut batched = TreapOrderCore::new(g.clone(), 7);
        group.bench_with_input(BenchmarkId::new("batched", bs), &stream, |b, stream| {
            b.iter(|| {
                for chunk in stream.chunks(bs) {
                    let s = batched.insert_edges(chunk);
                    assert_eq!(s.skipped, 0);
                }
                for chunk in stream.rchunks(bs) {
                    let s = batched.remove_edges(chunk);
                    assert_eq!(s.skipped, 0);
                }
                black_box(batched.core(0))
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 4, 7);
    // 20 micro-batches of 50 inserts + 50 removals each.
    let stream = churn_stream(&g, 20, 50, 50, 13);
    let mut group = c.benchmark_group("churn_stream");
    group.sample_size(10);

    let mut single = TreapOrderCore::new(g.clone(), 7);
    group.bench_with_input(BenchmarkId::new("single", "2k"), &stream, |b, stream| {
        b.iter(|| {
            for batch in stream {
                for &(u, v) in &batch.inserts {
                    single.insert_edge(u, v).unwrap();
                }
                for &(u, v) in &batch.removes {
                    single.remove_edge(u, v).unwrap();
                }
            }
            // Inverse replay restores the starting graph exactly.
            for batch in stream.iter().rev() {
                for &(u, v) in &batch.removes {
                    single.insert_edge(u, v).unwrap();
                }
                for &(u, v) in &batch.inserts {
                    single.remove_edge(u, v).unwrap();
                }
            }
            black_box(single.core(0))
        });
    });

    let mut batched = TreapOrderCore::new(g.clone(), 7);
    group.bench_with_input(BenchmarkId::new("batched", "2k"), &stream, |b, stream| {
        b.iter(|| {
            for batch in stream {
                let s = batched.insert_edges(&batch.inserts);
                assert_eq!(s.skipped, 0);
                let s = batched.remove_edges(&batch.removes);
                assert_eq!(s.skipped, 0);
            }
            for batch in stream.iter().rev() {
                let s = batched.insert_edges(&batch.removes);
                assert_eq!(s.skipped, 0);
                let s = batched.remove_edges(&batch.inserts);
                assert_eq!(s.skipped, 0);
            }
            black_box(batched.core(0))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batching, bench_churn);
criterion_main!(benches);
