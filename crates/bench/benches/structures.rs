//! Criterion micro-benchmarks of the order-maintenance substrates: the
//! treap `A_k` vs the tag list (the ablation's data-structure level), and
//! the jump heap.

use criterion::{criterion_group, criterion_main, Criterion};
use kcore_order::{MinRankHeap, OrderSeq, OrderTreap, SkipList, TagList};
use std::hint::black_box;

const N: usize = 10_000;

fn bench_seq<S: OrderSeq>(c: &mut Criterion, label: &str) {
    c.bench_function(&format!("{label}/append_{N}"), |b| {
        b.iter(|| {
            let mut s = S::with_seed(7);
            for i in 0..N as u32 {
                s.insert_last(i);
            }
            black_box(s.len())
        });
    });

    // order queries on a prebuilt sequence
    let mut s = S::with_seed(7);
    let handles: Vec<u32> = (0..N as u32).map(|i| s.insert_last(i)).collect();
    c.bench_function(&format!("{label}/precedes"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = handles[i % N];
            let z = handles[(i * 7 + 13) % N];
            i += 1;
            black_box(s.precedes(a, z))
        });
    });
    c.bench_function(&format!("{label}/order_key"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = handles[i % N];
            i += 1;
            black_box(s.order_key(a))
        });
    });

    // churn at a hot spot: repeated insert_after/remove at one position
    c.bench_function(&format!("{label}/hot_spot_churn"), |b| {
        let mut s = S::with_seed(11);
        let anchor = s.insert_last(0);
        s.insert_last(1);
        b.iter(|| {
            let h = s.insert_after(anchor, 2);
            black_box(s.remove(h))
        });
    });
}

fn bench_structures(c: &mut Criterion) {
    bench_seq::<OrderTreap>(c, "treap");
    bench_seq::<TagList>(c, "taglist");
    bench_seq::<SkipList>(c, "skiplist");

    c.bench_function("jump_heap/push_pop_1k", |b| {
        b.iter(|| {
            let mut h = MinRankHeap::new();
            for i in 0..1000u64 {
                h.push((i * 2654435761) % 4096, i as u32);
            }
            let mut out = 0u64;
            while let Some((k, _)) = h.pop_valid(|_| true) {
                out = out.wrapping_add(k);
            }
            black_box(out)
        });
    });
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
