//! Fig 5: cumulative size distribution of the pure core (`pc`), subcore
//! (`sc`) and order core (`oc`) on the two largest heavy-tailed datasets
//! (the paper uses Patents and Orkut).
//!
//! `oc` is evaluated on a vertex sample (exact all-pairs reachability
//! counting is quadratic); `pc`/`sc` are exact.
//!
//! `cargo run --release -p kcore-bench --bin fig5`

use kcore_bench::Cli;
use kcore_decomp::regions::{ordercore_sizes, purecore_sizes, subcore_sizes};
use kcore_decomp::{core_decomposition, korder_decomposition, Heuristic};
use kcore_gen::sample::sample_vertices;
use kcore_graph::stats::cumulative_distribution;

fn main() {
    let mut cli = Cli::parse();
    if cli.datasets.len() == 11 {
        // default: the paper's two Fig 5 graphs
        cli.datasets = vec!["patents".into(), "orkut".into()];
    }
    println!("== Fig 5: cumulative size distribution of pc, sc, oc ==");
    for name in cli.dataset_names() {
        let g = cli.load(name).full_graph();
        let core = core_decomposition(&g);
        let sc = subcore_sizes(&g, &core);
        let pc = purecore_sizes(&g, &core);
        let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, cli.seed);
        let sample = sample_vertices(&g, 4000.min(g.num_vertices()), cli.seed);
        let oc = ordercore_sizes(&g, &ko, &sample);
        // evaluate pc/sc on the same sample for an apples-to-apples CDF
        let pc: Vec<u32> = sample.iter().map(|&v| pc[v as usize]).collect();
        let sc: Vec<u32> = sample.iter().map(|&v| sc[v as usize]).collect();

        println!("\n-- {name} (n = {}) --", g.num_vertices());
        println!("{:>10} {:>10} {:>10} {:>10}", "size<=", "pc", "sc", "oc");
        let pc_cd = cumulative_distribution(&pc.iter().map(|&x| x as usize).collect::<Vec<_>>());
        let sc_cd = cumulative_distribution(&sc.iter().map(|&x| x as usize).collect::<Vec<_>>());
        let oc_cd = cumulative_distribution(&oc.iter().map(|&x| x as usize).collect::<Vec<_>>());
        // align on the union of thresholds of pc (the widest)
        let lookup = |cd: &[(usize, f64)], t: usize| -> f64 {
            cd.iter()
                .take_while(|&&(th, _)| th <= t)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0)
        };
        for &(t, pcf) in &pc_cd {
            println!(
                "{:>10} {:>10.4} {:>10.4} {:>10.4}",
                t,
                pcf,
                lookup(&sc_cd, t),
                lookup(&oc_cd, t)
            );
        }
        let frac_oc_small = oc.iter().filter(|&&x| x <= 100).count() as f64 / oc.len() as f64;
        let frac_pc_small = pc.iter().filter(|&&x| x <= 100).count() as f64 / pc.len() as f64;
        println!(
            "oc <= 100 for {:.1}% of vertices; pc <= 100 for {:.1}% (paper: oc \
             concentrates orders of magnitude lower than pc/sc)",
            100.0 * frac_oc_small,
            100.0 * frac_pc_small
        );
    }
}
