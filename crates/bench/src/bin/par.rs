//! Parallel vs sequential core-decomposition throughput → `BENCH_par.json`.
//!
//! The experiment behind the `decomp::par` subsystem: build the bench
//! base graphs (Barabási–Albert and R-MAT — the two power-law shapes the
//! batch benchmarks use), freeze CSR snapshots, and time
//!
//! * **sequential** — `core_decomposition` / `core_decomposition_csr`;
//! * **parallel** — `par_core_decomposition{,_csr}` at each requested
//!   thread count (default 1, 2, 4, 8);
//! * **korder** — the phase-parallel `korder_decomposition_par` against
//!   the sequential k-order build (peel order is bit-identical; only the
//!   `deg⁺` finalisation parallelises).
//!
//! Every parallel run's core numbers are asserted equal to the
//! sequential decomposition before any number is reported. Results go to
//! stdout as tables and to `BENCH_par.json` (speedup per thread count,
//! host parallelism, gate status). `--min-par-speedup R` turns the
//! 4-thread CSR speedup on the BA base graph into a CI exit gate; the
//! gate is **waived with a loud note** when the host exposes fewer cores
//! than the gated thread count — a 4-thread speedup target is physically
//! meaningless on a 1-core container, and a waived gate records that in
//! the JSON instead of failing spuriously or faking a number.

use kcore_decomp::par::Parallelism;
use kcore_decomp::{
    core_decomposition, core_decomposition_csr, korder_decomposition, korder_decomposition_par,
    par_core_decomposition, par_core_decomposition_csr, Heuristic,
};
use kcore_gen::{barabasi_albert, churn_stream, rmat};
use kcore_graph::{CsrGraph, DynamicGraph};
use kcore_maint::{BatchOptions, TreapOrderCore};
use std::io::Write;
use std::time::Instant;

struct Args {
    n: usize,
    attach: usize,
    threads: Vec<usize>,
    seed: u64,
    reps: usize,
    out: String,
    /// `0.0` disables the gate.
    min_par_speedup: f64,
    /// `0.0` disables the maintenance-parallel gate.
    min_maint_speedup: f64,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            n: 50_000,
            attach: 4,
            threads: vec![1, 2, 4, 8],
            seed: 42,
            reps: 5,
            out: "BENCH_par.json".to_string(),
            min_par_speedup: 0.0,
            min_maint_speedup: 0.0,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
            };
            match argv[i].as_str() {
                "--n" => a.n = need(i).parse().expect("bad --n"),
                "--attach" => a.attach = need(i).parse().expect("bad --attach"),
                "--threads" => {
                    a.threads = need(i)
                        .split(',')
                        .map(|t| t.parse().expect("bad --threads"))
                        .collect()
                }
                "--seed" => a.seed = need(i).parse().expect("bad --seed"),
                "--reps" => a.reps = need(i).parse().expect("bad --reps"),
                "--out" => a.out = need(i).clone(),
                "--min-par-speedup" => {
                    a.min_par_speedup = need(i).parse().expect("bad --min-par-speedup")
                }
                "--min-maint-speedup" => {
                    a.min_maint_speedup = need(i).parse().expect("bad --min-maint-speedup")
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --n N  --attach M  --threads 1,2,4,8  --seed S  --reps R  \
                         --out FILE  --min-par-speedup R  --min-maint-speedup R"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        assert!(!a.threads.is_empty(), "--threads needs at least one count");
        a
    }
}

/// One timed configuration, interleaved-best-of-reps (see the batch
/// binary for the protocol rationale).
struct GraphReport {
    name: &'static str,
    n: usize,
    m: usize,
    max_core: u32,
    seq_csr_secs: f64,
    seq_dyn_secs: f64,
    /// `(threads, csr_secs, dyn_secs)` per requested thread count.
    par: Vec<(usize, f64, f64)>,
}

impl GraphReport {
    fn speedup_csr_at(&self, threads: usize) -> Option<f64> {
        self.par
            .iter()
            .find(|&&(t, _, _)| t == threads)
            .map(|&(_, secs, _)| self.seq_csr_secs / secs)
    }
}

fn measure_graph(
    name: &'static str,
    g: &DynamicGraph,
    threads: &[usize],
    reps: usize,
) -> GraphReport {
    let csr = CsrGraph::from(g);
    let reference = core_decomposition(g);
    let max_core = reference.iter().copied().max().unwrap_or(0);

    let mut seq_csr = f64::INFINITY;
    let mut seq_dyn = f64::INFINITY;
    let mut par_secs: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::INFINITY); threads.len()];
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let seq_cores = core_decomposition_csr(&csr);
        seq_csr = seq_csr.min(t0.elapsed().as_secs_f64());
        assert_eq!(seq_cores, reference, "csr decomposition diverged");

        let t0 = Instant::now();
        let dyn_cores = core_decomposition(g);
        seq_dyn = seq_dyn.min(t0.elapsed().as_secs_f64());
        assert_eq!(dyn_cores, reference);

        for (ti, &t) in threads.iter().enumerate() {
            let par = Parallelism::exact(t);
            let t0 = Instant::now();
            let cores = par_core_decomposition_csr(&csr, &par);
            par_secs[ti].0 = par_secs[ti].0.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                cores, reference,
                "{name}: parallel csr peel diverged at {t} threads"
            );

            let t0 = Instant::now();
            let cores = par_core_decomposition(g, &par);
            par_secs[ti].1 = par_secs[ti].1.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                cores, reference,
                "{name}: parallel dynamic peel diverged at {t} threads"
            );
        }
    }

    GraphReport {
        name,
        n: g.num_vertices(),
        m: g.num_edges(),
        max_core,
        seq_csr_secs: seq_csr,
        seq_dyn_secs: seq_dyn,
        par: threads
            .iter()
            .zip(par_secs)
            .map(|(&t, (c, d))| (t, c, d))
            .collect(),
    }
}

fn print_report(r: &GraphReport) {
    println!(
        "\n== {} (n = {}, m = {}, max core = {}) ==",
        r.name, r.n, r.m, r.max_core
    );
    println!(
        "sequential: csr {:.4}s, dynamic {:.4}s",
        r.seq_csr_secs, r.seq_dyn_secs
    );
    kcore_bench::row(
        &[
            "threads".into(),
            "csr secs".into(),
            "csr speedup".into(),
            "dyn secs".into(),
            "dyn speedup".into(),
        ],
        8,
        14,
    );
    for &(t, cs, ds) in &r.par {
        kcore_bench::row(
            &[
                format!("{t}"),
                format!("{cs:.4}"),
                format!("{:.2}x", r.seq_csr_secs / cs),
                format!("{ds:.4}"),
                format!("{:.2}x", r.seq_dyn_secs / ds),
            ],
            8,
            14,
        );
    }
}

fn json_graph(r: &GraphReport, indent: &str) -> String {
    let mut s = format!(
        "{indent}{{ \"name\": \"{}\", \"n\": {}, \"m\": {}, \"max_core\": {},\n\
         {indent}  \"seq_csr_secs\": {:.5}, \"seq_dynamic_secs\": {:.5},\n\
         {indent}  \"threads\": [\n",
        r.name, r.n, r.m, r.max_core, r.seq_csr_secs, r.seq_dyn_secs
    );
    for (i, &(t, cs, ds)) in r.par.iter().enumerate() {
        s.push_str(&format!(
            "{indent}    {{ \"threads\": {t}, \"csr_secs\": {:.5}, \"csr_speedup\": {:.3}, \
             \"dynamic_secs\": {:.5}, \"dynamic_speedup\": {:.3} }}{}\n",
            cs,
            r.seq_csr_secs / cs,
            ds,
            r.seq_dyn_secs / ds,
            if i + 1 == r.par.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!("{indent}  ]\n{indent}}}"));
    s
}

/// Thread-parallel *maintenance*: batched insert/remove passes through
/// the order-based engine, serial component splits vs worker-team
/// component passes at each thread count. Cores are asserted
/// bit-identical to the serial engine before any number is reported.
struct MaintReport {
    batches: usize,
    inserts_per_batch: usize,
    removes_per_batch: usize,
    seq_insert_secs: f64,
    seq_remove_secs: f64,
    /// `(threads, insert_secs, remove_secs)` per requested thread count.
    par: Vec<(usize, f64, f64)>,
}

impl MaintReport {
    fn churn_speedup_at(&self, threads: usize) -> Option<f64> {
        self.par
            .iter()
            .find(|&&(t, _, _)| t == threads)
            .map(|&(_, is, rs)| (self.seq_insert_secs + self.seq_remove_secs) / (is + rs))
    }
}

fn measure_maint(base: &DynamicGraph, args: &Args) -> MaintReport {
    let batches = 8;
    let inserts_per_batch = (args.n / 25).max(64);
    let removes_per_batch = (args.n / 50).max(32);
    let stream = churn_stream(
        base,
        batches,
        inserts_per_batch,
        removes_per_batch,
        args.seed ^ 0xBEEF,
    );

    // One full churn run: fresh engine over the base graph, every
    // batch's inserts then removes, the two phases timed separately.
    let run = |opts: &BatchOptions| -> (f64, f64, Vec<u32>) {
        let mut eng = TreapOrderCore::new(base.clone(), args.seed);
        let (mut ti, mut tr) = (0.0f64, 0.0f64);
        for b in &stream {
            let t0 = Instant::now();
            eng.insert_edges_with(&b.inserts, opts);
            ti += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            eng.remove_edges_with(&b.removes, opts);
            tr += t0.elapsed().as_secs_f64();
        }
        (ti, tr, eng.cores().to_vec())
    };

    let serial_opts = BatchOptions::component_split();
    let mut seq_insert = f64::INFINITY;
    let mut seq_remove = f64::INFINITY;
    let mut reference: Option<Vec<u32>> = None;
    let mut par_secs: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::INFINITY); args.threads.len()];
    for _ in 0..args.reps.max(1) {
        let (ti, tr, cores) = run(&serial_opts);
        seq_insert = seq_insert.min(ti);
        seq_remove = seq_remove.min(tr);
        if let Some(r) = &reference {
            assert_eq!(&cores, r, "serial maintenance must be deterministic");
        } else {
            reference = Some(cores);
        }
        for (slot, &t) in args.threads.iter().enumerate() {
            let opts = BatchOptions::parallel(Parallelism::exact(t));
            let (ti, tr, cores) = run(&opts);
            par_secs[slot].0 = par_secs[slot].0.min(ti);
            par_secs[slot].1 = par_secs[slot].1.min(tr);
            assert_eq!(
                Some(cores),
                reference,
                "parallel maintenance diverged at {t} threads"
            );
        }
    }

    MaintReport {
        batches,
        inserts_per_batch,
        removes_per_batch,
        seq_insert_secs: seq_insert,
        seq_remove_secs: seq_remove,
        par: args
            .threads
            .iter()
            .zip(par_secs)
            .map(|(&t, (i, r))| (t, i, r))
            .collect(),
    }
}

fn print_maint(r: &MaintReport) {
    println!(
        "\n== maintenance passes (BA churn: {} batches x {} ins / {} rem) ==",
        r.batches, r.inserts_per_batch, r.removes_per_batch
    );
    println!(
        "serial split: insert {:.4}s, remove {:.4}s",
        r.seq_insert_secs, r.seq_remove_secs
    );
    kcore_bench::row(
        &[
            "threads".into(),
            "ins secs".into(),
            "ins speedup".into(),
            "rem secs".into(),
            "rem speedup".into(),
            "churn speedup".into(),
        ],
        8,
        14,
    );
    for &(t, is, rs) in &r.par {
        kcore_bench::row(
            &[
                format!("{t}"),
                format!("{is:.4}"),
                format!("{:.2}x", r.seq_insert_secs / is),
                format!("{rs:.4}"),
                format!("{:.2}x", r.seq_remove_secs / rs),
                format!(
                    "{:.2}x",
                    (r.seq_insert_secs + r.seq_remove_secs) / (is + rs)
                ),
            ],
            8,
            14,
        );
    }
}

fn json_maint(r: &MaintReport, indent: &str) -> String {
    let mut s = format!(
        "{indent}\"batches\": {}, \"inserts_per_batch\": {}, \"removes_per_batch\": {},\n\
         {indent}\"seq_insert_secs\": {:.5}, \"seq_remove_secs\": {:.5},\n\
         {indent}\"threads\": [\n",
        r.batches, r.inserts_per_batch, r.removes_per_batch, r.seq_insert_secs, r.seq_remove_secs
    );
    for (i, &(t, is, rs)) in r.par.iter().enumerate() {
        s.push_str(&format!(
            "{indent}  {{ \"threads\": {t}, \"insert_secs\": {is:.5}, \
             \"insert_speedup\": {:.3}, \"remove_secs\": {rs:.5}, \
             \"remove_speedup\": {:.3}, \"churn_speedup\": {:.3} }}{}\n",
            r.seq_insert_secs / is,
            r.seq_remove_secs / rs,
            (r.seq_insert_secs + r.seq_remove_secs) / (is + rs),
            if i + 1 == r.par.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!("{indent}]"));
    s
}

fn main() {
    let args = Args::parse();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "host parallelism: {host} core(s); timing {} rep(s), threads {:?}",
        args.reps, args.threads
    );

    let ba = barabasi_albert(args.n, args.attach, args.seed);
    // Same edge budget, R-MAT's heavier tail; scale = ceil(log2 n).
    let scale = usize::BITS - (args.n.max(2) - 1).leading_zeros();
    let rm = rmat(
        scale,
        args.n * args.attach,
        0.57,
        0.19,
        0.19,
        args.seed ^ 0xD1CE,
    );

    // Untimed warm-up.
    let _ = par_core_decomposition(
        &ba,
        &Parallelism::exact(*args.threads.iter().max().unwrap()),
    );

    let reports = [
        measure_graph("barabasi_albert", &ba, &args.threads, args.reps),
        measure_graph("rmat", &rm, &args.threads, args.reps),
    ];
    for r in &reports {
        print_report(r);
    }

    // korder: phase-parallel vs sequential (bit-identical order asserted).
    let korder_threads = *args.threads.iter().max().unwrap();
    let mut ko_seq_secs = f64::INFINITY;
    let mut ko_par_secs = f64::INFINITY;
    for _ in 0..args.reps.max(1) {
        let t0 = Instant::now();
        let seq = korder_decomposition(&ba, Heuristic::SmallDegFirst, args.seed);
        ko_seq_secs = ko_seq_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let par = korder_decomposition_par(
            &ba,
            Heuristic::SmallDegFirst,
            args.seed,
            &Parallelism::exact(korder_threads),
        );
        ko_par_secs = ko_par_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(par.order, seq.order, "phase-parallel korder reordered");
        assert_eq!(par.deg_plus, seq.deg_plus);
    }
    println!(
        "\nkorder build (BA): sequential {ko_seq_secs:.4}s, phase-parallel ({korder_threads} \
         threads) {ko_par_secs:.4}s ({:.2}x)",
        ko_seq_secs / ko_par_secs
    );

    // ---- thread-parallel maintenance (BA churn) ----
    let maint = measure_maint(&ba, &args);
    print_maint(&maint);

    // ---- gate bookkeeping ----
    const GATE_THREADS: usize = 4;
    let ba_speedup_at_4 = reports[0].speedup_csr_at(GATE_THREADS);
    let gate_status = if args.min_par_speedup <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_THREADS {
        format!("waived (host_parallelism {host} < {GATE_THREADS} gated threads)")
    } else if ba_speedup_at_4.is_none() {
        format!("waived ({GATE_THREADS} threads not in --threads)")
    } else {
        "enforced".to_string()
    };
    let maint_speedup_at_4 = maint.churn_speedup_at(GATE_THREADS);
    let maint_gate_status = if args.min_maint_speedup <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_THREADS {
        format!("waived (host_parallelism {host} < {GATE_THREADS} gated threads)")
    } else if maint_speedup_at_4.is_none() {
        format!("waived ({GATE_THREADS} threads not in --threads)")
    } else {
        "enforced".to_string()
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"reps\": {},\n", args.reps));
    json.push_str("  \"graphs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&json_graph(r, "    "));
        json.push_str(if i + 1 == reports.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"korder\": {{ \"threads\": {korder_threads}, \"seq_secs\": {ko_seq_secs:.5}, \
         \"par_secs\": {ko_par_secs:.5}, \"speedup\": {:.3} }},\n",
        ko_seq_secs / ko_par_secs
    ));
    json.push_str("  \"maint_par\": {\n");
    json.push_str(&json_maint(&maint, "    "));
    json.push_str(",\n");
    match maint_speedup_at_4 {
        Some(s) => json.push_str(&format!("    \"churn_speedup_at_4\": {s:.3},\n")),
        None => json.push_str("    \"churn_speedup_at_4\": null,\n"),
    }
    json.push_str(&format!(
        "    \"target_speedup\": {:.1},\n    \"gate\": \"{maint_gate_status}\"\n  }},\n",
        args.min_maint_speedup
    ));
    match ba_speedup_at_4 {
        Some(s) => json.push_str(&format!("  \"speedup_at_4_csr\": {s:.3},\n")),
        None => json.push_str("  \"speedup_at_4_csr\": null,\n"),
    }
    json.push_str(&format!(
        "  \"target_speedup\": {:.1},\n  \"gate\": \"{gate_status}\"\n}}\n",
        args.min_par_speedup
    ));
    let mut f = std::fs::File::create(&args.out).expect("create BENCH_par.json");
    f.write_all(json.as_bytes()).expect("write BENCH_par.json");
    println!("wrote {} (gate: {gate_status})", args.out);

    if gate_status == "enforced" {
        let s = ba_speedup_at_4.expect("enforced implies measured");
        if s < args.min_par_speedup {
            eprintln!(
                "GATE FAILED: csr speedup at {GATE_THREADS} threads {s:.3} < required {}",
                args.min_par_speedup
            );
            std::process::exit(1);
        }
    }
    if maint_gate_status == "enforced" {
        let s = maint_speedup_at_4.expect("enforced implies measured");
        if s < args.min_maint_speedup {
            eprintln!(
                "GATE FAILED: maintenance churn speedup at {GATE_THREADS} threads {s:.3} < \
                 required {}",
                args.min_maint_speedup
            );
            std::process::exit(1);
        }
    }
}
