//! Fig 1: distribution of the number of vertices visited per edge
//! insertion — traversal algorithm (left bar) vs order-based (right bar) —
//! bucketed `<=3`, `<=10`, `<=100`, `<=1000`, `>1000`.
//!
//! `cargo run --release -p kcore-bench --bin fig1`

use kcore_bench::{order_engine, per_update_visited, row, trav_engine, Cli};
use kcore_graph::stats::{fig1_buckets, FIG1_BUCKET_LABELS};

fn main() {
    let cli = Cli::parse();
    println!(
        "== Fig 1: #vertices visited per insertion (scale {:?}, {} updates) ==",
        cli.scale, cli.updates
    );
    let mut header = vec!["dataset".to_string(), "algo".to_string()];
    header.extend(FIG1_BUCKET_LABELS.iter().map(|s| s.to_string()));
    row(&header, 12, 12);
    for name in cli.dataset_names() {
        let ds = cli.load(name);

        let mut trav = trav_engine(&ds, 2);
        let tv = per_update_visited(&mut trav, &ds.stream);
        let tb = fig1_buckets(&tv);

        let mut order = order_engine(&ds, cli.seed);
        let ov = per_update_visited(&mut order, &ds.stream);
        let ob = fig1_buckets(&ov);

        assert_eq!(order.cores(), trav.cores(), "engines diverged on {name}");

        let mut cells = vec![name.to_string(), "traversal".to_string()];
        cells.extend(tb.iter().map(|p| format!("{:.4}", p)));
        row(&cells, 12, 12);
        let mut cells = vec![String::new(), "order".to_string()];
        cells.extend(ob.iter().map(|p| format!("{:.4}", p)));
        row(&cells, 12, 12);
    }
    println!();
    println!("expected shape: the order column concentrates in <=3 / <=10 and");
    println!("never reaches >100; the traversal column has mass at >100 and");
    println!(">1000 on the heavy-tailed graphs (paper Fig 1).");
}
