//! Table I: dataset statistics — `n`, `m`, average degree, `max k` — for
//! the eleven synthetic stand-ins, next to the originals they model.
//!
//! `cargo run --release -p kcore-bench --bin table1 [--scale medium]`

use kcore_bench::{row, Cli};
use kcore_decomp::{core_decomposition, max_core};
use kcore_graph::stats::graph_stats;

fn main() {
    let cli = Cli::parse();
    println!("== Table I: dataset statistics (scale {:?}) ==", cli.scale);
    row(
        &[
            "dataset".into(),
            "n".into(),
            "m".into(),
            "avg.deg".into(),
            "max k".into(),
        ],
        12,
        12,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let g = ds.full_graph();
        let s = graph_stats(&g);
        let core = core_decomposition(&g);
        row(
            &[
                name.into(),
                s.n.to_string(),
                s.m.to_string(),
                format!("{:.2}", s.avg_degree),
                max_core(&core).to_string(),
            ],
            12,
            12,
        );
    }
    println!();
    println!("stands for (paper Table I):");
    for name in cli.dataset_names() {
        if let Some(spec) = kcore_gen::datasets::spec(name) {
            println!("  {:<12} -> {}", name, spec.stands_for);
        }
    }
}
