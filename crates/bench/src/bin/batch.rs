//! Batched vs one-at-a-time vs full-recompute update throughput.
//!
//! The experiment behind the batched update engine: build a power-law
//! base graph, prepare a stream of new edges, and apply it three ways —
//!
//! * **batched** — `OrderCore::insert_edges` / `remove_edges` in chunks
//!   of `batch_size` (adjacency pre-reservation, level-sorted
//!   application, rank caching);
//! * **single** — the classic `insert_edge` / `remove_edge` loop;
//! * **recompute** — mutate the graph and rerun the `O(m + n)`
//!   decomposition once per chunk (the "no index" strawman, which
//!   batching *should* beat until chunks approach the graph size).
//!
//! Results go to stdout as a table and to `BENCH_batch.json` as
//! machine-readable edges/sec per batch size, so future changes can
//! track the throughput curve. Run with `--release`; the JSON includes
//! the batched-vs-single ratio the acceptance gate reads.

use kcore_bench::{degree_weighted_fresh_edges, fmt_ratio, row};
use kcore_decomp::core_decomposition;
use kcore_gen::barabasi_albert;
use kcore_maint::TreapOrderCore;
use std::io::Write;
use std::time::Instant;

struct Args {
    n: usize,
    attach: usize,
    updates: usize,
    seed: u64,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            n: 50_000,
            attach: 4,
            updates: 10_000,
            seed: 42,
            out: "BENCH_batch.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
            };
            match argv[i].as_str() {
                "--n" => a.n = need(i).parse().expect("bad --n"),
                "--attach" => a.attach = need(i).parse().expect("bad --attach"),
                "--updates" => a.updates = need(i).parse().expect("bad --updates"),
                "--seed" => a.seed = need(i).parse().expect("bad --seed"),
                "--out" => a.out = need(i).clone(),
                "--help" | "-h" => {
                    eprintln!("flags: --n N  --attach M  --updates K  --seed S  --out FILE");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        a
    }
}

struct Measurement {
    batch_size: usize,
    batched_eps: f64,
    single_eps: f64,
    recompute_eps: f64,
}

fn edges_per_sec(edges: usize, secs: f64) -> f64 {
    if secs == 0.0 {
        f64::INFINITY
    } else {
        edges as f64 / secs
    }
}

fn main() {
    let args = Args::parse();
    let g = barabasi_albert(args.n, args.attach, args.seed);
    let stream = degree_weighted_fresh_edges(&g, args.updates, args.seed ^ 0xBEEF);
    println!(
        "base graph: n = {}, m = {} (barabasi_albert attach {}), stream = {} fresh edges\n",
        g.num_vertices(),
        g.num_edges(),
        args.attach,
        args.updates
    );

    // Untimed warm-up: touches every structure once so the first timed
    // measurement does not pay cold caches / CPU frequency ramp.
    {
        let mut warm = TreapOrderCore::new(g.clone(), args.seed);
        for &(u, v) in &stream {
            warm.insert_edge(u, v).expect("fresh edge");
        }
    }

    // Every timed configuration is measured `REPS` times keeping the
    // best (minimum) wall time, and the repetitions of *all*
    // configurations are interleaved — so slow host intervals (this is
    // typically a shared/virtualised box) hit every configuration
    // equally instead of biasing whichever ran during the bad window.
    const REPS: usize = 5;

    // 1..=1k per the bench-trajectory protocol, plus the whole stream as
    // one batch — the "batched insertion of 10k edges" headline number.
    let mut batch_sizes = vec![1usize, 10, 100, 1_000];
    if args.updates > 1_000 {
        batch_sizes.push(args.updates);
    }

    let mut single_secs = f64::INFINITY;
    let mut batched_secs = vec![f64::INFINITY; batch_sizes.len()];
    let mut batched_cores: Vec<u32> = Vec::new();
    for _ in 0..REPS {
        // One-at-a-time reference (batch size is irrelevant to it).
        let mut engine = TreapOrderCore::new(g.clone(), args.seed);
        let t = Instant::now();
        for &(u, v) in &stream {
            engine.insert_edge(u, v).expect("fresh edge");
        }
        single_secs = single_secs.min(t.elapsed().as_secs_f64());

        for (bi, &bs) in batch_sizes.iter().enumerate() {
            let mut engine = TreapOrderCore::new(g.clone(), args.seed);
            let t = Instant::now();
            let mut stats = kcore_maint::UpdateStats::default();
            for chunk in stream.chunks(bs) {
                stats.absorb(engine.insert_edges(chunk));
            }
            batched_secs[bi] = batched_secs[bi].min(t.elapsed().as_secs_f64());
            assert_eq!(stats.skipped, 0, "stream contains only fresh edges");
            batched_cores = engine.cores().to_vec();
        }
    }
    let single_eps = edges_per_sec(stream.len(), single_secs);

    let mut results: Vec<Measurement> = Vec::new();
    for (bi, &bs) in batch_sizes.iter().enumerate() {
        // Full recompute per chunk (once; it is never the contended
        // comparison and its cost is orders of magnitude off either way).
        let mut graph = g.clone();
        let t = Instant::now();
        let mut cores = Vec::new();
        for chunk in stream.chunks(bs) {
            for &(u, v) in chunk {
                graph.insert_edge_unchecked(u, v);
            }
            cores = core_decomposition(&graph);
        }
        let recompute_secs = t.elapsed().as_secs_f64();
        assert_eq!(cores, batched_cores, "engines disagree");

        results.push(Measurement {
            batch_size: bs,
            batched_eps: edges_per_sec(stream.len(), batched_secs[bi]),
            single_eps,
            recompute_eps: edges_per_sec(stream.len(), recompute_secs),
        });
    }

    row(
        &[
            "batch".into(),
            "batched e/s".into(),
            "single e/s".into(),
            "recompute e/s".into(),
            "batched/single".into(),
            "batched/recompute".into(),
        ],
        8,
        18,
    );
    for m in &results {
        row(
            &[
                format!("{}", m.batch_size),
                format!("{:.0}", m.batched_eps),
                format!("{:.0}", m.single_eps),
                format!("{:.0}", m.recompute_eps),
                fmt_ratio(m.batched_eps, m.single_eps),
                fmt_ratio(m.batched_eps, m.recompute_eps),
            ],
            8,
            18,
        );
    }

    let headline = results
        .iter()
        .map(|m| m.batched_eps / m.single_eps)
        .fold(f64::MIN, f64::max);
    println!("\nbest batched/single ratio: {headline:.2}x (target >= 1.5x)");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"base\": {{ \"n\": {}, \"m\": {}, \"generator\": \"barabasi_albert\", \"attach\": {}, \"seed\": {} }},\n",
        g.num_vertices(),
        g.num_edges(),
        args.attach,
        args.seed
    ));
    json.push_str(&format!("  \"updates\": {},\n", args.updates));
    json.push_str(&format!("  \"single_edges_per_sec\": {:.1},\n", single_eps));
    json.push_str("  \"batch\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"batch_size\": {}, \"batched_edges_per_sec\": {:.1}, \"recompute_edges_per_sec\": {:.1}, \"ratio_vs_single\": {:.3}, \"ratio_vs_recompute\": {:.3} }}{}\n",
            m.batch_size,
            m.batched_eps,
            m.recompute_eps,
            m.batched_eps / m.single_eps,
            m.batched_eps / m.recompute_eps,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"best_ratio_vs_single\": {:.3},\n  \"target_ratio\": 1.5\n}}\n",
        headline
    ));
    let mut f = std::fs::File::create(&args.out).expect("create BENCH_batch.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_batch.json");
    println!("wrote {}", args.out);
}
