//! Batched vs one-at-a-time vs full-recompute update throughput, for
//! **insertion**, **removal**, and mixed **churn** streams.
//!
//! The experiment behind the batched update engine: build a power-law
//! base graph, prepare an update stream, and apply it three ways —
//!
//! * **batched** — `OrderCore::insert_edges` / `remove_edges` in chunks
//!   of `batch_size` (adjacency pre-reservation, level-sorted
//!   application, rank caching, one multi-seed pass per affected level,
//!   one compaction opportunity per removal batch);
//! * **single** — the classic `insert_edge` / `remove_edge` loop;
//! * **recompute** — mutate the graph and rerun the `O(m + n)`
//!   decomposition once per chunk (the "no index" strawman, which
//!   batching *should* beat until chunks approach the graph size).
//!
//! The churn section interleaves insert/remove micro-batches from
//! `kcore_gen::churn_stream` — the mixed workload a real ingest loop
//! delivers — batched vs one-at-a-time.
//!
//! Results go to stdout as tables and to `BENCH_batch.json` as
//! machine-readable edges/sec per batch size, so future changes can
//! track the throughput curves. Run with `--release`; the JSON includes
//! the batched-vs-single ratios the acceptance gates read, and the
//! `--min-*-ratio` flags turn those gates into a nonzero exit status for
//! CI.

use kcore_bench::{degree_weighted_fresh_edges, fmt_ratio, row};
use kcore_decomp::core_decomposition;
use kcore_gen::{barabasi_albert, churn_stream, ChurnBatch};
use kcore_graph::{CsrGraph, CsrLayout, DynamicGraph};
use kcore_maint::{PlanPolicy, PlannedTreapCore, TreapOrderCore, UpdateStats};
use std::io::Write;
use std::time::Instant;

struct Args {
    n: usize,
    attach: usize,
    updates: usize,
    seed: u64,
    out: String,
    /// `0.0` disables the corresponding gate.
    min_insert_ratio: f64,
    min_removal_ratio: f64,
    min_churn_ratio: f64,
    min_planner_ratio: f64,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            n: 50_000,
            attach: 4,
            updates: 10_000,
            seed: 42,
            out: "BENCH_batch.json".to_string(),
            min_insert_ratio: 0.0,
            min_removal_ratio: 0.0,
            min_churn_ratio: 0.0,
            min_planner_ratio: 0.0,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
            };
            match argv[i].as_str() {
                "--n" => a.n = need(i).parse().expect("bad --n"),
                "--attach" => a.attach = need(i).parse().expect("bad --attach"),
                "--updates" => a.updates = need(i).parse().expect("bad --updates"),
                "--seed" => a.seed = need(i).parse().expect("bad --seed"),
                "--out" => a.out = need(i).clone(),
                "--min-insert-ratio" => {
                    a.min_insert_ratio = need(i).parse().expect("bad --min-insert-ratio")
                }
                "--min-removal-ratio" => {
                    a.min_removal_ratio = need(i).parse().expect("bad --min-removal-ratio")
                }
                "--min-churn-ratio" => {
                    a.min_churn_ratio = need(i).parse().expect("bad --min-churn-ratio")
                }
                "--min-planner-ratio" => {
                    a.min_planner_ratio = need(i).parse().expect("bad --min-planner-ratio")
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --n N  --attach M  --updates K  --seed S  --out FILE  \
                         --min-insert-ratio R  --min-removal-ratio R  --min-churn-ratio R  \
                         --min-planner-ratio R"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        a
    }
}

struct Measurement {
    batch_size: usize,
    batched_eps: f64,
    single_eps: f64,
    recompute_eps: f64,
}

fn edges_per_sec(edges: usize, secs: f64) -> f64 {
    if secs == 0.0 {
        f64::INFINITY
    } else {
        edges as f64 / secs
    }
}

fn best_ratio(results: &[Measurement]) -> f64 {
    results
        .iter()
        .map(|m| m.batched_eps / m.single_eps)
        .fold(f64::MIN, f64::max)
}

fn print_table(title: &str, results: &[Measurement]) {
    println!("\n== {title} ==");
    row(
        &[
            "batch".into(),
            "batched e/s".into(),
            "single e/s".into(),
            "recompute e/s".into(),
            "batched/single".into(),
            "batched/recompute".into(),
        ],
        8,
        18,
    );
    for m in results {
        row(
            &[
                format!("{}", m.batch_size),
                format!("{:.0}", m.batched_eps),
                format!("{:.0}", m.single_eps),
                if m.recompute_eps > 0.0 {
                    format!("{:.0}", m.recompute_eps)
                } else {
                    "-".into()
                },
                fmt_ratio(m.batched_eps, m.single_eps),
                if m.recompute_eps > 0.0 {
                    fmt_ratio(m.batched_eps, m.recompute_eps)
                } else {
                    "-".into()
                },
            ],
            8,
            18,
        );
    }
}

/// The per-section JSON body (batch array + ratio summary), indented by
/// `indent`; no trailing newline so callers control the section close.
fn json_section(results: &[Measurement], target: f64, indent: &str) -> String {
    let mut s = format!("{indent}\"batch\": [\n");
    for (i, m) in results.iter().enumerate() {
        // An unmeasured recompute baseline is `null`, never a fake 0.0
        // rate that a trend reader would chart as a collapse.
        let (recompute_eps, ratio_vs_recompute) = if m.recompute_eps > 0.0 {
            (
                format!("{:.1}", m.recompute_eps),
                format!("{:.3}", m.batched_eps / m.recompute_eps),
            )
        } else {
            ("null".to_string(), "null".to_string())
        };
        s.push_str(&format!(
            "{indent}  {{ \"batch_size\": {}, \"batched_edges_per_sec\": {:.1}, \"recompute_edges_per_sec\": {recompute_eps}, \"ratio_vs_single\": {:.3}, \"ratio_vs_recompute\": {ratio_vs_recompute} }}{}\n",
            m.batch_size,
            m.batched_eps,
            m.batched_eps / m.single_eps,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!("{indent}],\n"));
    s.push_str(&format!(
        "{indent}\"best_ratio_vs_single\": {:.3},\n{indent}\"target_ratio\": {target:.1}",
        best_ratio(results)
    ));
    s
}

/// Every timed configuration is measured `REPS` times keeping the best
/// (minimum) wall time, and the repetitions of *all* configurations are
/// interleaved — so slow host intervals (this is typically a
/// shared/virtualised box) hit every configuration equally instead of
/// biasing whichever ran during the bad window.
const REPS: usize = 5;

fn measure_inserts(
    g: &DynamicGraph,
    stream: &[(u32, u32)],
    batch_sizes: &[usize],
    seed: u64,
) -> Vec<Measurement> {
    let mut single_secs = f64::INFINITY;
    let mut batched_secs = vec![f64::INFINITY; batch_sizes.len()];
    let mut batched_cores: Vec<u32> = Vec::new();
    for _ in 0..REPS {
        // One-at-a-time reference (batch size is irrelevant to it).
        let mut engine = TreapOrderCore::new(g.clone(), seed);
        let t = Instant::now();
        for &(u, v) in stream {
            engine.insert_edge(u, v).expect("fresh edge");
        }
        single_secs = single_secs.min(t.elapsed().as_secs_f64());

        for (bi, &bs) in batch_sizes.iter().enumerate() {
            let mut engine = TreapOrderCore::new(g.clone(), seed);
            let t = Instant::now();
            let mut stats = UpdateStats::default();
            for chunk in stream.chunks(bs) {
                stats.absorb(engine.insert_edges(chunk));
            }
            batched_secs[bi] = batched_secs[bi].min(t.elapsed().as_secs_f64());
            assert_eq!(stats.skipped, 0, "stream contains only fresh edges");
            batched_cores = engine.cores().to_vec();
        }
    }
    let single_eps = edges_per_sec(stream.len(), single_secs);

    let mut results = Vec::new();
    for (bi, &bs) in batch_sizes.iter().enumerate() {
        // Full recompute per chunk (once; it is never the contended
        // comparison and its cost is orders of magnitude off either way).
        let mut graph = g.clone();
        let t = Instant::now();
        let mut cores = Vec::new();
        for chunk in stream.chunks(bs) {
            for &(u, v) in chunk {
                graph.insert_edge_unchecked(u, v);
            }
            cores = core_decomposition(&graph);
        }
        let recompute_secs = t.elapsed().as_secs_f64();
        assert_eq!(cores, batched_cores, "engines disagree on insertion");

        results.push(Measurement {
            batch_size: bs,
            batched_eps: edges_per_sec(stream.len(), batched_secs[bi]),
            single_eps,
            recompute_eps: edges_per_sec(stream.len(), recompute_secs),
        });
    }
    results
}

fn measure_removals(
    g_full: &DynamicGraph,
    stream: &[(u32, u32)],
    batch_sizes: &[usize],
    seed: u64,
) -> Vec<Measurement> {
    let base_cores_after = {
        let mut graph = g_full.clone();
        for &(u, v) in stream {
            graph.remove_edge(u, v).expect("stream edge present");
        }
        core_decomposition(&graph)
    };

    let mut single_secs = f64::INFINITY;
    let mut batched_secs = vec![f64::INFINITY; batch_sizes.len()];
    for _ in 0..REPS {
        let mut engine = TreapOrderCore::new(g_full.clone(), seed);
        let t = Instant::now();
        for &(u, v) in stream {
            engine.remove_edge(u, v).expect("stream edge present");
        }
        single_secs = single_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(engine.cores(), &base_cores_after[..]);

        for (bi, &bs) in batch_sizes.iter().enumerate() {
            let mut engine = TreapOrderCore::new(g_full.clone(), seed);
            let t = Instant::now();
            let mut stats = UpdateStats::default();
            for chunk in stream.chunks(bs) {
                stats.absorb(engine.remove_edges(chunk));
            }
            batched_secs[bi] = batched_secs[bi].min(t.elapsed().as_secs_f64());
            assert_eq!(stats.skipped, 0, "stream edges are all present");
            assert_eq!(engine.cores(), &base_cores_after[..], "removal diverged");
        }
    }
    let single_eps = edges_per_sec(stream.len(), single_secs);

    let mut results = Vec::new();
    for (bi, &bs) in batch_sizes.iter().enumerate() {
        let mut graph = g_full.clone();
        let t = Instant::now();
        for chunk in stream.chunks(bs) {
            for &(u, v) in chunk {
                graph.remove_edge(u, v).expect("stream edge present");
            }
            let _ = core_decomposition(&graph);
        }
        let recompute_secs = t.elapsed().as_secs_f64();

        results.push(Measurement {
            batch_size: bs,
            batched_eps: edges_per_sec(stream.len(), batched_secs[bi]),
            single_eps,
            recompute_eps: edges_per_sec(stream.len(), recompute_secs),
        });
    }
    results
}

fn measure_churn(
    g: &DynamicGraph,
    total_ops: usize,
    batch_sizes: &[usize],
    seed: u64,
) -> Vec<Measurement> {
    let mut results = Vec::new();
    for &bs in batch_sizes {
        // Each micro-batch carries bs/2 inserts + bs/2 removals; the
        // whole stream totals ~total_ops edge operations.
        let half = (bs / 2).max(1);
        let batches = (total_ops / (2 * half)).max(1);
        let stream = churn_stream(g, batches, half, half, seed ^ 0xC0FFEE);
        let ops: usize = stream.iter().map(|b| b.ops()).sum();

        let mut single_secs = f64::INFINITY;
        let mut batched_secs = f64::INFINITY;
        let mut single_cores: Vec<u32> = Vec::new();
        let mut batched_cores: Vec<u32> = Vec::new();
        for _ in 0..REPS {
            let mut engine = TreapOrderCore::new(g.clone(), seed);
            let t = Instant::now();
            for b in &stream {
                for &(u, v) in &b.inserts {
                    engine.insert_edge(u, v).expect("churn insert fresh");
                }
                for &(u, v) in &b.removes {
                    engine.remove_edge(u, v).expect("churn removal live");
                }
            }
            single_secs = single_secs.min(t.elapsed().as_secs_f64());
            single_cores = engine.cores().to_vec();

            let mut engine = TreapOrderCore::new(g.clone(), seed);
            let t = Instant::now();
            let mut stats = UpdateStats::default();
            for b in &stream {
                stats.absorb(engine.insert_edges(&b.inserts));
                stats.absorb(engine.remove_edges(&b.removes));
            }
            batched_secs = batched_secs.min(t.elapsed().as_secs_f64());
            assert_eq!(stats.skipped, 0, "churn streams replay cleanly");
            batched_cores = engine.cores().to_vec();
        }
        assert_eq!(batched_cores, single_cores, "churn engines disagree");

        // Recompute baseline for churn too: mutate a plain graph and rerun
        // the O(m + n) decomposition once per micro-batch (measured once —
        // never the contended comparison; see measure_inserts).
        let mut graph = g.clone();
        let t = Instant::now();
        let mut recompute_cores = Vec::new();
        for b in &stream {
            for &(u, v) in &b.inserts {
                graph.insert_edge_unchecked(u, v);
            }
            for &(u, v) in &b.removes {
                graph.remove_edge(u, v).expect("churn removal live");
            }
            recompute_cores = core_decomposition(&graph);
        }
        let recompute_secs = t.elapsed().as_secs_f64();
        assert_eq!(
            recompute_cores, batched_cores,
            "churn recompute baseline disagrees"
        );

        results.push(Measurement {
            batch_size: bs,
            batched_eps: edges_per_sec(ops, batched_secs),
            single_eps: edges_per_sec(ops, single_secs),
            recompute_eps: edges_per_sec(ops, recompute_secs),
        });
    }
    results
}

/// Planner measurements repeat fewer times than the plain sections (three
/// policies per batch size multiply the work); policies are interleaved
/// within each repetition so host noise hits them equally.
const PLANNER_REPS: usize = 3;

/// `ForceRecompute` at tiny batch sizes is the strawman the planner
/// exists to avoid (one decomposition per chunk); a capped prefix prices
/// it accurately without hour-long runs. The prefix bias is negligible:
/// the graph grows by at most `cap × batch_size` edges over `n + m ≥`
/// hundreds of thousands of units, so the extrapolated rate is within a
/// couple of percent of a full run — and the capped sizes are exactly
/// those where `ForceRecompute` loses by 50–500×, far from the gated
/// ratio. Full-stream runs (every batch size that matters for the gate)
/// additionally verify final cores against the oracle; the recompute
/// path's correctness at every size is property-tested in `kcore-maint`.
const RECOMPUTE_CAP_CHUNKS: usize = 50;

const PLANNER_POLICIES: [(PlanPolicy, &str); 3] = [
    (PlanPolicy::Auto, "auto"),
    (PlanPolicy::ForceBatch, "force_batch"),
    (PlanPolicy::ForceRecompute, "force_recompute"),
];

struct PlannerMeasurement {
    batch_size: usize,
    /// edges/sec per policy, in `PLANNER_POLICIES` order.
    eps: [f64; 3],
}

impl PlannerMeasurement {
    fn auto_eps(&self) -> f64 {
        self.eps[0]
    }

    /// The better of the two forced strategies — the bar Auto must track.
    fn best_forced(&self) -> f64 {
        self.eps[1].max(self.eps[2])
    }

    fn ratio(&self) -> f64 {
        self.auto_eps() / self.best_forced()
    }
}

/// One timed pass of an insert/removal stream through a [`PlannedTreapCore`]
/// under `policy`. Returns `(edges processed, secs)`; asserts the final
/// cores against `expected` when the whole stream was processed.
fn planner_stream_pass(
    g: &DynamicGraph,
    stream: &[(u32, u32)],
    bs: usize,
    policy: PlanPolicy,
    removal: bool,
    seed: u64,
    expected: &[u32],
) -> (usize, f64) {
    let chunks_total = stream.len().div_ceil(bs);
    let cap = if matches!(policy, PlanPolicy::ForceRecompute) && chunks_total > RECOMPUTE_CAP_CHUNKS
    {
        RECOMPUTE_CAP_CHUNKS
    } else {
        chunks_total
    };
    let mut pc = PlannedTreapCore::with_policy(g.clone(), seed, policy);
    let t = Instant::now();
    let mut processed = 0usize;
    let mut stats = UpdateStats::default();
    for chunk in stream.chunks(bs).take(cap) {
        stats.absorb(if removal {
            pc.remove_edges(chunk)
        } else {
            pc.insert_edges(chunk)
        });
        processed += chunk.len();
    }
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(stats.skipped, 0, "planner stream edges are always valid");
    if cap == chunks_total {
        assert_eq!(pc.cores(), expected, "{policy:?} diverged from the oracle");
    }
    (processed, secs)
}

fn measure_planner_stream(
    g: &DynamicGraph,
    stream: &[(u32, u32)],
    batch_sizes: &[usize],
    removal: bool,
    seed: u64,
    expected: &[u32],
) -> Vec<PlannerMeasurement> {
    let mut best = vec![[f64::INFINITY; 3]; batch_sizes.len()];
    let mut edges = vec![[0usize; 3]; batch_sizes.len()];
    for _ in 0..PLANNER_REPS {
        for (bi, &bs) in batch_sizes.iter().enumerate() {
            for (pi, &(policy, _)) in PLANNER_POLICIES.iter().enumerate() {
                let (processed, secs) =
                    planner_stream_pass(g, stream, bs, policy, removal, seed, expected);
                best[bi][pi] = best[bi][pi].min(secs);
                edges[bi][pi] = processed;
            }
        }
    }
    batch_sizes
        .iter()
        .enumerate()
        .map(|(bi, &bs)| PlannerMeasurement {
            batch_size: bs,
            eps: std::array::from_fn(|pi| edges_per_sec(edges[bi][pi], best[bi][pi])),
        })
        .collect()
}

/// One timed pass of a churn stream through [`PlannedTreapCore::apply_churn`]
/// (one stage-1 decision per micro-batch over both halves).
fn planner_churn_pass(
    g: &DynamicGraph,
    stream: &[ChurnBatch],
    policy: PlanPolicy,
    seed: u64,
    expected: &[u32],
) -> (usize, f64) {
    let cap = if matches!(policy, PlanPolicy::ForceRecompute) && stream.len() > RECOMPUTE_CAP_CHUNKS
    {
        RECOMPUTE_CAP_CHUNKS
    } else {
        stream.len()
    };
    let mut pc = PlannedTreapCore::with_policy(g.clone(), seed, policy);
    let t = Instant::now();
    let mut ops = 0usize;
    let mut stats = UpdateStats::default();
    for b in stream.iter().take(cap) {
        stats.absorb(pc.apply_churn(&b.inserts, &b.removes));
        ops += b.ops();
    }
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(stats.skipped, 0, "churn streams replay cleanly");
    if cap == stream.len() {
        assert_eq!(pc.cores(), expected, "{policy:?} diverged from the oracle");
    }
    (ops, secs)
}

fn measure_planner_churn(
    g: &DynamicGraph,
    total_ops: usize,
    batch_sizes: &[usize],
    seed: u64,
) -> Vec<PlannerMeasurement> {
    // Same stream construction as `measure_churn` (identical seeds), so
    // the planner numbers are comparable to the plain-engine section.
    let streams: Vec<Vec<ChurnBatch>> = batch_sizes
        .iter()
        .map(|&bs| {
            let half = (bs / 2).max(1);
            let batches = (total_ops / (2 * half)).max(1);
            churn_stream(g, batches, half, half, seed ^ 0xC0FFEE)
        })
        .collect();
    let expected: Vec<Vec<u32>> = streams
        .iter()
        .map(|stream| {
            let mut graph = g.clone();
            for b in stream {
                for &(u, v) in &b.inserts {
                    graph.insert_edge_unchecked(u, v);
                }
                for &(u, v) in &b.removes {
                    graph.remove_edge(u, v).expect("churn removal live");
                }
            }
            core_decomposition(&graph)
        })
        .collect();

    let mut best = vec![[f64::INFINITY; 3]; batch_sizes.len()];
    let mut ops = vec![[0usize; 3]; batch_sizes.len()];
    for _ in 0..PLANNER_REPS {
        for (bi, stream) in streams.iter().enumerate() {
            for (pi, &(policy, _)) in PLANNER_POLICIES.iter().enumerate() {
                let (o, secs) = planner_churn_pass(g, stream, policy, seed, &expected[bi]);
                best[bi][pi] = best[bi][pi].min(secs);
                ops[bi][pi] = o;
            }
        }
    }
    batch_sizes
        .iter()
        .enumerate()
        .map(|(bi, &bs)| PlannerMeasurement {
            batch_size: bs,
            eps: std::array::from_fn(|pi| edges_per_sec(ops[bi][pi], best[bi][pi])),
        })
        .collect()
}

fn print_planner_table(title: &str, results: &[PlannerMeasurement]) {
    println!("\n== planner: {title} ==");
    row(
        &[
            "batch".into(),
            "auto e/s".into(),
            "force-batch e/s".into(),
            "force-recompute e/s".into(),
            "auto/best".into(),
        ],
        8,
        20,
    );
    for m in results {
        row(
            &[
                format!("{}", m.batch_size),
                format!("{:.0}", m.auto_eps()),
                format!("{:.0}", m.eps[1]),
                format!("{:.0}", m.eps[2]),
                format!("{:.3}", m.ratio()),
            ],
            8,
            20,
        );
    }
}

fn planner_json_section(results: &[PlannerMeasurement], indent: &str) -> String {
    let mut s = String::new();
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "{indent}{{ \"batch_size\": {}, \"auto_edges_per_sec\": {:.1}, \"force_batch_edges_per_sec\": {:.1}, \"force_recompute_edges_per_sec\": {:.1}, \"ratio_vs_best\": {:.3} }}{}\n",
            m.batch_size,
            m.eps[0],
            m.eps[1],
            m.eps[2],
            m.ratio(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s
}

fn min_planner_ratio(sections: &[&[PlannerMeasurement]]) -> f64 {
    sections
        .iter()
        .flat_map(|s| s.iter())
        .map(PlannerMeasurement::ratio)
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = Args::parse();
    let g = barabasi_albert(args.n, args.attach, args.seed);
    let stream = degree_weighted_fresh_edges(&g, args.updates, args.seed ^ 0xBEEF);
    println!(
        "base graph: n = {}, m = {} (barabasi_albert attach {}), stream = {} fresh edges",
        g.num_vertices(),
        g.num_edges(),
        args.attach,
        args.updates
    );

    // Untimed warm-up: touches every structure once so the first timed
    // measurement does not pay cold caches / CPU frequency ramp.
    {
        let mut warm = TreapOrderCore::new(g.clone(), args.seed);
        for &(u, v) in &stream {
            warm.insert_edge(u, v).expect("fresh edge");
        }
        for &(u, v) in stream.iter().rev() {
            warm.remove_edge(u, v).expect("edge present");
        }
    }

    // 1..=1k per the bench-trajectory protocol, plus the whole stream as
    // one batch — the "batched update of 10k edges" headline number.
    let mut batch_sizes = vec![1usize, 10, 100, 1_000];
    if args.updates > 1_000 {
        batch_sizes.push(args.updates);
    }

    let insert_results = measure_inserts(&g, &stream, &batch_sizes, args.seed);
    print_table("insertion", &insert_results);

    // Removal departs from the post-insertion graph, tearing the same
    // stream back out.
    let mut g_full = g.clone();
    for &(u, v) in &stream {
        g_full.insert_edge_unchecked(u, v);
    }
    let removal_results = measure_removals(&g_full, &stream, &batch_sizes, args.seed);
    print_table("removal", &removal_results);

    // Churn: micro-batches of interleaved inserts + removals (batch size
    // 1 is exactly the single loop — skip it).
    let churn_sizes: Vec<usize> = batch_sizes.iter().copied().filter(|&b| b >= 10).collect();
    let churn_results = measure_churn(&g, args.updates, &churn_sizes, args.seed);
    print_table("churn (mixed insert/remove)", &churn_results);

    // ---- adaptive planner: Auto must track max(batched, recompute) ----
    let insert_expected = {
        let mut graph = g.clone();
        for &(u, v) in &stream {
            graph.insert_edge_unchecked(u, v);
        }
        core_decomposition(&graph)
    };
    let planner_insert = measure_planner_stream(
        &g,
        &stream,
        &batch_sizes,
        false,
        args.seed,
        &insert_expected,
    );
    print_planner_table("insertion", &planner_insert);

    let removal_expected = core_decomposition(&g);
    let planner_removal = measure_planner_stream(
        &g_full,
        &stream,
        &batch_sizes,
        true,
        args.seed,
        &removal_expected,
    );
    print_planner_table("removal", &planner_removal);

    let planner_churn = measure_planner_churn(&g, args.updates, &churn_sizes, args.seed);
    print_planner_table("churn (mixed insert/remove)", &planner_churn);

    let planner_min_ratio = min_planner_ratio(&[&planner_insert, &planner_removal, &planner_churn]);
    // The headline acceptance number: planned churn at the largest batch
    // vs the unconditional order-based engine at the same batch size.
    let churn_speedup_at_max_batch = planner_churn
        .last()
        .zip(churn_results.last())
        .map(|(p, c)| p.auto_eps() / c.batched_eps)
        .unwrap_or(0.0);
    println!(
        "\nplanner: min auto/best ratio {planner_min_ratio:.3} (target >= 0.8), \
         churn speedup at batch {} = {churn_speedup_at_max_batch:.2}x vs the plain batched engine",
        planner_churn.last().map(|m| m.batch_size).unwrap_or(0),
    );

    let insert_best = best_ratio(&insert_results);
    let removal_best = best_ratio(&removal_results);
    let churn_best = best_ratio(&churn_results);
    println!(
        "\nbest batched/single — insert: {insert_best:.2}x (target >= 1.5x), \
         removal: {removal_best:.2}x (target >= 1.3x), churn: {churn_best:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"base\": {{ \"n\": {}, \"m\": {}, \"generator\": \"barabasi_albert\", \"attach\": {}, \"seed\": {} }},\n",
        g.num_vertices(),
        g.num_edges(),
        args.attach,
        args.seed
    ));
    json.push_str(&format!("  \"updates\": {},\n", args.updates));
    json.push_str(&format!(
        "  \"single_edges_per_sec\": {:.1},\n",
        insert_results[0].single_eps
    ));
    json.push_str(&json_section(&insert_results, 1.5, "  "));
    json.push_str(",\n  \"removal\": {\n");
    json.push_str(&format!(
        "    \"single_edges_per_sec\": {:.1},\n",
        removal_results[0].single_eps
    ));
    json.push_str(&json_section(&removal_results, 1.3, "    "));
    json.push_str("\n  },\n  \"churn\": {\n");
    json.push_str(&format!(
        "    \"single_edges_per_sec\": {:.1},\n",
        churn_results[0].single_eps
    ));
    json.push_str(&json_section(&churn_results, 1.0, "    "));
    json.push_str("\n  },\n  \"planner\": {\n");
    json.push_str(
        "    \"note\": \"recompute strategy defers the k-order rebuild; the index is rebuilt lazily on the next order-based operation\",\n",
    );
    json.push_str("    \"insert\": [\n");
    json.push_str(&planner_json_section(&planner_insert, "      "));
    json.push_str("    ],\n    \"removal\": [\n");
    json.push_str(&planner_json_section(&planner_removal, "      "));
    json.push_str("    ],\n    \"churn\": [\n");
    json.push_str(&planner_json_section(&planner_churn, "      "));
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"min_ratio_vs_best\": {planner_min_ratio:.3},\n    \"target_ratio\": 0.8,\n    \"churn_speedup_at_max_batch\": {churn_speedup_at_max_batch:.3}\n"
    ));
    json.push_str("  },\n");

    // ---- CSR memory layout: bytes/edge, plain vs delta-compressed ----
    let csr_plain = CsrGraph::from(&g_full);
    let csr_delta = csr_plain.to_layout(CsrLayout::Delta);
    println!(
        "\ncsr bytes/edge on the saturated graph (m = {}): plain {:.2} ({} bytes), \
         delta {:.2} ({} bytes, {:.1}% of plain)",
        g_full.num_edges(),
        csr_plain.bytes_per_edge(),
        csr_plain.memory_bytes(),
        csr_delta.bytes_per_edge(),
        csr_delta.memory_bytes(),
        100.0 * csr_delta.memory_bytes() as f64 / csr_plain.memory_bytes() as f64,
    );
    json.push_str(&format!(
        "  \"csr_memory\": {{ \"edges\": {}, \
         \"plain\": {{ \"bytes\": {}, \"bytes_per_edge\": {:.3} }}, \
         \"delta\": {{ \"bytes\": {}, \"bytes_per_edge\": {:.3} }} }}\n",
        g_full.num_edges(),
        csr_plain.memory_bytes(),
        csr_plain.bytes_per_edge(),
        csr_delta.memory_bytes(),
        csr_delta.bytes_per_edge(),
    ));
    json.push_str("}\n");
    let mut f = std::fs::File::create(&args.out).expect("create BENCH_batch.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_batch.json");
    println!("wrote {}", args.out);

    // ---- CI gates ----
    let mut failed = false;
    for (name, best, min) in [
        ("insert", insert_best, args.min_insert_ratio),
        ("removal", removal_best, args.min_removal_ratio),
        ("churn", churn_best, args.min_churn_ratio),
    ] {
        if min > 0.0 && best < min {
            eprintln!("GATE FAILED: {name} batched/single {best:.3} < required {min}");
            failed = true;
        }
    }
    if args.min_planner_ratio > 0.0 && planner_min_ratio < args.min_planner_ratio {
        eprintln!(
            "GATE FAILED: planner auto/best {planner_min_ratio:.3} < required {}",
            args.min_planner_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
