//! Baseline panorama (extension): the three search-space regimes of
//! Fig 5 as actual engines — SubCore (visits `sc`, no index), Traversal
//! (visits `pc`, maintains `mcd`/`pcd`), Order (visits `oc`, maintains
//! the k-order) — plus the naive full recompute, on the same update
//! streams.
//!
//! `cargo run --release -p kcore-bench --bin baselines`

use kcore_bench::{fmt_ratio, fmt_secs, order_engine, row, time_insertions, time_removals, Cli};
use kcore_maint::RecomputeCore;
use kcore_traversal::{SubCoreAlgo, TraversalCore};

fn main() {
    let mut cli = Cli::parse();
    if cli.datasets.len() == 11 {
        cli.datasets = vec![
            "patents".into(),
            "orkut".into(),
            "gowalla".into(),
            "ca".into(),
        ];
    }
    println!(
        "== Baseline panorama: time (s) and visited/|V*| over {} updates (scale {:?}) ==",
        cli.updates, cli.scale
    );
    row(
        &[
            "dataset".into(),
            "phase".into(),
            "Order".into(),
            "Trav-2".into(),
            "SubCore".into(),
            "Recompute".into(),
            "oc-ratio".into(),
            "pc-ratio".into(),
            "sc-ratio".into(),
        ],
        12,
        11,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        // cap the recompute baseline to a subset so the run stays sane
        let naive_stream: Vec<_> = ds.stream.iter().copied().take(200).collect();

        let mut order = order_engine(&ds, cli.seed);
        let o_ins = time_insertions(&mut order, &ds.stream);
        let mut trav = TraversalCore::new(ds.base.clone(), 2);
        let t_ins = time_insertions(&mut trav, &ds.stream);
        let mut sub = SubCoreAlgo::new(ds.base.clone());
        let s_ins = time_insertions(&mut sub, &ds.stream);
        assert_eq!(order.cores(), trav.cores());
        assert_eq!(order.cores(), sub.cores());
        let mut naive = RecomputeCore::new(ds.base.clone());
        let n_ins = time_insertions(&mut naive, &naive_stream);
        // scale the naive time up to the full stream for comparability
        let n_scaled = n_ins.secs() * ds.stream.len() as f64 / naive_stream.len().max(1) as f64;

        row(
            &[
                name.into(),
                "insert".into(),
                fmt_secs(o_ins.elapsed),
                fmt_secs(t_ins.elapsed),
                fmt_secs(s_ins.elapsed),
                format!("{n_scaled:.3}*"),
                fmt_ratio(o_ins.stats.visited as f64, o_ins.stats.changed as f64),
                fmt_ratio(t_ins.stats.visited as f64, t_ins.stats.changed as f64),
                fmt_ratio(s_ins.stats.visited as f64, s_ins.stats.changed as f64),
            ],
            12,
            11,
        );

        let o_rem = time_removals(&mut order, &ds.stream);
        let t_rem = time_removals(&mut trav, &ds.stream);
        let s_rem = time_removals(&mut sub, &ds.stream);
        assert_eq!(order.cores(), trav.cores());
        assert_eq!(order.cores(), sub.cores());
        row(
            &[
                String::new(),
                "remove".into(),
                fmt_secs(o_rem.elapsed),
                fmt_secs(t_rem.elapsed),
                fmt_secs(s_rem.elapsed),
                "-".into(),
                fmt_ratio(
                    o_rem.stats.visited as f64,
                    o_rem.stats.changed.max(1) as f64,
                ),
                fmt_ratio(
                    t_rem.stats.visited as f64,
                    t_rem.stats.changed.max(1) as f64,
                ),
                fmt_ratio(
                    s_rem.stats.visited as f64,
                    s_rem.stats.changed.max(1) as f64,
                ),
            ],
            12,
            11,
        );
    }
    println!();
    println!("(* recompute extrapolated from 200 updates)");
    println!("expected shape: visited/|V*| ordered oc <= pc <= sc per Fig 5's");
    println!("containment chain; times ordered Order < Trav-2 < SubCore <");
    println!("Recompute on heavy-tailed graphs.");
}
