//! Fig 9: comparison of the k-order generation heuristics — *small*,
//! *large* and *random deg⁺ first* — by the `Σ|V+| / Σ|V*|` ratio over the
//! insertion stream.
//!
//! `cargo run --release -p kcore-bench --bin fig9`

use kcore_bench::{fmt_ratio, row, time_insertions, Cli};
use kcore_decomp::Heuristic;
use kcore_maint::{OrderCore, TreapOrderCore};

fn main() {
    let cli = Cli::parse();
    println!(
        "== Fig 9: |V+|/|V*| by k-order generation heuristic ({} insertions, scale {:?}) ==",
        cli.updates, cli.scale
    );
    row(
        &[
            "dataset".into(),
            "small-deg+".into(),
            "large-deg+".into(),
            "random-deg+".into(),
        ],
        12,
        14,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let mut cells = vec![name.to_string()];
        for h in Heuristic::ALL {
            let mut engine: TreapOrderCore =
                OrderCore::with_heuristic(ds.base.clone(), h, cli.seed);
            let r = time_insertions(&mut engine, &ds.stream);
            cells.push(fmt_ratio(r.stats.visited as f64, r.stats.changed as f64));
        }
        row(&cells, 12, 14);
    }
    println!();
    println!("expected shape: small-deg+-first consistently smallest (paper Fig 9).");
}
