//! Table III: index construction time (seconds) — the order-based index
//! (core decomposition + k-order + treaps + mcd) vs `Trav-h` (core
//! decomposition + `cd_1..cd_h`).
//!
//! `cargo run --release -p kcore-bench --bin table3`

use kcore_bench::{fmt_secs, row, Cli};
use kcore_maint::TreapOrderCore;
use kcore_traversal::TraversalCore;
use std::time::Instant;

const HOPS: [usize; 5] = [2, 3, 4, 5, 6];

fn main() {
    let cli = Cli::parse();
    println!(
        "== Table III: index creation time in seconds (scale {:?}) ==",
        cli.scale
    );
    let mut header = vec!["dataset".to_string(), "Order".to_string()];
    header.extend(HOPS.iter().map(|h| format!("Trav-{h}")));
    row(&header, 12, 10);
    for name in cli.dataset_names() {
        let g = cli.load(name).full_graph();
        let start = Instant::now();
        let oc = TreapOrderCore::new(g.clone(), cli.seed);
        let order_time = start.elapsed();
        std::hint::black_box(&oc);
        let mut cells = vec![name.to_string(), fmt_secs(order_time)];
        for &h in &HOPS {
            let start = Instant::now();
            let tc = TraversalCore::new(g.clone(), h);
            cells.push(fmt_secs(start.elapsed()));
            std::hint::black_box(&tc);
        }
        row(&cells, 12, 10);
    }
    println!();
    println!("expected shape (paper Table III): order-based creation within ~2x");
    println!("of Trav-2; Trav-h creation grows with h.");
}
