//! Ablation study (extension beyond the paper): the cost of the design
//! choices DESIGN.md calls out.
//!
//! 1. `A_k` representation — treap (rank keys, `O(log n)` order tests) vs
//!    tag list (label keys, `O(1)` order tests, occasional relabels);
//! 2. k-order generation heuristic — how much wall-clock the *small
//!    deg⁺ first* rule actually buys (time companion to Fig 9's counts).
//!
//! `cargo run --release -p kcore-bench --bin ablation`

use kcore_bench::{fmt_secs, row, time_insertions, time_removals, Cli};
use kcore_decomp::Heuristic;
use kcore_maint::{OrderCore, SkipOrderCore, TagOrderCore, TreapOrderCore};

fn main() {
    let mut cli = Cli::parse();
    if cli.datasets.len() == 11 {
        cli.datasets = vec!["orkut".into(), "patents".into(), "ca".into()];
    }
    println!(
        "== Ablation 1: A_k = treap vs tag list vs skip list ({} updates, scale {:?}) ==",
        cli.updates, cli.scale
    );
    row(
        &[
            "dataset".into(),
            "treap-ins".into(),
            "tag-ins".into(),
            "skip-ins".into(),
            "treap-rem".into(),
            "tag-rem".into(),
            "skip-rem".into(),
        ],
        12,
        12,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let mut treap: TreapOrderCore = OrderCore::new(ds.base.clone(), cli.seed);
        let ti = time_insertions(&mut treap, &ds.stream);
        let tr = time_removals(&mut treap, &ds.stream);
        let mut tag: TagOrderCore = OrderCore::new(ds.base.clone(), cli.seed);
        let gi = time_insertions(&mut tag, &ds.stream);
        let gr = time_removals(&mut tag, &ds.stream);
        let mut skip: SkipOrderCore = OrderCore::new(ds.base.clone(), cli.seed);
        let si = time_insertions(&mut skip, &ds.stream);
        let sr = time_removals(&mut skip, &ds.stream);
        assert_eq!(treap.cores(), tag.cores(), "variants diverged on {name}");
        assert_eq!(treap.cores(), skip.cores(), "variants diverged on {name}");
        row(
            &[
                name.into(),
                fmt_secs(ti.elapsed),
                fmt_secs(gi.elapsed),
                fmt_secs(si.elapsed),
                fmt_secs(tr.elapsed),
                fmt_secs(gr.elapsed),
                fmt_secs(sr.elapsed),
            ],
            12,
            12,
        );
    }

    println!();
    println!(
        "== Ablation 2: wall-clock by generation heuristic ({} insertions) ==",
        cli.updates
    );
    row(
        &[
            "dataset".into(),
            "small".into(),
            "large".into(),
            "random".into(),
        ],
        12,
        12,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let mut cells = vec![name.to_string()];
        for h in Heuristic::ALL {
            let mut engine: TreapOrderCore =
                OrderCore::with_heuristic(ds.base.clone(), h, cli.seed);
            let r = time_insertions(&mut engine, &ds.stream);
            cells.push(fmt_secs(r.elapsed));
        }
        row(&cells, 12, 12);
    }
}
