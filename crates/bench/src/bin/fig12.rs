//! Fig 12: stability of `OrderInsert` — re-insert a long stream of edges
//! in groups, measuring the per-group time; optionally removing a random
//! earlier edge with probability `p` after each insertion
//! (`p ∈ {0, 0.1, 0.2}` as in the paper).
//!
//! The paper uses 100 groups × 100,000 edges; here the group size scales
//! with `--updates` (default: 20 groups × updates edges).
//!
//! `cargo run --release -p kcore-bench --bin fig12`

use kcore_bench::{order_engine, Cli};
use kcore_gen::sample::{sample_edges, EdgeSampler, Op};
use kcore_maint::CoreMaintainer;
use std::time::Instant;

const GROUPS: usize = 20;
const PS: [f64; 3] = [0.0, 0.1, 0.2];

fn main() {
    let mut cli = Cli::parse();
    if cli.datasets.len() == 11 {
        cli.datasets = vec!["patents".into(), "orkut".into(), "livejournal".into()];
    }
    println!(
        "== Fig 12: OrderInsert stability ({GROUPS} groups x {} edges, scale {:?}) ==",
        cli.updates, cli.scale
    );
    for p in PS {
        println!("\n-- removal mix p = {p} --");
        print!("{:>12}", "group");
        for name in cli.dataset_names() {
            print!(" {name:>14}");
        }
        println!(" (ms per group)");
        // Collect per-dataset engines and samplers.
        let mut runs = Vec::new();
        for name in cli.dataset_names() {
            let ds = cli.load(name);
            // A long re-insertion pool: group edges sampled from the base.
            let pool = sample_edges(&ds.base, GROUPS * cli.updates, cli.seed ^ 0xF12);
            let mut base = ds.base.clone();
            for &(u, v) in &pool {
                base.remove_edge(u, v).unwrap();
            }
            let engine = order_engine(
                &kcore_gen::Dataset {
                    spec: ds.spec,
                    base,
                    stream: Vec::new(),
                },
                cli.seed,
            );
            runs.push((engine, EdgeSampler::new(pool, cli.seed ^ 0x51AB)));
        }
        let mut group = 0usize;
        loop {
            let mut line = format!("{group:>12}");
            let mut any = false;
            for (engine, sampler) in runs.iter_mut() {
                if sampler.remaining() == 0 {
                    line.push_str(&format!(" {:>14}", "-"));
                    continue;
                }
                any = true;
                let start = Instant::now();
                for _ in 0..cli.updates {
                    let Some(Op::Insert(u, v)) = sampler.next_insert() else {
                        break;
                    };
                    engine.insert(u, v).expect("insert");
                    if let Some(Op::Remove(a, b)) = sampler.maybe_remove(p) {
                        engine.remove(a, b).expect("remove");
                    }
                }
                line.push_str(&format!(
                    " {:>14.1}",
                    start.elapsed().as_secs_f64() * 1000.0
                ));
            }
            if !any || group >= GROUPS {
                break;
            }
            println!("{line}");
            group += 1;
        }
    }
    println!();
    println!("expected shape: per-group time stays bounded across groups — the");
    println!("k-order does not degrade under sustained churn (paper Fig 12).");
}
