//! Streaming-ingest throughput → `BENCH_ingest.json`.
//!
//! The experiment behind the `kcore-ingest` subsystem: drive the
//! wall-clock [`IngestService`] (producer thread submitting, writer
//! thread maintaining, snapshots publishing) over the two streaming
//! workload shapes and measure what a deployment would see:
//!
//! * **churn** — `churn_stream` micro-batches (mixed degree-weighted
//!   inserts + uniform removals) submitted with blocking backpressure:
//!   sustained edges/sec, p50/p99 per-flush batch latency, and snapshot
//!   staleness (events submitted but not yet covered by the published
//!   epoch, sampled after every producer batch);
//! * **window** — a `SlidingWindow` admit/expire stream over timestamped
//!   edges: the same metrics for the expiry-heavy shape;
//! * **durable** — the churn workload with journal shipping + periodic
//!   index checkpoints, plus the `recover()` time to rebuild the final
//!   state from disk.
//!
//! Two publication-cost experiments ride along (the copy-on-write
//! snapshot layer's before/after evidence):
//!
//! * **churn_lean** — the churn workload with a 4× smaller queue: the
//!   bounded queue is the staleness budget (staleness ≈ queue occupancy
//!   under blocking submit), and the cheap COW publish path keeps
//!   throughput at the big-queue level while staleness p50 drops
//!   proportionally;
//! * **publish scaling** — the *identical* churn stream over a fixed
//!   active region embedded in a growing vertex universe: per-flush
//!   snapshot-maintenance time (`publish_ns`) must stay roughly flat
//!   (it is O(changed) chunk copies + O(chunks) `Arc` bumps), while the
//!   old full-rebuild cost — modelled as an O(n) cores copy + histogram
//!   rescan, timed on the same data — grows linearly with the universe.
//!   `--max-publish-cost-ratio R` gates the growth ratio between the
//!   largest and smallest |V|.
//!
//! The fault-tolerance layer contributes a **recovery** section: a
//! dedicated empty-base durable run is copied and deliberately damaged
//! once per escalation rung (clean, torn journal tail, corrupt newest
//! snapshot, unparseable journal, no snapshots at all) and `recover()`
//! is timed on each — every rung's restored state is asserted
//! bit-identical to the oracle on exactly the prefix its
//! `RecoveryReport` claims durable. A CPU micro-benchmark prices the
//! KJRN v2 checksummed frame encode against the plain v1 record encode;
//! `--max-append-overhead-ratio R` gates that ratio.
//!
//! The observability layer contributes an **observability** section:
//! the churn workload run metrics-on (the default registry + stage
//! histograms + span ring) and metrics-off (`ObsConfig::disabled()`),
//! with `--max-obs-overhead-ratio R` gating the throughput ratio; the
//! metrics-on run's Prometheus `render_text()` exposition is validated
//! line-by-line and its registry JSON dump is embedded in the output.
//!
//! The sharded deployment contributes a **shards** section: the
//! identical churn stream routed through a [`ShardRouter`] at 1, 2, and
//! 4 hash-partitioned shards (per-shard wall-clock writers, periodic
//! `merged_cut()` barriers), reporting events/sec, merged-cut and
//! merged-read costs, and the cross-shard traffic + boundary-exchange
//! counters that bound the achievable speedup. `--min-shard-scaling R`
//! gates the best multi-shard events/sec ratio over the 1-shard router.
//!
//! Every section's final core numbers are asserted equal to the
//! recompute oracle before any number is reported. `--min-ingest-throughput R`
//! turns the churn edges/sec into a CI exit gate; all gates are
//! **waived with a loud note** (recorded in the JSON, matching
//! `BENCH_par.json`) on hosts with fewer than 2 cores — producer and
//! writer are separate threads, so a 1-core container measures
//! time-slicing, not pipeline behaviour.

use kcore_decomp::core_decomposition;
use kcore_gen::{barabasi_albert, churn_stream, timestamp_edges, SlidingWindow};
use kcore_graph::{DynamicGraph, HashShardMap, ShardMap};
use kcore_ingest::durability::{encode_frame, snapshot_generation_path, DurabilityConfig};
use kcore_ingest::sources::{apply_events, churn_events, window_event};
use kcore_ingest::{recover, GraphEvent, IngestConfig, IngestService, ObsConfig, ShardRouter};
use kcore_maint::PlannerConfig;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    n: usize,
    attach: usize,
    batches: usize,
    inserts_per_batch: usize,
    removes_per_batch: usize,
    max_batch: usize,
    queue: usize,
    seed: u64,
    out: String,
    /// `0.0` disables the gate (events/sec on the churn section).
    min_ingest_throughput: f64,
    /// `0.0` disables the gate (publish p50 growth ratio, largest |V|
    /// over smallest, in the scaling section).
    max_publish_cost_ratio: f64,
    /// `0.0` disables the gate (v2 checksummed journal encode cost over
    /// the plain v1 encode, in the recovery section).
    max_append_overhead_ratio: f64,
    /// `0.0` disables the gate (best multi-shard events/sec over the
    /// 1-shard router baseline, in the shards section).
    min_shard_scaling: f64,
    /// `0.0` disables the gate (metrics-off over metrics-on churn
    /// events/sec, in the observability section).
    max_obs_overhead_ratio: f64,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            n: 20_000,
            attach: 4,
            batches: 200,
            inserts_per_batch: 96,
            removes_per_batch: 64,
            max_batch: 512,
            queue: 4096,
            seed: 42,
            out: "BENCH_ingest.json".to_string(),
            min_ingest_throughput: 0.0,
            max_publish_cost_ratio: 0.0,
            max_append_overhead_ratio: 0.0,
            min_shard_scaling: 0.0,
            max_obs_overhead_ratio: 0.0,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", argv[i]))
            };
            match argv[i].as_str() {
                "--n" => a.n = need(i).parse().expect("bad --n"),
                "--attach" => a.attach = need(i).parse().expect("bad --attach"),
                "--batches" => a.batches = need(i).parse().expect("bad --batches"),
                "--inserts-per-batch" => {
                    a.inserts_per_batch = need(i).parse().expect("bad --inserts-per-batch")
                }
                "--removes-per-batch" => {
                    a.removes_per_batch = need(i).parse().expect("bad --removes-per-batch")
                }
                "--max-batch" => a.max_batch = need(i).parse().expect("bad --max-batch"),
                "--queue" => a.queue = need(i).parse().expect("bad --queue"),
                "--seed" => a.seed = need(i).parse().expect("bad --seed"),
                "--out" => a.out = need(i).clone(),
                "--min-ingest-throughput" => {
                    a.min_ingest_throughput = need(i).parse().expect("bad --min-ingest-throughput")
                }
                "--max-publish-cost-ratio" => {
                    a.max_publish_cost_ratio =
                        need(i).parse().expect("bad --max-publish-cost-ratio")
                }
                "--max-append-overhead-ratio" => {
                    a.max_append_overhead_ratio =
                        need(i).parse().expect("bad --max-append-overhead-ratio")
                }
                "--min-shard-scaling" => {
                    a.min_shard_scaling = need(i).parse().expect("bad --min-shard-scaling")
                }
                "--max-obs-overhead-ratio" => {
                    a.max_obs_overhead_ratio =
                        need(i).parse().expect("bad --max-obs-overhead-ratio")
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --n N  --attach M  --batches B  --inserts-per-batch I  \
                         --removes-per-batch R  --max-batch S  --queue Q  --seed S  \
                         --out FILE  --min-ingest-throughput EPS  --max-publish-cost-ratio R  \
                         --max-append-overhead-ratio R  --min-shard-scaling R  \
                         --max-obs-overhead-ratio R"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        a
    }
}

/// Percentile over an unsorted sample (nearest-rank).
fn percentile(sample: &mut [u64], p: f64) -> u64 {
    if sample.is_empty() {
        return 0;
    }
    sample.sort_unstable();
    let rank = ((p / 100.0) * sample.len() as f64).ceil() as usize;
    sample[rank.clamp(1, sample.len()) - 1]
}

/// Oracle: the stream applied through the shared skip-semantics model
/// (`kcore_ingest::sources::apply_events`), then decomposed.
fn oracle_cores(base: &DynamicGraph, events: &[GraphEvent]) -> Vec<u32> {
    core_decomposition(&apply_events(base, events))
}

struct SectionReport {
    name: &'static str,
    events: usize,
    secs: f64,
    events_per_sec: f64,
    batches: u64,
    epochs: u64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    latency_max_ns: u64,
    staleness_p50: u64,
    staleness_max: u64,
    /// Per-flush snapshot-maintenance time (mirror sync + publication).
    publish_p50_ns: u64,
    publish_p99_ns: u64,
    /// Chunks copy-on-written across the run vs the mirror's chunk count
    /// — the O(changed) witness (copied ≪ chunks × batches).
    chunks_copied: u64,
    mirror_chunks: u64,
    tracked_drains: u64,
    full_syncs: u64,
    /// Registry JSON dump from the run's writer (None when the section
    /// ran with observability disabled).
    metrics_json: Option<String>,
    /// Prometheus exposition lines the run's registry rendered (0 when
    /// observability was off) — every line validated well-formed.
    exposition_lines: usize,
}

/// Validates one Prometheus text-exposition dump: every non-empty line
/// is either a `# TYPE <name> <counter|gauge|histogram>` comment or a
/// `<name>[{le="<float>"}] <number>` sample with a legal metric name.
/// Returns the number of lines checked; panics (bench = CI smoke) on
/// the first malformed line.
fn validate_exposition(text: &str) -> usize {
    let name_ok = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut lines = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        lines += 1;
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.split(' ');
            assert_eq!(parts.next(), Some("TYPE"), "malformed comment: {line:?}");
            let name = parts.next().unwrap_or("");
            assert!(name_ok(name), "bad metric name in comment: {line:?}");
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad metric type: {line:?}"
            );
            assert_eq!(parts.next(), None, "trailing tokens: {line:?}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value separator: {line:?}");
        });
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok_and(f64::is_finite),
            "unparseable sample value: {line:?}"
        );
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let labels = labels.strip_suffix('}').unwrap_or_else(|| {
                    panic!("unclosed label set: {line:?}");
                });
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|v| v.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("expected le=\"...\" label: {line:?}"));
                assert!(
                    le == "+Inf" || le.parse::<f64>().is_ok(),
                    "bad le bound: {line:?}"
                );
                name
            }
            None => series,
        };
        assert!(name_ok(name), "bad metric name: {line:?}");
    }
    lines
}

impl SectionReport {
    fn print(&self) {
        println!(
            "{:<10} {:>8} events in {:>7.3}s = {:>10.0} events/sec | {:>4} batches, {:>4} epochs | \
             batch p50 {:>7}us p99 {:>7}us | staleness p50 {:>5} max {:>5} | \
             publish p50 {:>6}ns, {} of {}x{} chunks copied",
            self.name,
            self.events,
            self.secs,
            self.events_per_sec,
            self.batches,
            self.epochs,
            self.latency_p50_ns / 1_000,
            self.latency_p99_ns / 1_000,
            self.staleness_p50,
            self.staleness_max,
            self.publish_p50_ns,
            self.chunks_copied,
            self.batches,
            self.mirror_chunks,
        );
    }

    fn json(&self, indent: &str) -> String {
        format!(
            "{indent}\"{}\": {{\n\
             {indent}  \"events\": {},\n\
             {indent}  \"secs\": {:.4},\n\
             {indent}  \"events_per_sec\": {:.0},\n\
             {indent}  \"batches\": {},\n\
             {indent}  \"epochs\": {},\n\
             {indent}  \"batch_latency_ns\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }},\n\
             {indent}  \"staleness_events\": {{ \"p50\": {}, \"max\": {} }},\n\
             {indent}  \"publish_ns\": {{ \"p50\": {}, \"p99\": {} }},\n\
             {indent}  \"publish_cow\": {{ \"chunks_copied\": {}, \"mirror_chunks\": {}, \
             \"tracked_drains\": {}, \"full_syncs\": {} }}\n\
             {indent}}}",
            self.name,
            self.events,
            self.secs,
            self.events_per_sec,
            self.batches,
            self.epochs,
            self.latency_p50_ns,
            self.latency_p99_ns,
            self.latency_max_ns,
            self.staleness_p50,
            self.staleness_max,
            self.publish_p50_ns,
            self.publish_p99_ns,
            self.chunks_copied,
            self.mirror_chunks,
            self.tracked_drains,
            self.full_syncs,
        )
    }
}

/// Runs one stream through a freshly spawned service, sampling staleness
/// after every `sample_every` submissions; asserts oracle equality.
fn run_section(
    name: &'static str,
    base: &DynamicGraph,
    events: &[GraphEvent],
    cfg: IngestConfig,
    seed: u64,
    sample_every: usize,
) -> SectionReport {
    let svc = IngestService::spawn_planned(base.clone(), seed, cfg).expect("spawn service");
    let handle = svc.snapshots();
    let metrics = svc.metrics();
    let mut staleness: Vec<u64> = Vec::with_capacity(events.len() / sample_every.max(1) + 1);
    let t0 = Instant::now();
    for (i, &e) in events.iter().enumerate() {
        svc.submit(e).expect("writer alive");
        if i % sample_every.max(1) == sample_every.max(1) - 1 {
            let snap = handle.load();
            staleness.push((i as u64 + 1).saturating_sub(snap.ops));
        }
    }
    svc.flush().expect("final barrier");
    let secs = t0.elapsed().as_secs_f64();
    // Dump + validate the registry after the barrier, outside the timed
    // window: the exposition smoke-check rides every section for free.
    let (metrics_json, exposition_lines) = match &metrics {
        Some(m) => {
            let snap = m.snapshot();
            (
                Some(snap.to_json()),
                validate_exposition(&snap.render_text()),
            )
        }
        None => (None, 0),
    };
    let (report, engine) = svc.shutdown();

    assert_eq!(
        engine.cores(),
        &oracle_cores(base, events)[..],
        "{name}: final state diverged from the recompute oracle"
    );

    SectionReport {
        name,
        events: events.len(),
        secs,
        events_per_sec: events.len() as f64 / secs,
        batches: report.batches,
        epochs: report.epochs_published,
        latency_p50_ns: report.batch_apply.p50(),
        latency_p99_ns: report.batch_apply.p99(),
        latency_max_ns: report.batch_apply.max(),
        staleness_p50: percentile(&mut staleness, 50.0),
        staleness_max: staleness.iter().copied().max().unwrap_or(0),
        publish_p50_ns: report.publish.p50(),
        publish_p99_ns: report.publish.p99(),
        chunks_copied: report.chunks_copied,
        mirror_chunks: report.mirror_chunks,
        tracked_drains: report.tracked_drains,
        full_syncs: report.full_syncs,
        metrics_json,
        exposition_lines,
    }
}

/// One row of the shard-scaling experiment: the identical churn stream
/// routed through a `ShardRouter` at a given shard count.
struct ShardPoint {
    shards: usize,
    events: usize,
    secs: f64,
    events_per_sec: f64,
    cuts: u64,
    /// Wall time of one `merged_cut()` — flush barrier + window replay +
    /// cross-shard boundary repair + COW publication.
    cut_p50_ns: u64,
    cut_p99_ns: u64,
    /// What a concurrent reader pays for `load()` + 64 chunked core
    /// lookups against the merged snapshot.
    read_p50_ns: u64,
    cross_shard_events: u64,
    boundary_exchanges: u64,
    repair_rounds: u64,
}

/// Drives `events` through a hash-partitioned router at `shards`
/// shards with wall-clock per-shard writers, cutting a merged snapshot
/// every `cut_every` submissions; asserts the final cut against the
/// recompute oracle.
fn run_shard_point(
    base: &DynamicGraph,
    events: &[GraphEvent],
    shards: usize,
    cfg: IngestConfig,
    seed: u64,
    cut_every: usize,
) -> ShardPoint {
    let map: Arc<dyn ShardMap> = Arc::new(HashShardMap::new(shards));
    let mut router = ShardRouter::spawn(base.clone(), map, seed, cfg).expect("spawn router");
    let handle = router.subscribe();
    let mut cut_ns: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    for (i, &e) in events.iter().enumerate() {
        router.submit(e).expect("shard writers alive");
        if i % cut_every == cut_every - 1 {
            let c0 = Instant::now();
            router.merged_cut().expect("merged cut");
            cut_ns.push(c0.elapsed().as_nanos() as u64);
        }
    }
    let c0 = Instant::now();
    let last = router.merged_cut().expect("final merged cut");
    cut_ns.push(c0.elapsed().as_nanos() as u64);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        last.cores.to_vec(),
        oracle_cores(base, events),
        "{shards}-shard merged cut diverged from the recompute oracle"
    );
    router.validate().expect("router invariants");

    // Reader probe against the published handle (not the router): a
    // handle clone + 64 strided chunked lookups per rep.
    const READ_REPS: usize = 256;
    let nv = (base.num_vertices() as u32).max(1);
    let mut read_ns: Vec<u64> = Vec::with_capacity(READ_REPS);
    for r in 0..READ_REPS as u32 {
        let p0 = Instant::now();
        let snap = handle.load();
        let mut acc = 0u64;
        let mut v = r.wrapping_mul(2_654_435_761) % nv;
        for _ in 0..64 {
            acc += snap.core(v) as u64;
            v = (v + 127) % nv;
        }
        std::hint::black_box(acc);
        read_ns.push(p0.elapsed().as_nanos() as u64);
    }

    let stats = router.stats();
    router.shutdown();
    ShardPoint {
        shards,
        events: events.len(),
        secs,
        events_per_sec: events.len() as f64 / secs,
        cuts: stats.cuts,
        cut_p50_ns: percentile(&mut cut_ns, 50.0),
        cut_p99_ns: percentile(&mut cut_ns, 99.0),
        read_p50_ns: percentile(&mut read_ns, 50.0),
        cross_shard_events: stats.cross_shard_events,
        boundary_exchanges: stats.repair.boundary_exchanges,
        repair_rounds: stats.repair.rounds,
    }
}

/// One row of the publish-cost scaling experiment: the same per-batch
/// change volume over a growing vertex universe.
struct ScalePoint {
    n: usize,
    publish_p50_ns: u64,
    publish_p99_ns: u64,
    chunks_copied: u64,
    mirror_chunks: u64,
    batches: u64,
    /// The *old* publication model timed on the same final state: an
    /// O(n) cores copy + full histogram rescan per epoch.
    full_rebuild_ns: u64,
}

/// Times the pre-COW publication path (clone all cores + rescan the
/// histogram) on `cores` — the honest O(n) baseline each scale point's
/// `publish_p50_ns` is compared against.
fn time_full_rebuild(cores: &[u32]) -> u64 {
    const REPS: u32 = 64;
    let t0 = Instant::now();
    for _ in 0..REPS {
        let copy = cores.to_vec();
        let max = copy.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max + 1];
        for &c in &copy {
            hist[c as usize] += 1;
        }
        std::hint::black_box((copy, hist));
    }
    (t0.elapsed().as_nanos() / REPS as u128) as u64
}

/// Fixed change volume, growing |V|: publish cost must not scale with
/// the universe. Every point replays the *identical* churn stream over
/// an `active_n`-vertex region embedded in an `n`-vertex universe — the
/// changed vertices (and the chunks they dirty) are the same at every
/// scale, so any growth in publish time is pure universe overhead. The
/// old path rebuilt all `n` cores plus the histogram per epoch and grew
/// linearly here no matter how localised the churn was.
fn run_scale_point(
    n: usize,
    active_n: usize,
    attach: usize,
    max_batch: usize,
    seed: u64,
) -> ScalePoint {
    let active = barabasi_albert(active_n, attach, seed);
    let mut base = DynamicGraph::with_vertices(n);
    for v in 0..active.num_vertices() as u32 {
        for &u in active.neighbors(v) {
            if u > v {
                base.insert_edge_unchecked(v, u);
            }
        }
    }
    let events: Vec<GraphEvent> = churn_stream(&active, 40, 96, 64, seed ^ 0xABBA)
        .iter()
        .flat_map(churn_events)
        .collect();
    let cfg = IngestConfig::default()
        .max_batch(max_batch)
        .queue_capacity(max_batch * 2);
    let svc = IngestService::spawn_planned(base.clone(), seed, cfg).expect("spawn service");
    for &e in &events {
        svc.submit(e).expect("writer alive");
    }
    svc.flush().expect("final barrier");
    let (report, engine) = svc.shutdown();
    assert_eq!(
        engine.cores(),
        &oracle_cores(&base, &events)[..],
        "scale point n={n}: final state diverged from the recompute oracle"
    );
    ScalePoint {
        n,
        publish_p50_ns: report.publish.p50(),
        publish_p99_ns: report.publish.p99(),
        chunks_copied: report.chunks_copied,
        mirror_chunks: report.mirror_chunks,
        batches: report.batches,
        full_rebuild_ns: time_full_rebuild(engine.cores()),
    }
}

/// One timed `recover()` against a deliberately damaged copy of a
/// durable directory: which ladder rung fired and how long the rebuild
/// took.
struct RungTiming {
    scenario: &'static str,
    rung: String,
    secs: f64,
    replayed: usize,
    durable_ops: u64,
}

/// Copies every regular file of a durable directory (journal + snapshot
/// generations) into a fresh scenario directory.
fn copy_durable_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
}

/// Flips one byte near the end of a file — lands in a v2 snapshot's
/// payload (or a journal record body), past the headers, so the per-file
/// CRC is what must catch it.
fn flip_last_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let at = bytes.len() - 1;
    bytes[at] ^= 0xFF;
    std::fs::write(path, bytes).unwrap();
}

/// The plain v1 journal encoding (`seq u64 | kind u8 | u u32 | v u32`,
/// no checksums, no frame header) — the baseline the v2 checksummed
/// frame's append cost is measured against.
fn encode_plain_v1(entries: &[kcore_maint::journal::JournalEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 17);
    for e in entries {
        out.extend_from_slice(&e.seq.to_le_bytes());
        let (kind, u, v) = match e.event {
            GraphEvent::EdgeInserted(u, v) => (1u8, u, v),
            GraphEvent::EdgeRemoved(u, v) => (2u8, u, v),
        };
        out.push(kind);
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn main() {
    let args = Args::parse();
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let base = barabasi_albert(args.n, args.attach, args.seed);
    println!(
        "base graph: n = {}, m = {} (barabasi_albert attach {}), host_parallelism = {host}",
        base.num_vertices(),
        base.num_edges(),
        args.attach
    );

    let wall_cfg = || {
        IngestConfig::default()
            .max_batch(args.max_batch)
            .queue_capacity(args.queue)
    };

    // ---- churn: the gated headline workload ----
    let churn: Vec<GraphEvent> = churn_stream(
        &base,
        args.batches,
        args.inserts_per_batch,
        args.removes_per_batch,
        args.seed ^ 0xC0FFEE,
    )
    .iter()
    .flat_map(churn_events)
    .collect();
    // Untimed warm-up on a quarter of the stream (cold caches + thread
    // spawn would otherwise land in the first timed batch).
    {
        let quarter = &churn[..churn.len() / 4];
        let _ = run_section("warmup", &base, quarter, wall_cfg(), args.seed, usize::MAX);
    }
    let churn_report = run_section(
        "churn",
        &base,
        &churn,
        wall_cfg(),
        args.seed,
        args.inserts_per_batch + args.removes_per_batch,
    );
    churn_report.print();

    // ---- churn_lean: the staleness-budget workload ----
    // Under blocking submit the bounded queue saturates, so staleness ≈
    // queue capacity: the queue IS the staleness budget. The COW publish
    // path keeps per-flush snapshot maintenance at O(changed), so a 4×
    // smaller queue (and batch) holds throughput while cutting the
    // published-state lag proportionally — the before/after staleness
    // evidence for this layer.
    let lean_cfg = IngestConfig::default()
        .max_batch(args.max_batch / 4)
        .queue_capacity(args.queue / 4);
    let churn_lean_report = run_section(
        "churn_lean",
        &base,
        &churn,
        lean_cfg,
        args.seed,
        args.inserts_per_batch + args.removes_per_batch,
    );
    churn_lean_report.print();

    // ---- observability: metrics-on vs metrics-off churn ----
    // The identical stream with the registry, stage histograms, and span
    // ring disabled — the honest price of the per-flush instrumentation.
    // Per-flush recording is O(stages) atomics per batch, so the ratio
    // should be statistical noise (gated at ≤1.05 in CI).
    let churn_obs_off_report = run_section(
        "churn_nobs",
        &base,
        &churn,
        wall_cfg().observe(ObsConfig::disabled()),
        args.seed,
        args.inserts_per_batch + args.removes_per_batch,
    );
    churn_obs_off_report.print();
    let obs_overhead_ratio = if churn_report.events_per_sec > 0.0 {
        churn_obs_off_report.events_per_sec / churn_report.events_per_sec
    } else {
        1.0
    };
    assert!(
        churn_report.exposition_lines > 0,
        "metrics-on churn run must render a non-empty exposition"
    );
    assert_eq!(
        churn_obs_off_report.exposition_lines, 0,
        "metrics-off run must not carry a registry"
    );
    println!(
        "observability: metrics-on {:.0} events/sec, metrics-off {:.0} events/sec = {:.3}x \
         overhead ({} exposition lines validated)",
        churn_report.events_per_sec,
        churn_obs_off_report.events_per_sec,
        obs_overhead_ratio,
        churn_report.exposition_lines,
    );

    // ---- shards: the same churn stream through the ShardRouter ----
    // Identical events, identical wall-clock per-shard config; only the
    // shard count varies. Cross-shard edges are applied on BOTH owner
    // shards (the mirrored-endpoint layout), so at a cross fraction c
    // the ideal speedup at s shards is s / (1 + c), not s — the JSON
    // records cross_shard_events so the ratio can be judged honestly.
    let shard_cut_every = 8 * (args.inserts_per_batch + args.removes_per_batch);
    {
        // Untimed warm-up (fresh router threads per point).
        let quarter = &churn[..churn.len() / 4];
        let _ = run_shard_point(&base, quarter, 2, wall_cfg(), args.seed, shard_cut_every);
    }
    let mut shard_points: Vec<ShardPoint> = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let p = run_shard_point(
            &base,
            &churn,
            shards,
            wall_cfg(),
            args.seed,
            shard_cut_every,
        );
        println!(
            "shards {:>2}: {:>8} events in {:>7.3}s = {:>10.0} events/sec | {:>3} cuts, \
             cut p50 {:>8}ns p99 {:>9}ns | read p50 {:>6}ns | {:>6} cross-shard events, \
             {:>5} boundary exchanges over {:>4} repair rounds",
            p.shards,
            p.events,
            p.secs,
            p.events_per_sec,
            p.cuts,
            p.cut_p50_ns,
            p.cut_p99_ns,
            p.read_p50_ns,
            p.cross_shard_events,
            p.boundary_exchanges,
            p.repair_rounds,
        );
        shard_points.push(p);
    }
    let shard_scaling = |s: usize| -> f64 {
        let base_eps = shard_points[0].events_per_sec;
        shard_points
            .iter()
            .find(|p| p.shards == s)
            .map(|p| p.events_per_sec / base_eps)
            .unwrap_or(1.0)
    };
    let scaling_2x = shard_scaling(2);
    let scaling_4x = shard_scaling(4);
    println!(
        "shard scaling over 1-shard router: 2 shards {scaling_2x:.2}x, 4 shards {scaling_4x:.2}x"
    );

    // ---- window: admit/expire over a timestamped stream ----
    let ts = timestamp_edges(&base, 3, args.seed ^ 0xD00D);
    let window_events: Vec<GraphEvent> = SlidingWindow::new(ts, args.n as u64)
        .map(window_event)
        .collect();
    let empty = DynamicGraph::with_vertices(args.n);
    let window_report = run_section(
        "window",
        &empty,
        &window_events,
        wall_cfg(),
        args.seed,
        1024,
    );
    window_report.print();

    // ---- durable: churn again with journal + checkpoints ----
    let dir = std::env::temp_dir().join("kcore_bench_ingest");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let d = DurabilityConfig::in_dir(&dir).snapshot_every(64);
    let durable_report = run_section(
        "durable",
        &base,
        &churn,
        wall_cfg().durable(d.clone()),
        args.seed,
        args.inserts_per_batch + args.removes_per_batch,
    );
    durable_report.print();
    let journal_bytes = std::fs::metadata(&d.journal_path)
        .map(|m| m.len())
        .unwrap_or(0);

    let t0 = Instant::now();
    let rec = recover(&d, args.seed, PlannerConfig::default(), args.max_batch)
        .expect("recover from bench journal");
    let recover_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        rec.engine.cores(),
        &oracle_cores(&base, &churn)[..],
        "recovered state diverged from the oracle"
    );
    println!(
        "recover: {} events ({} replayed past checkpoint) in {recover_secs:.3}s from {} journal bytes",
        rec.next_seq, rec.replayed, journal_bytes
    );
    std::fs::remove_dir_all(&dir).ok();

    // ---- recovery ladder: timed recover() per escalation rung ----
    // A dedicated durable run over the EMPTY universe: every rung —
    // including genesis replay, which rebuilds from the journal alone —
    // must land bit-identical to the oracle, and that is only true when
    // no pre-stream state lives exclusively in the checkpoints.
    let ladder_src = std::env::temp_dir().join("kcore_bench_ingest_ladder");
    std::fs::remove_dir_all(&ladder_src).ok();
    std::fs::create_dir_all(&ladder_src).unwrap();
    // No periodic snapshots: the rotation then deterministically holds
    // gen0 = the final shutdown checkpoint (all ops) and gen1 = the
    // spawn-time checkpoint (0 ops), independent of flush timing.
    let ld = DurabilityConfig::in_dir(&ladder_src);
    let _ = run_section(
        "ladder",
        &empty,
        &churn,
        wall_cfg().durable(ld.clone()),
        args.seed,
        usize::MAX,
    );
    let gen1 = snapshot_generation_path(&ld.snapshot_path, 1);
    assert!(
        gen1.exists(),
        "ladder run must leave a rotated older snapshot generation"
    );
    // Each scenario damages a fresh copy so the rungs are independent.
    // `scenario → (damage, expected rung, expected durable prefix)`; the
    // oracle check below holds recovery to exactly the prefix its report
    // claims. `None` = some proper prefix (frames are atomic, so a torn
    // tail drops the whole final frame and the exact count depends on
    // how the run batched).
    let total = churn.len() as u64;
    type Damage = Box<dyn Fn(&std::path::Path)>;
    let scenarios: Vec<(&'static str, Damage, &'static str, Option<u64>)> = vec![
        (
            "primary",
            Box::new(|_d: &std::path::Path| {}),
            "primary",
            Some(total),
        ),
        (
            // Demote gen0 to the 0-ops spawn checkpoint (else the final
            // shutdown snapshot is *ahead* of the chopped journal and
            // the snapshot-only rung fires instead), then tear the
            // journal mid-record: recovery keeps the checksummed frame
            // prefix and replays it.
            "truncated_tail",
            Box::new(|d: &std::path::Path| {
                std::fs::copy(d.join("ingest.ksnp.1"), d.join("ingest.ksnp")).unwrap();
                let j = d.join("ingest.kjrn");
                let len = std::fs::metadata(&j).unwrap().len();
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&j)
                    .unwrap()
                    .set_len(len - 7)
                    .unwrap();
            }),
            "truncated-tail",
            None,
        ),
        (
            // Corrupt the newest snapshot's payload: its CRC rejects it
            // and the retained older generation recovers, replaying the
            // journal difference.
            "older_generation",
            Box::new(|d: &std::path::Path| flip_last_byte(&d.join("ingest.ksnp"))),
            "older-generation(1)",
            Some(total),
        ),
        (
            // Corrupt the journal magic: the journal is unparseable, so
            // state comes from the newest snapshot alone and the journal
            // is reset at its coverage.
            "snapshot_only",
            Box::new(|d: &std::path::Path| {
                let j = d.join("ingest.kjrn");
                let mut bytes = std::fs::read(&j).unwrap();
                bytes[0] ^= 0xFF;
                std::fs::write(&j, bytes).unwrap();
            }),
            "snapshot-only",
            Some(total),
        ),
        (
            // Delete every checkpoint: the full journal replays from the
            // empty universe.
            "genesis",
            Box::new(|d: &std::path::Path| {
                std::fs::remove_file(d.join("ingest.ksnp")).unwrap();
                std::fs::remove_file(d.join("ingest.ksnp.1")).unwrap();
            }),
            "genesis-replay",
            Some(total),
        ),
    ];
    let mut rungs: Vec<RungTiming> = Vec::new();
    for (scenario, damage, expect_rung, expect_durable) in &scenarios {
        let sdir = std::env::temp_dir().join(format!("kcore_bench_ingest_rung_{scenario}"));
        copy_durable_dir(&ladder_src, &sdir);
        damage(&sdir);
        let rd = DurabilityConfig::in_dir(&sdir);
        let t0 = Instant::now();
        let rec = recover(&rd, args.seed, PlannerConfig::default(), args.max_batch)
            .unwrap_or_else(|e| panic!("rung {scenario}: recover failed: {e:?}"));
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "recovery rung {scenario:<16} -> {:<20} {secs:>8.4}s | {}",
            rec.report.rung.to_string(),
            rec.report
        );
        assert_eq!(
            rec.report.rung.to_string(),
            *expect_rung,
            "rung {scenario}: wrong ladder rung fired"
        );
        match expect_durable {
            Some(want) => assert_eq!(
                rec.report.durable_ops, *want,
                "rung {scenario}: unexpected durable prefix"
            ),
            None => assert!(
                rec.report.durable_ops < total,
                "rung {scenario}: a torn tail must lose its final frame"
            ),
        }
        assert_eq!(
            rec.engine.cores(),
            &oracle_cores(&empty, &churn[..rec.report.durable_ops as usize])[..],
            "rung {scenario}: recovered state diverged from the oracle on its reported prefix"
        );
        rungs.push(RungTiming {
            scenario,
            rung: rec.report.rung.to_string(),
            secs,
            replayed: rec.report.replayed,
            durable_ops: rec.report.durable_ops,
        });
        std::fs::remove_dir_all(&sdir).ok();
    }
    std::fs::remove_dir_all(&ladder_src).ok();

    // ---- CRC append overhead: v3 delta frames vs plain v1 ----
    // The per-event CPU price of the frame CRC32 + zigzag-LEB128 delta
    // encode on the journal's hot append path, measured alone (no
    // I/O, no fsync — those dominate real appends and would bury the
    // signal being gated).
    let crc_entries: Vec<kcore_maint::journal::JournalEntry> = (0..512u64)
        .map(|i| kcore_maint::journal::JournalEntry {
            seq: i,
            event: if i % 3 == 0 {
                GraphEvent::EdgeRemoved((i % 97) as u32, ((i + 1) % 97) as u32)
            } else {
                GraphEvent::EdgeInserted((i % 89) as u32, ((i * 7 + 3) % 89) as u32)
            },
            transitions: Vec::new(),
        })
        .collect();
    const CRC_REPS: u32 = 2000;
    let t0 = Instant::now();
    for _ in 0..CRC_REPS {
        std::hint::black_box(encode_plain_v1(std::hint::black_box(&crc_entries)));
    }
    let v1_ns_per_event =
        t0.elapsed().as_nanos() as f64 / (CRC_REPS as f64 * crc_entries.len() as f64);
    let t0 = Instant::now();
    for _ in 0..CRC_REPS {
        std::hint::black_box(encode_frame(std::hint::black_box(&crc_entries)));
    }
    let v3_ns_per_event =
        t0.elapsed().as_nanos() as f64 / (CRC_REPS as f64 * crc_entries.len() as f64);
    let append_overhead_ratio = if v1_ns_per_event > 0.0 {
        v3_ns_per_event / v1_ns_per_event
    } else {
        1.0
    };
    // Byte size of the v3 delta frames against the plain absolute v1
    // layout, on the same entry mix — the compression the LEB128 vertex
    // deltas buy on the wire.
    let v1_bytes_per_event = encode_plain_v1(&crc_entries).len() as f64 / crc_entries.len() as f64;
    let v3_bytes_per_event = encode_frame(&crc_entries).len() as f64 / crc_entries.len() as f64;
    let bytes_ratio = v3_bytes_per_event / v1_bytes_per_event;
    println!(
        "journal encode: v1 {v1_ns_per_event:.1}ns/event, v3 {v3_ns_per_event:.1}ns/event \
         = {append_overhead_ratio:.2}x; bytes/event v1 {v1_bytes_per_event:.1} \
         v3 {v3_bytes_per_event:.1} = {bytes_ratio:.2}x"
    );

    // ---- publish-cost scaling: fixed change volume, growing |V| ----
    let scale_ns: Vec<usize> = [args.n / 4, args.n, args.n * 4]
        .into_iter()
        .filter(|&n| n >= 64)
        .collect();
    let active_n = *scale_ns.first().unwrap_or(&64);
    let mut scaling: Vec<ScalePoint> = Vec::new();
    for &n in &scale_ns {
        let p = run_scale_point(n, active_n, args.attach, args.max_batch, args.seed);
        println!(
            "publish scaling: n = {:>7} | publish p50 {:>7}ns p99 {:>8}ns | \
             {:>4}/{} chunks copied over {} batches | full rebuild (old path) {:>8}ns",
            p.n,
            p.publish_p50_ns,
            p.publish_p99_ns,
            p.chunks_copied,
            p.mirror_chunks,
            p.batches,
            p.full_rebuild_ns,
        );
        scaling.push(p);
    }
    let publish_ratio = match (scaling.first(), scaling.last()) {
        (Some(a), Some(b)) if a.publish_p50_ns > 0 => {
            b.publish_p50_ns as f64 / a.publish_p50_ns as f64
        }
        _ => 1.0,
    };
    println!(
        "publish p50 growth over {}x |V|: {publish_ratio:.2}x (old full-rebuild path grows ~linearly)",
        scale_ns.last().unwrap_or(&1) / scale_ns.first().unwrap_or(&1).max(&1)
    );

    // ---- gate bookkeeping (BENCH_par.json convention) ----
    const GATE_CORES: usize = 2;
    let gate_status = if args.min_ingest_throughput <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_CORES {
        format!(
            "waived (host_parallelism {host} < {GATE_CORES} required: producer + writer threads)"
        )
    } else {
        "enforced".to_string()
    };
    let publish_gate_status = if args.max_publish_cost_ratio <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_CORES {
        format!(
            "waived (host_parallelism {host} < {GATE_CORES}: single shared core makes \
             nanosecond-scale publish timings scheduling noise)"
        )
    } else {
        "enforced".to_string()
    };
    let append_gate_status = if args.max_append_overhead_ratio <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_CORES {
        format!(
            "waived (host_parallelism {host} < {GATE_CORES}: single shared core makes \
             nanosecond-scale encode timings scheduling noise)"
        )
    } else {
        "enforced".to_string()
    };
    let shard_gate_status = if args.min_shard_scaling <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_CORES {
        format!(
            "waived (host_parallelism {host} < {GATE_CORES} required: per-shard writers are \
             independent threads, a 1-core host time-slices them and cannot scale)"
        )
    } else {
        "enforced".to_string()
    };
    let obs_gate_status = if args.max_obs_overhead_ratio <= 0.0 {
        "disabled".to_string()
    } else if host < GATE_CORES {
        format!(
            "waived (host_parallelism {host} < {GATE_CORES} required: producer + writer threads \
             time-slice on one core and the throughput delta is scheduling noise)"
        )
    } else {
        "enforced".to_string()
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!(
        "  \"config\": {{ \"n\": {}, \"attach\": {}, \"batches\": {}, \"inserts_per_batch\": {}, \
         \"removes_per_batch\": {}, \"max_batch\": {}, \"queue\": {} }},\n",
        args.n,
        args.attach,
        args.batches,
        args.inserts_per_batch,
        args.removes_per_batch,
        args.max_batch,
        args.queue
    ));
    for r in [
        &churn_report,
        &churn_lean_report,
        &churn_obs_off_report,
        &window_report,
        &durable_report,
    ] {
        json.push_str(&r.json("  "));
        json.push_str(",\n");
    }
    json.push_str(&format!(
        "  \"observability\": {{\n    \"on_events_per_sec\": {:.0},\n    \
         \"off_events_per_sec\": {:.0},\n    \"overhead_ratio\": {obs_overhead_ratio:.4},\n    \
         \"exposition_lines\": {},\n    \"max_obs_overhead_ratio\": {:.2},\n    \
         \"obs_gate\": \"{obs_gate_status}\",\n    \"metrics\": {}\n  }},\n",
        churn_report.events_per_sec,
        churn_obs_off_report.events_per_sec,
        churn_report.exposition_lines,
        args.max_obs_overhead_ratio,
        churn_report.metrics_json.as_deref().unwrap_or("null"),
    ));
    json.push_str(&format!(
        "  \"recover\": {{ \"events\": {}, \"replayed\": {}, \"secs\": {recover_secs:.4}, \
         \"journal_bytes\": {journal_bytes} }},\n",
        rec.next_seq, rec.replayed
    ));
    json.push_str("  \"recovery\": {\n    \"rungs\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"scenario\": \"{}\", \"rung\": \"{}\", \"secs\": {:.4}, \
             \"replayed\": {}, \"durable_ops\": {} }}{}\n",
            r.scenario,
            r.rung,
            r.secs,
            r.replayed,
            r.durable_ops,
            if i + 1 < rungs.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"crc_append\": {{ \"v1_ns_per_event\": {v1_ns_per_event:.2}, \
         \"v3_ns_per_event\": {v3_ns_per_event:.2}, \
         \"overhead_ratio\": {append_overhead_ratio:.3}, \
         \"v1_bytes_per_event\": {v1_bytes_per_event:.2}, \
         \"v3_bytes_per_event\": {v3_bytes_per_event:.2}, \
         \"bytes_ratio\": {bytes_ratio:.3} }},\n    \
         \"max_append_overhead_ratio\": {:.2},\n    \
         \"append_gate\": \"{append_gate_status}\"\n  }},\n",
        args.max_append_overhead_ratio
    ));
    json.push_str("  \"shards\": {\n");
    json.push_str(&format!(
        "    \"cut_every_events\": {shard_cut_every},\n    \"points\": [\n"
    ));
    for (i, p) in shard_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"shards\": {}, \"events\": {}, \"secs\": {:.4}, \
             \"events_per_sec\": {:.0}, \"cuts\": {}, \
             \"merged_cut_ns\": {{ \"p50\": {}, \"p99\": {} }}, \
             \"merged_read_ns\": {{ \"p50\": {} }}, \
             \"cross_shard_events\": {}, \"boundary_exchanges\": {}, \
             \"repair_rounds\": {} }}{}\n",
            p.shards,
            p.events,
            p.secs,
            p.events_per_sec,
            p.cuts,
            p.cut_p50_ns,
            p.cut_p99_ns,
            p.read_p50_ns,
            p.cross_shard_events,
            p.boundary_exchanges,
            p.repair_rounds,
            if i + 1 < shard_points.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"scaling_2x\": {scaling_2x:.3},\n    \"scaling_4x\": {scaling_4x:.3},\n    \
         \"min_shard_scaling\": {:.2},\n    \"shard_gate\": \"{shard_gate_status}\"\n  }},\n",
        args.min_shard_scaling
    ));
    json.push_str("  \"publish_scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"publish_ns\": {{ \"p50\": {}, \"p99\": {} }}, \
             \"chunks_copied\": {}, \"mirror_chunks\": {}, \"batches\": {}, \
             \"full_rebuild_ns\": {} }}{}\n",
            p.n,
            p.publish_p50_ns,
            p.publish_p99_ns,
            p.chunks_copied,
            p.mirror_chunks,
            p.batches,
            p.full_rebuild_ns,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"publish_p50_growth_ratio\": {publish_ratio:.3},\n"
    ));
    // The pre-COW reference this PR is measured against (committed
    // BENCH_ingest.json before the chunked snapshot layer landed):
    // publication rebuilt all n cores + the histogram every epoch, and
    // the staleness budget had to absorb a 4096-deep queue.
    json.push_str(
        "  \"reference_before\": { \"publication\": \"full O(n) rebuild per epoch\", \
         \"staleness_events_p50\": { \"churn\": 4262, \"window\": 4608, \"durable\": 4256 } },\n",
    );
    json.push_str(&format!(
        "  \"target_events_per_sec\": {:.0},\n  \"gate\": \"{gate_status}\",\n",
        args.min_ingest_throughput
    ));
    json.push_str(&format!(
        "  \"max_publish_cost_ratio\": {:.2},\n  \"publish_gate\": \"{publish_gate_status}\"\n}}\n",
        args.max_publish_cost_ratio
    ));
    let mut f = std::fs::File::create(&args.out).expect("create BENCH_ingest.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_ingest.json");
    println!(
        "wrote {} (gate: {gate_status}, publish_gate: {publish_gate_status}, \
         append_gate: {append_gate_status}, shard_gate: {shard_gate_status}, \
         obs_gate: {obs_gate_status})",
        args.out
    );

    let mut failed = false;
    if gate_status == "enforced" && churn_report.events_per_sec < args.min_ingest_throughput {
        eprintln!(
            "GATE FAILED: churn ingest {:.0} events/sec < required {:.0}",
            churn_report.events_per_sec, args.min_ingest_throughput
        );
        failed = true;
    }
    if publish_gate_status == "enforced" && publish_ratio > args.max_publish_cost_ratio {
        eprintln!(
            "GATE FAILED: publish p50 grew {publish_ratio:.2}x over a {}x |V| range \
             (allowed {:.2}x): publication is not O(changed)",
            scale_ns.last().unwrap_or(&1) / scale_ns.first().unwrap_or(&1).max(&1),
            args.max_publish_cost_ratio
        );
        failed = true;
    }
    if append_gate_status == "enforced" && append_overhead_ratio > args.max_append_overhead_ratio {
        eprintln!(
            "GATE FAILED: v3 checksummed append costs {append_overhead_ratio:.2}x the plain v1 \
             encode (allowed {:.2}x)",
            args.max_append_overhead_ratio
        );
        failed = true;
    }
    // Best observed multi-shard ratio: on a 2-core host the 4-shard
    // point over-subscribes, so either ratio clearing the bar proves the
    // sharded pipeline scales.
    let best_scaling = scaling_2x.max(scaling_4x);
    if shard_gate_status == "enforced" && best_scaling < args.min_shard_scaling {
        eprintln!(
            "GATE FAILED: best shard scaling {best_scaling:.2}x (2 shards {scaling_2x:.2}x, \
             4 shards {scaling_4x:.2}x) < required {:.2}x over the 1-shard router",
            args.min_shard_scaling
        );
        failed = true;
    }
    if obs_gate_status == "enforced" && obs_overhead_ratio > args.max_obs_overhead_ratio {
        eprintln!(
            "GATE FAILED: metrics-off churn runs {obs_overhead_ratio:.3}x the metrics-on \
             throughput (allowed {:.2}x): observability is not cheap enough to leave on",
            args.max_obs_overhead_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
