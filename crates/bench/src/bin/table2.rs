//! Table II: accumulated time (seconds) to insert, then remove, the
//! update stream — `OrderInsert`/`OrderRemoval` vs `Trav-2 … Trav-6`.
//!
//! `cargo run --release -p kcore-bench --bin table2`
//! (add `--datasets gowalla,ca --updates 2000` for a quick pass)

use kcore_bench::{fmt_secs, order_engine, row, time_insertions, time_removals, trav_engine, Cli};
use kcore_maint::CoreMaintainer;

const HOPS: [usize; 5] = [2, 3, 4, 5, 6];

fn main() {
    let cli = Cli::parse();
    println!(
        "== Table II: accumulated update time in seconds ({} updates, scale {:?}) ==",
        cli.updates, cli.scale
    );
    let mut header = vec![
        "dataset".to_string(),
        "phase".to_string(),
        "Order".to_string(),
    ];
    header.extend(HOPS.iter().map(|h| format!("Trav-{h}")));
    row(&header, 12, 10);

    for name in cli.dataset_names() {
        let ds = cli.load(name);

        // Order-based engine: insert then remove.
        let mut order = order_engine(&ds, cli.seed);
        let o_ins = time_insertions(&mut order, &ds.stream);
        let o_rem = time_removals(&mut order, &ds.stream);
        let reference = order.core_slice().to_vec();

        let mut ins_cells = vec![
            name.to_string(),
            "insert".to_string(),
            fmt_secs(o_ins.elapsed),
        ];
        let mut rem_cells = vec![String::new(), "remove".to_string(), fmt_secs(o_rem.elapsed)];
        for &h in &HOPS {
            let mut trav = trav_engine(&ds, h);
            let t_ins = time_insertions(&mut trav, &ds.stream);
            let t_rem = time_removals(&mut trav, &ds.stream);
            assert_eq!(
                trav.core_slice(),
                &reference[..],
                "Trav-{h} diverged on {name}"
            );
            ins_cells.push(fmt_secs(t_ins.elapsed));
            rem_cells.push(fmt_secs(t_rem.elapsed));
        }
        row(&ins_cells, 12, 10);
        row(&rem_cells, 12, 10);
    }
    println!();
    println!("expected shape (paper Table II): Order wins insertion everywhere,");
    println!("by orders of magnitude on the heavy-tailed graphs; Order wins");
    println!("removal everywhere except the road network, where Trav-2 is");
    println!("competitive; higher h helps Trav insertion on some graphs but");
    println!("always hurts removal.");
}
