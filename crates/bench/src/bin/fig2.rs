//! Fig 2: ratio of vertices visited to vertices actually updated,
//! `Σ|V'| / Σ|V*|` for the traversal insertion algorithm vs
//! `Σ|V+| / Σ|V*|` for the order-based insertion algorithm.
//!
//! `cargo run --release -p kcore-bench --bin fig2`

use kcore_bench::{fmt_ratio, order_engine, row, time_insertions, trav_engine, Cli};

fn main() {
    let cli = Cli::parse();
    println!(
        "== Fig 2: visited/updated ratio over {} insertions (scale {:?}) ==",
        cli.updates, cli.scale
    );
    row(
        &[
            "dataset".into(),
            "trav |V'|".into(),
            "order |V+|".into(),
            "|V*|".into(),
            "trav ratio".into(),
            "order ratio".into(),
        ],
        12,
        12,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let mut trav = trav_engine(&ds, 2);
        let t = time_insertions(&mut trav, &ds.stream);
        let mut order = order_engine(&ds, cli.seed);
        let o = time_insertions(&mut order, &ds.stream);
        assert_eq!(
            t.stats.changed, o.stats.changed,
            "engines disagree on |V*| for {name}"
        );
        row(
            &[
                name.into(),
                t.stats.visited.to_string(),
                o.stats.visited.to_string(),
                o.stats.changed.to_string(),
                fmt_ratio(t.stats.visited as f64, t.stats.changed as f64),
                fmt_ratio(o.stats.visited as f64, o.stats.changed as f64),
            ],
            12,
            12,
        );
    }
    println!();
    println!("expected shape: traversal ratios >= 7 (thousands on the");
    println!("citation/social graphs); order ratios < 4 everywhere (paper Fig 2).");
}
