//! Performance-variation study (companion to Fig 1, in time rather than
//! visit counts): per-update latency percentiles of the order-based
//! engine vs Trav-2. Criterion reports means; tail latency is what the
//! paper's "small performance variation among edge updates" claim is
//! about.
//!
//! `cargo run --release -p kcore-bench --bin variation`

use kcore_bench::{order_engine, row, trav_engine, Cli};
use kcore_maint::CoreMaintainer;
use std::time::Instant;

/// Collects per-op latencies and reports percentiles.
struct LatencyRecorder {
    nanos: Vec<u64>,
}

impl LatencyRecorder {
    fn new(capacity: usize) -> Self {
        LatencyRecorder {
            nanos: Vec::with_capacity(capacity),
        }
    }

    fn record<M: CoreMaintainer>(engine: &mut M, stream: &[(u32, u32)]) -> Self {
        let mut rec = LatencyRecorder::new(stream.len());
        for &(u, v) in stream {
            let t = Instant::now();
            engine.insert(u, v).expect("insert");
            rec.nanos.push(t.elapsed().as_nanos() as u64);
        }
        rec
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.nanos.is_empty() {
            return 0;
        }
        let mut sorted = self.nanos.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    fn cells(&self) -> Vec<String> {
        [0.50, 0.90, 0.99, 1.0]
            .iter()
            .map(|&p| format!("{:.1}", self.percentile(p) as f64 / 1000.0))
            .collect()
    }
}

fn main() {
    let cli = Cli::parse();
    println!(
        "== Per-insertion latency percentiles in µs ({} updates, scale {:?}) ==",
        cli.updates, cli.scale
    );
    row(
        &[
            "dataset".into(),
            "algo".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "max".into(),
        ],
        12,
        10,
    );
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let mut order = order_engine(&ds, cli.seed);
        let o = LatencyRecorder::record(&mut order, &ds.stream);
        let mut trav = trav_engine(&ds, 2);
        let t = LatencyRecorder::record(&mut trav, &ds.stream);
        assert_eq!(order.core_slice(), trav.core_slice());

        let mut cells = vec![name.to_string(), "order".to_string()];
        cells.extend(o.cells());
        row(&cells, 12, 10);
        let mut cells = vec![String::new(), "trav-2".to_string()];
        cells.extend(t.cells());
        row(&cells, 12, 10);
    }
    println!();
    println!("expected shape: the order engine's p99/max stay within ~2 orders");
    println!("of its p50; Trav-2's max blows up by 3-5 orders on heavy-tailed");
    println!("graphs (the Fig 1 tail, measured in time).");
}
