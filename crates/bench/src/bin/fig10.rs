//! Fig 10: (a) cumulative distribution of core numbers per dataset;
//! (b) cumulative distribution of `K = min(core(u), core(v))` over the
//! sampled update edges.
//!
//! `cargo run --release -p kcore-bench --bin fig10`

use kcore_bench::Cli;
use kcore_decomp::core_decomposition;
use kcore_graph::stats::cumulative_distribution;

fn main() {
    let cli = Cli::parse();
    println!("== Fig 10a: cumulative distribution of core numbers ==");
    println!("{:>12} {:>24}", "dataset", "(core<=k, proportion)…");
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let g = ds.full_graph();
        let core = core_decomposition(&g);
        let values: Vec<usize> = core.iter().map(|&c| c as usize + 1).collect();
        let cd = cumulative_distribution(&values);
        let cells: Vec<String> = cd
            .iter()
            .map(|&(t, f)| format!("({},{:.3})", t - 1, f))
            .collect();
        println!("{:>12} {}", name, cells.join(" "));
    }

    println!();
    println!("== Fig 10b: cumulative distribution of K over the sampled edges ==");
    for name in cli.dataset_names() {
        let ds = cli.load(name);
        let g = ds.full_graph();
        let core = core_decomposition(&g);
        let ks: Vec<usize> = ds
            .stream
            .iter()
            .map(|&(u, v)| core[u as usize].min(core[v as usize]) as usize + 1)
            .collect();
        let cd = cumulative_distribution(&ks);
        let cells: Vec<String> = cd
            .iter()
            .map(|&(t, f)| format!("({},{:.3})", t - 1, f))
            .collect();
        println!("{:>12} {}", name, cells.join(" "));
    }
    println!();
    println!("expected shape: K spans the full core range on every dataset,");
    println!("so the update streams exercise all core levels (paper Fig 10b).");
}
