//! Fig 11: scalability of `OrderInsert` on the three largest datasets —
//! total time to insert the sampled stream while the graph is vertex-
//! sampled (a, b) or edge-sampled (c, d) at 20%…100%.
//!
//! `cargo run --release -p kcore-bench --bin fig11`

use kcore_bench::{time_insertions, Cli};
use kcore_gen::sample::{induced_vertex_sample, sample_edge_subgraph, sample_edges};
use kcore_graph::DynamicGraph;
use kcore_maint::TreapOrderCore;

const RATIOS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let mut cli = Cli::parse();
    if cli.datasets.len() == 11 {
        cli.datasets = vec!["patents".into(), "orkut".into(), "livejournal".into()];
    }
    println!(
        "== Fig 11: OrderInsert scalability ({} insertions per point, scale {:?}) ==",
        cli.updates, cli.scale
    );
    for name in cli.dataset_names() {
        let full = cli.load(name).full_graph();
        println!(
            "\n-- {name} (n = {}, m = {}) --",
            full.num_vertices(),
            full.num_edges()
        );
        println!(
            "{:>8} {:>14} {:>12} {:>14} {:>12}",
            "sample", "V-time(ms)", "edge-ratio", "E-time(ms)", "vert-ratio"
        );
        let full_m = full.num_edges() as f64;
        let full_nz = non_isolated(&full) as f64;
        for ratio in RATIOS {
            // Fig 11a/11b: vertex sampling — induced subgraph, report the
            // surviving edge fraction.
            let vs = induced_vertex_sample(&full, ratio, cli.seed);
            let v_ms = run_point(&vs, cli.updates, cli.seed);
            let edge_ratio = vs.num_edges() as f64 / full_m;
            // Fig 11c/11d: edge sampling — incident vertices kept, report
            // the surviving (non-isolated) vertex fraction.
            let es = sample_edge_subgraph(&full, ratio, cli.seed);
            let e_ms = run_point(&es, cli.updates, cli.seed);
            let vert_ratio = non_isolated(&es) as f64 / full_nz;
            println!(
                "{:>7.0}% {:>14.1} {:>12.3} {:>14.1} {:>12.3}",
                ratio * 100.0,
                v_ms,
                edge_ratio,
                e_ms,
                vert_ratio
            );
        }
    }
    println!();
    println!("expected shape: time grows smoothly while edges/vertices grow");
    println!("rapidly (paper Fig 11).");
}

/// Times the insertion stream on a sampled graph; returns milliseconds.
fn run_point(g: &DynamicGraph, updates: usize, seed: u64) -> f64 {
    let stream = sample_edges(g, updates.min(g.num_edges() / 5), seed ^ 0xF19);
    let mut base = g.clone();
    for &(u, v) in &stream {
        base.remove_edge(u, v).unwrap();
    }
    let mut engine = TreapOrderCore::new(base, seed);
    let r = time_insertions(&mut engine, &stream);
    r.secs() * 1000.0
}

fn non_isolated(g: &DynamicGraph) -> usize {
    g.vertices().filter(|&v| g.degree(v) > 0).count()
}
