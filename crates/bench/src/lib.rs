//! # kcore-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §5 for the index), plus Criterion micro-benchmarks.
//!
//! Shared here: a tiny CLI-flag parser (no external dependency), engine
//! construction, the insert/remove timing protocol of Section VII, and
//! fixed-width table printing.

use kcore_gen::{load_dataset, Dataset, Scale, DATASETS};
use kcore_graph::{edge_key, DynamicGraph, FxHashSet, VertexId};
use kcore_maint::{CoreMaintainer, TreapOrderCore};
use kcore_traversal::{TraversalCore, UpdateStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Dataset scale (default `small`; `medium` reproduces DESIGN.md
    /// sizes, `tiny` smoke-tests).
    pub scale: Scale,
    /// Number of stream edges per dataset (the paper's 100,000; default
    /// here 5,000 at `small`).
    pub updates: usize,
    /// Restrict to these dataset names (default: all eleven).
    pub datasets: Vec<String>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Small,
            updates: 5000,
            datasets: DATASETS.iter().map(|d| d.name.to_string()).collect(),
            seed: 42,
        }
    }
}

impl Cli {
    /// Parses `--scale tiny|small|medium`, `--updates N`,
    /// `--datasets a,b,c`, `--seed N`. Unknown flags abort with usage.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--scale" => {
                    cli.scale = Scale::parse(need_value(i))
                        .unwrap_or_else(|| panic!("bad --scale {:?}", args[i + 1]));
                    i += 2;
                }
                "--updates" => {
                    cli.updates = need_value(i).parse().expect("bad --updates");
                    i += 2;
                }
                "--datasets" => {
                    cli.datasets = need_value(i).split(',').map(|s| s.to_string()).collect();
                    i += 2;
                }
                "--seed" => {
                    cli.seed = need_value(i).parse().expect("bad --seed");
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale tiny|small|medium  --updates N  --datasets a,b,c  --seed N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        cli
    }

    /// Loads one dataset under these options.
    pub fn load(&self, name: &str) -> Dataset {
        load_dataset(name, self.scale, self.updates)
    }

    /// Iterates the selected dataset names.
    pub fn dataset_names(&self) -> impl Iterator<Item = &str> {
        self.datasets.iter().map(|s| s.as_str())
    }
}

/// Accumulated timing + instrumentation over a stream of updates.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunResult {
    /// Total wall time.
    pub elapsed: Duration,
    /// Summed per-update statistics.
    pub stats: UpdateStats,
    /// Number of updates applied.
    pub ops: usize,
}

impl RunResult {
    /// Seconds as f64.
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Inserts every stream edge one by one, accumulating time and stats.
pub fn time_insertions<M: CoreMaintainer>(
    engine: &mut M,
    stream: &[(VertexId, VertexId)],
) -> RunResult {
    let mut result = RunResult::default();
    let start = Instant::now();
    for &(u, v) in stream {
        let s = engine.insert(u, v).expect("stream insert failed");
        result.stats.absorb(s);
        result.ops += 1;
    }
    result.elapsed = start.elapsed();
    result
}

/// Removes every stream edge one by one (reverse order, matching the
/// paper's "then remove these edges"), accumulating time and stats.
pub fn time_removals<M: CoreMaintainer>(
    engine: &mut M,
    stream: &[(VertexId, VertexId)],
) -> RunResult {
    let mut result = RunResult::default();
    let start = Instant::now();
    for &(u, v) in stream.iter().rev() {
        let s = engine.remove(u, v).expect("stream remove failed");
        result.stats.absorb(s);
        result.ops += 1;
    }
    result.elapsed = start.elapsed();
    result
}

/// Collects the per-update visited counts (for the Fig 1 histogram).
pub fn per_update_visited<M: CoreMaintainer>(
    engine: &mut M,
    stream: &[(VertexId, VertexId)],
) -> Vec<usize> {
    stream
        .iter()
        .map(|&(u, v)| engine.insert(u, v).expect("insert failed").visited)
        .collect()
}

/// Builds the order-based engine over a dataset's base graph.
pub fn order_engine(ds: &Dataset, seed: u64) -> TreapOrderCore {
    TreapOrderCore::new(ds.base.clone(), seed)
}

/// Builds a `Trav-h` engine over a dataset's base graph.
pub fn trav_engine(ds: &Dataset, h: usize) -> TraversalCore {
    TraversalCore::new(ds.base.clone(), h)
}

/// `count` fresh edges absent from `g` (and distinct from each other),
/// with **degree-weighted** endpoints: each endpoint is drawn as a random
/// half-edge target, i.e. with probability proportional to its degree —
/// the preferential-attachment arrival model real power-law streams
/// follow (new links overwhelmingly touch hubs). Shared by the batch
/// experiment binary and the batching micro-bench.
pub fn degree_weighted_fresh_edges(
    g: &DynamicGraph,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let edges = g.edge_vec();
    assert!(!edges.is_empty(), "base graph has no edges to weight by");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut out = Vec::with_capacity(count);
    let pick = |rng: &mut SmallRng| {
        let (a, b) = edges[rng.gen_range(0..edges.len())];
        if rng.gen_bool(0.5) {
            a
        } else {
            b
        }
    };
    while out.len() < count {
        let u = pick(&mut rng);
        let v = pick(&mut rng);
        if u == v || g.has_edge(u, v) || !seen.insert(edge_key(u, v)) {
            continue;
        }
        out.push((u, v));
    }
    out
}

/// Prints a fixed-width row: first cell `w0` wide, rest `w` wide.
pub fn row(cells: &[String], w0: usize, w: usize) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let width = if i == 0 { w0 } else { w };
        line.push_str(&format!("{c:>width$}"));
        line.push(' ');
    }
    println!("{}", line.trim_end());
}

/// Formats a duration in seconds with 3 decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio with 2 decimals, guarding division by zero.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_protocol_roundtrips() {
        let ds = load_dataset("gowalla", Scale::Tiny, 200);
        let mut engine = order_engine(&ds, 1);
        let baseline_cores = engine.core_slice().to_vec();
        let ins = time_insertions(&mut engine, &ds.stream);
        assert_eq!(ins.ops, ds.stream.len());
        let rem = time_removals(&mut engine, &ds.stream);
        assert_eq!(rem.ops, ds.stream.len());
        // After insert-then-remove, the cores are back to the base state.
        assert_eq!(engine.core_slice(), &baseline_cores[..]);
    }

    #[test]
    fn engines_agree_on_a_dataset_stream() {
        let ds = load_dataset("google", Scale::Tiny, 150);
        let mut order = order_engine(&ds, 1);
        let mut trav = trav_engine(&ds, 2);
        time_insertions(&mut order, &ds.stream);
        time_insertions(&mut trav, &ds.stream);
        assert_eq!(order.core_slice(), trav.core_slice());
        time_removals(&mut order, &ds.stream);
        time_removals(&mut trav, &ds.stream);
        assert_eq!(order.core_slice(), trav.core_slice());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(3.0, 2.0), "1.50");
        assert_eq!(fmt_ratio(1.0, 0.0), "-");
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
    }
}
