//! The **SubCore** algorithm — the other core-maintenance algorithm of
//! Sariyüce et al. (PVLDB'13), discussed in the paper's related work
//! (the algorithm of Aksu et al. is "similar … but less efficient due to
//! weaker bounds").
//!
//! SubCore keeps **no index at all** beyond the core numbers: on every
//! update it materialises the *subcore* around the touched edge — the
//! maximal connected set of vertices sharing the root's core number
//! (Theorem 3.2's containment region) — and runs a local peeling on it.
//! Its search space is therefore `|sc|`, against `|pc|` for the traversal
//! algorithm and `|oc|` for the order-based one: exactly the three
//! curves of the paper's Fig 5. It trades the traversal algorithm's
//! `pcd` maintenance cost for a strictly larger search region, which is
//! why the traversal algorithm superseded it and the order-based
//! algorithm supersedes both.

use kcore_decomp::core_decomposition;
use kcore_graph::{DynamicGraph, EdgeListError, VertexId};

use crate::algo::UpdateStats;

/// Index-free core maintenance via subcore peeling.
pub struct SubCoreAlgo {
    graph: DynamicGraph,
    core: Vec<u32>,

    // epoch-stamped scratch
    epoch: u32,
    seen_mark: Vec<u32>,
    evict_mark: Vec<u32>,
    cd: Vec<u32>,
    members: Vec<VertexId>,
    queue: Vec<VertexId>,
}

impl SubCoreAlgo {
    /// Builds the engine (one core decomposition; there is no index).
    pub fn new(graph: DynamicGraph) -> Self {
        let n = graph.num_vertices();
        let core = core_decomposition(&graph);
        SubCoreAlgo {
            graph,
            core,
            epoch: 0,
            seen_mark: vec![0; n],
            evict_mark: vec![0; n],
            cd: vec![0; n],
            members: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// Current core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// All core numbers.
    #[inline]
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Adds an isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.core.push(0);
        self.seen_mark.push(0);
        self.evict_mark.push(0);
        self.cd.push(0);
        v
    }

    #[inline]
    fn bump_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.epoch
    }

    /// Collects the subcores containing the level-`k` endpoints and
    /// initialises `cd(w)` = number of neighbours that could be in the
    /// target core (`core > k`, or `core == k` — all subcore members and
    /// other level-k vertices count, matching the CoreDecomp upper
    /// bound). Returns the number of vertices gathered.
    fn gather_subcore(&mut self, roots: &[VertexId], k: u32, epoch: u32) -> usize {
        self.members.clear();
        for &r in roots {
            if self.core[r as usize] != k || self.seen_mark[r as usize] == epoch {
                continue;
            }
            self.seen_mark[r as usize] = epoch;
            self.members.push(r);
            let mut head = self.members.len() - 1;
            while head < self.members.len() {
                let w = self.members[head];
                head += 1;
                for i in 0..self.graph.degree(w) {
                    let z = self.graph.neighbors(w)[i];
                    let zi = z as usize;
                    if self.core[zi] == k && self.seen_mark[zi] != epoch {
                        self.seen_mark[zi] = epoch;
                        self.members.push(z);
                    }
                }
            }
        }
        for i in 0..self.members.len() {
            let w = self.members[i];
            let mut cd = 0u32;
            for j in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[j];
                if self.core[z as usize] >= k {
                    cd += 1;
                }
            }
            self.cd[w as usize] = cd;
        }
        self.members.len()
    }

    /// Inserts `(u, v)`: gather the root's subcore, peel it against the
    /// threshold `k + 1`; survivors are `V*`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let n = self.graph.num_vertices() as VertexId;
        if u == v {
            return Err(EdgeListError::SelfLoop(u));
        }
        if u >= n {
            return Err(EdgeListError::UnknownVertex(u));
        }
        if v >= n {
            return Err(EdgeListError::UnknownVertex(v));
        }
        if self.graph.has_edge(u, v) {
            return Err(EdgeListError::Duplicate(u, v));
        }
        self.graph.insert_edge_unchecked(u, v);
        let mut stats = UpdateStats::default();

        let k = self.core[u as usize].min(self.core[v as usize]);
        let root = if self.core[u as usize] <= self.core[v as usize] {
            u
        } else {
            v
        };
        let epoch = self.bump_epoch();
        stats.visited = self.gather_subcore(&[root], k, epoch);

        // Peel: evict members with cd <= k, cascading.
        self.queue.clear();
        let mut members = std::mem::take(&mut self.members);
        for &w in &members {
            if self.cd[w as usize] <= k && self.evict_mark[w as usize] != epoch {
                self.evict_mark[w as usize] = epoch;
                self.queue.push(w);
            }
        }
        self.run_evictions(k, epoch);

        // Survivors form the new (k+1)-core portion.
        stats.changed = 0;
        for &w in &members {
            if self.evict_mark[w as usize] != epoch {
                self.core[w as usize] = k + 1;
                stats.changed += 1;
            }
        }
        members.clear();
        self.members = members;
        Ok(stats)
    }

    /// Removes `(u, v)`: gather the subcores of the level-`k` endpoints,
    /// peel against threshold `k`; evicted members drop to `k − 1`.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        if !self.graph.has_edge(u, v) {
            return Err(EdgeListError::Missing(u, v));
        }
        self.graph.remove_edge(u, v).expect("edge present");
        self.graph
            .maintain_adjacency(kcore_graph::DEFAULT_MAX_HOLE_RATIO);
        let mut stats = UpdateStats::default();

        let k = self.core[u as usize].min(self.core[v as usize]);
        let epoch = self.bump_epoch();
        stats.visited = self.gather_subcore(&[u, v], k, epoch);

        self.queue.clear();
        let mut members = std::mem::take(&mut self.members);
        for &w in &members {
            if self.cd[w as usize] < k && self.evict_mark[w as usize] != epoch {
                self.evict_mark[w as usize] = epoch;
                self.queue.push(w);
            }
        }
        // threshold k: a member must keep >= k usable neighbours
        let mut qi = 0;
        while qi < self.queue.len() {
            let w = self.queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                if self.seen_mark[zi] == epoch && self.evict_mark[zi] != epoch {
                    self.cd[zi] -= 1;
                    if self.cd[zi] < k {
                        self.evict_mark[zi] = epoch;
                        self.queue.push(z);
                    }
                }
            }
        }

        stats.changed = 0;
        for &w in &members {
            if self.evict_mark[w as usize] == epoch {
                self.core[w as usize] = k - 1;
                stats.changed += 1;
            }
        }
        members.clear();
        self.members = members;
        Ok(stats)
    }

    /// Cascade for insertion peeling (threshold `k + 1`, i.e. evict when
    /// `cd <= k`).
    fn run_evictions(&mut self, k: u32, epoch: u32) {
        let mut qi = 0;
        while qi < self.queue.len() {
            let w = self.queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                if self.seen_mark[zi] == epoch && self.evict_mark[zi] != epoch {
                    self.cd[zi] -= 1;
                    if self.cd[zi] <= k {
                        self.evict_mark[zi] = epoch;
                        self.queue.push(z);
                    }
                }
            }
        }
    }

    /// Cross-checks against a fresh decomposition (tests).
    pub fn validate(&self) {
        assert_eq!(
            self.core,
            core_decomposition(&self.graph),
            "subcore engine diverged"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::fixtures;

    #[test]
    fn triangle_roundtrip() {
        let mut g = DynamicGraph::with_vertices(3);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        let mut sc = SubCoreAlgo::new(g);
        sc.insert_edge(2, 0).unwrap();
        assert_eq!(sc.cores(), &[2, 2, 2]);
        sc.remove_edge(0, 1).unwrap();
        assert_eq!(sc.cores(), &[1, 1, 1]);
        sc.validate();
    }

    #[test]
    fn paper_insertion_visits_whole_subcore() {
        // The 1-subcore of the paper graph has 2001 members; SubCore must
        // visit all of them — even more than the traversal algorithm's
        // 1,999 — to conclude V* = {u0}.
        let pg = fixtures::PaperGraph::full();
        let mut sc = SubCoreAlgo::new(pg.graph.clone());
        let stats = sc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        assert_eq!(stats.changed, 1);
        assert_eq!(stats.visited, 2001);
        assert_eq!(sc.core(pg.u(0)), 2);
        sc.validate();
    }

    #[test]
    fn search_space_ordering_sc_ge_pc_ge_oc() {
        // On the same update: SubCore visits >= Traversal visits >= Order
        // visits (the sc >= pc >= oc containment chain of Fig 5).
        let pg = fixtures::PaperGraph::full();
        let mut sub = SubCoreAlgo::new(pg.graph.clone());
        let mut trav = crate::TraversalCore::new(pg.graph.clone(), 2);
        let s = sub.insert_edge(pg.v(4), pg.u(0)).unwrap();
        let t = trav.insert_edge(pg.v(4), pg.u(0)).unwrap();
        assert!(s.visited >= t.visited);
        assert_eq!(sub.cores(), trav.cores());
    }

    #[test]
    fn removal_merges_subcores() {
        let mut sc = SubCoreAlgo::new(fixtures::clique(5));
        sc.remove_edge(0, 1).unwrap();
        assert_eq!(sc.cores(), &[3, 3, 3, 3, 3]);
        sc.validate();
        sc.remove_edge(2, 3).unwrap();
        sc.validate();
    }

    #[test]
    fn random_churn_matches_oracle() {
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sc = SubCoreAlgo::new(DynamicGraph::with_vertices(22));
        let mut present: Vec<(u32, u32)> = Vec::new();
        for _ in 0..260 {
            let do_remove = !present.is_empty() && next() % 3 == 0;
            if do_remove {
                let idx = (next() % present.len() as u64) as usize;
                let (a, b) = present.swap_remove(idx);
                sc.remove_edge(a, b).unwrap();
            } else {
                let a = (next() % 22) as u32;
                let b = (next() % 22) as u32;
                if a != b && !sc.graph().has_edge(a, b) {
                    sc.insert_edge(a, b).unwrap();
                    present.push((a, b));
                }
            }
            sc.validate();
        }
    }

    #[test]
    fn vertex_and_error_paths() {
        let mut sc = SubCoreAlgo::new(fixtures::triangle());
        let v = sc.add_vertex();
        assert_eq!(sc.core(v), 0);
        sc.insert_edge(v, 0).unwrap();
        assert_eq!(sc.core(v), 1);
        assert!(matches!(
            sc.insert_edge(v, 0),
            Err(EdgeListError::Duplicate(..))
        ));
        assert!(matches!(
            sc.remove_edge(v, 2),
            Err(EdgeListError::Missing(..))
        ));
        sc.validate();
    }
}
