//! # kcore-traversal
//!
//! The **traversal** core-maintenance algorithm (Sariyüce, Gedik,
//! Jacques-Silva, Wu, Çatalyürek — PVLDB'13, VLDBJ'16), the state of the
//! art the paper compares against (Section IV).
//!
//! The implementation maintains, besides the core numbers, the *candidate
//! degree hierarchy* `cd_1 … cd_h`:
//!
//! * `cd_1(u) = mcd(u)` — neighbours `w` with `core(w) >= core(u)`;
//! * `cd_l(u)` for `l >= 2` counts neighbours `w` with `core(w) > core(u)`
//!   or `core(w) = core(u) ∧ cd_{l−1}(w) > core(w)` — so `cd_2 = pcd`.
//!
//! `Trav-h` seeds its insertion DFS with `cd_h`, improving pruning as `h`
//! grows, but must keep all `h` levels current after every update: a core
//! or adjacency change at `v` can invalidate `cd_h` values `h` hops away.
//! That *h-hop refresh* is precisely the maintenance cost the paper's
//! Tables II/III attribute to the traversal family, and it is implemented
//! here faithfully: an expanding frontier of definitional recomputations,
//! level by level.

pub mod algo;
pub mod subcore;

pub use algo::{TraversalCore, UpdateStats};
pub use subcore::SubCoreAlgo;
