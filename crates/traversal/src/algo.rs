//! The traversal insertion / removal algorithms with `Trav-h` maintenance.

use kcore_decomp::core_decomposition;
use kcore_graph::{DynamicGraph, EdgeListError, VertexId};

/// Per-update instrumentation (the quantities of Figs 1 and 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// `|V'|`: vertices visited while identifying `V*` (DFS-marked for
    /// insertion, peeling-touched for removal).
    pub visited: usize,
    /// `|V*|`: vertices whose core number changed.
    pub changed: usize,
    /// Vertices whose `cd` entries were recomputed during index
    /// maintenance (the hidden cost of the traversal family).
    pub refreshed: usize,
    /// Updates short-circuited by Lemma 5.2 (`V* = ∅` without touching
    /// any order structure) — the fast path batch processing exploits.
    pub noop: usize,
    /// Batch entries skipped as invalid (self-loops, duplicates, missing
    /// edges, out-of-range endpoints). Always 0 for single-edge updates,
    /// which report such edges as errors instead.
    pub skipped: usize,
    /// Promotion/dismissal passes run over the k-order. Single-edge
    /// order-based updates pay one pass per removal (and one per
    /// insertion that survives the Lemma 5.2 short-circuit); the batched
    /// engine runs **at most one per affected level**, which is what
    /// tests assert through this counter. Traversal engines leave it 0
    /// (they have no pass notion).
    pub passes: usize,
    /// Seeds handed to those passes in total. `merged_seeds / passes > 1`
    /// is the batching win: several violating roots resolved by one walk.
    pub merged_seeds: usize,
}

impl UpdateStats {
    /// Accumulates another update's counters into `self`.
    pub fn absorb(&mut self, other: UpdateStats) {
        self.visited += other.visited;
        self.changed += other.changed;
        self.refreshed += other.refreshed;
        self.noop += other.noop;
        self.skipped += other.skipped;
        self.passes += other.passes;
        self.merged_seeds += other.merged_seeds;
    }
}

/// A dynamic graph with core numbers maintained by the traversal
/// algorithm, parameterised by the hop count `h >= 1` (`h = 2` is the
/// classic `mcd`/`pcd` variant; the paper benchmarks `h ∈ {2,…,6}`).
pub struct TraversalCore {
    graph: DynamicGraph,
    core: Vec<u32>,
    /// `cd[l - 1][v]` is `cd_l(v)`; `cd[0]` is `mcd`.
    cd: Vec<Vec<u32>>,
    h: usize,

    // ---- reusable scratch (epoch-stamped to avoid O(n) clears) ----
    epoch: u32,
    visit_mark: Vec<u32>,
    evict_mark: Vec<u32>,
    cd_work: Vec<u32>,
    touch_mark: Vec<u32>,
    stack: Vec<VertexId>,
    queue: Vec<VertexId>,
    visited_list: Vec<VertexId>,
    changed_buf: Vec<VertexId>,
    cand_buf: Vec<VertexId>,
}

impl TraversalCore {
    /// Builds the index from scratch: core decomposition plus the `h`
    /// `cd` levels (this is the Table III "index creation" cost).
    pub fn new(graph: DynamicGraph, h: usize) -> Self {
        assert!(h >= 1, "hop count must be at least 1");
        let n = graph.num_vertices();
        let core = core_decomposition(&graph);
        let mut this = TraversalCore {
            graph,
            core,
            cd: vec![vec![0; n]; h],
            h,
            epoch: 0,
            visit_mark: vec![0; n],
            evict_mark: vec![0; n],
            cd_work: vec![0; n],
            touch_mark: vec![0; n],
            stack: Vec::new(),
            queue: Vec::new(),
            visited_list: Vec::new(),
            changed_buf: Vec::new(),
            cand_buf: Vec::new(),
        };
        this.rebuild_cd();
        this
    }

    /// Recomputes every `cd` level from the definition (`O(h·m)`).
    fn rebuild_cd(&mut self) {
        let n = self.graph.num_vertices();
        for l in 0..self.h {
            for v in 0..n as VertexId {
                self.cd[l][v as usize] = self.cd_value(l, v);
            }
        }
    }

    /// Definitional `cd_{l+1}(v)` computed from level `l` (0-based `l`;
    /// level 0 reads only core numbers, i.e. produces `mcd`).
    #[inline]
    fn cd_value(&self, l: usize, v: VertexId) -> u32 {
        let cv = self.core[v as usize];
        let mut count = 0u32;
        for &w in self.graph.neighbors(v) {
            let cw = self.core[w as usize];
            if cw > cv || (cw == cv && (l == 0 || self.cd[l - 1][w as usize] > cw)) {
                count += 1;
            }
        }
        count
    }

    /// Hop count `h`.
    #[inline]
    pub fn hops(&self) -> usize {
        self.h
    }

    /// Current core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// All core numbers.
    #[inline]
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// `mcd` view (`cd_1`).
    #[inline]
    pub fn mcd(&self) -> &[u32] {
        &self.cd[0]
    }

    /// `cd_h` view — the insertion DFS seed (equals `pcd` when `h = 2`).
    #[inline]
    pub fn cd_top(&self) -> &[u32] {
        &self.cd[self.h - 1]
    }

    #[inline]
    fn bump_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.epoch
    }

    /// Adds an isolated vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.core.push(0);
        for l in 0..self.h {
            self.cd[l].push(0);
        }
        self.visit_mark.push(0);
        self.evict_mark.push(0);
        self.cd_work.push(0);
        self.touch_mark.push(0);
        v
    }

    /// Inserts `(u, v)` and updates core numbers and the `cd` index.
    /// Errors (leaving everything unchanged) on self loops, duplicates, or
    /// unknown endpoints.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let n = self.graph.num_vertices() as VertexId;
        if u == v {
            return Err(EdgeListError::SelfLoop(u));
        }
        if u >= n {
            return Err(EdgeListError::UnknownVertex(u));
        }
        if v >= n {
            return Err(EdgeListError::UnknownVertex(v));
        }
        if self.graph.has_edge(u, v) {
            return Err(EdgeListError::Duplicate(u, v));
        }
        self.graph.insert_edge_unchecked(u, v);
        let mut stats = UpdateStats::default();

        // Phase A: bring the cd hierarchy up to date for the new edge
        // (old core numbers) — the DFS seeds below must see fresh values.
        stats.refreshed += self.refresh_cd(&[], Some((u, v)));

        // Select the root on the smaller-core side.
        let root = if self.core[u as usize] <= self.core[v as usize] {
            u
        } else {
            v
        };
        let k = self.core[root as usize];

        // Phase B: expand-shrink search for V*.
        //
        // The DFS may only visit vertices counted by the cd_h seeds of
        // their neighbours, i.e. those with cd_{h-1} > K (mcd for the
        // classic h = 2); otherwise eviction propagation would retract
        // contributions the seeds never contained.
        let vis_idx = self.h.saturating_sub(2);
        let visit = self.bump_epoch();
        self.visited_list.clear();
        if self.cd[vis_idx][root as usize] > k {
            self.stack.clear();
            self.visit(root, k, visit);
            self.stack.push(root);
            while let Some(w) = self.stack.pop() {
                if self.cd_work[w as usize] > k {
                    for i in 0..self.graph.degree(w) {
                        let z = self.graph.neighbors(w)[i];
                        let zi = z as usize;
                        if self.core[zi] == k
                            && self.visit_mark[zi] != visit
                            && self.cd[vis_idx][zi] > k
                        {
                            self.visit(z, k, visit);
                            self.stack.push(z);
                        }
                    }
                } else if self.evict_mark[w as usize] != visit {
                    self.propagate_eviction(w, k, visit);
                }
            }
        }
        stats.visited = self.visited_list.len();

        // V* = visited ∧ ¬evicted → core rises to k + 1.
        self.changed_buf.clear();
        for i in 0..self.visited_list.len() {
            let w = self.visited_list[i];
            if self.evict_mark[w as usize] != visit {
                self.core[w as usize] = k + 1;
                self.changed_buf.push(w);
            }
        }
        stats.changed = self.changed_buf.len();

        // Phase C: repair the cd hierarchy around the core changes.
        if !self.changed_buf.is_empty() {
            let changed = std::mem::take(&mut self.changed_buf);
            stats.refreshed += self.refresh_cd(&changed, None);
            self.changed_buf = changed;
        }
        Ok(stats)
    }

    /// Marks `z` visited and seeds its working candidate degree from
    /// `cd_h`, minus the same-core neighbours that were already evicted in
    /// this search — the seed counted them (eviction implies they passed
    /// the `cd_{h-1} > K` visit test), but their retraction already
    /// happened and must not be lost.
    fn visit(&mut self, z: VertexId, k: u32, visit: u32) {
        let zi = z as usize;
        self.visit_mark[zi] = visit;
        let mut cd = self.cd[self.h - 1][zi];
        for &w in self.graph.neighbors(z) {
            let wi = w as usize;
            if self.core[wi] == k && self.evict_mark[wi] == visit {
                cd -= 1;
            }
        }
        self.cd_work[zi] = cd;
        self.visited_list.push(z);
    }

    /// Backward eviction: `w` cannot be in the new `(k+1)`-core; retract
    /// its contribution from visited neighbours, cascading.
    fn propagate_eviction(&mut self, w: VertexId, k: u32, visit: u32) {
        self.queue.clear();
        self.queue.push(w);
        self.evict_mark[w as usize] = visit;
        let mut qi = 0;
        while qi < self.queue.len() {
            let x = self.queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(x) {
                let z = self.graph.neighbors(x)[i];
                let zi = z as usize;
                if self.core[zi] == k
                    && self.visit_mark[zi] == visit
                    && self.evict_mark[zi] != visit
                {
                    self.cd_work[zi] -= 1;
                    if self.cd_work[zi] <= k {
                        self.evict_mark[zi] = visit;
                        self.queue.push(z);
                    }
                }
            }
        }
    }

    /// Removes `(u, v)` and updates core numbers and the `cd` index.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        if !self.graph.has_edge(u, v) {
            return Err(EdgeListError::Missing(u, v));
        }
        self.graph.remove_edge(u, v).expect("edge present");
        self.graph
            .maintain_adjacency(kcore_graph::DEFAULT_MAX_HOLE_RATIO);
        let mut stats = UpdateStats::default();

        // Keep mcd coherent for the peeling seeds below (Algorithm 4
        // lines 3–4 of the paper do exactly this before searching).
        if self.core[u as usize] <= self.core[v as usize] {
            self.cd[0][u as usize] -= 1;
        }
        if self.core[v as usize] <= self.core[u as usize] {
            self.cd[0][v as usize] -= 1;
        }

        let k = self.core[u as usize].min(self.core[v as usize]);

        // CoreDecomp-style peeling restricted to the K-level, seeded from
        // mcd. cd_work is initialised lazily per touched vertex; a vertex
        // is dismissed (core drops to k − 1) in exactly one place, which
        // also doubles as the queue-membership guard.
        let touch = self.bump_epoch();
        self.changed_buf.clear();
        self.queue.clear();
        let mut touched = 0usize;
        for root in [u, v] {
            let ri = root as usize;
            if self.core[ri] != k {
                continue;
            }
            if self.touch_mark[ri] != touch {
                self.touch_mark[ri] = touch;
                self.cd_work[ri] = self.cd[0][ri];
                touched += 1;
            }
            if self.core[ri] == k && self.cd_work[ri] < k {
                self.core[ri] = k - 1; // dismiss
                self.changed_buf.push(root);
                self.queue.push(root);
            }
        }
        let mut qi = 0;
        while qi < self.queue.len() {
            let w = self.queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                if self.core[zi] != k {
                    continue;
                }
                if self.touch_mark[zi] != touch {
                    self.touch_mark[zi] = touch;
                    self.cd_work[zi] = self.cd[0][zi];
                    touched += 1;
                }
                self.cd_work[zi] -= 1;
                if self.cd_work[zi] < k {
                    self.core[zi] = k - 1; // dismiss; also blocks re-entry
                    self.changed_buf.push(z);
                    self.queue.push(z);
                }
            }
        }
        stats.visited = touched;
        stats.changed = self.changed_buf.len();

        let changed = std::mem::take(&mut self.changed_buf);
        stats.refreshed += self.refresh_cd(&changed, Some((u, v)));
        self.changed_buf = changed;
        Ok(stats)
    }

    /// Repairs the `cd` hierarchy after `core_changed` vertices changed
    /// core number and/or the adjacency of `endpoints` changed. Returns
    /// the number of vertex-level recomputations (the maintenance cost).
    ///
    /// Level `l`'s value at `v` depends on `core(v)`, the cores of `v`'s
    /// neighbours, and their `cd_{l-1}`; so the candidate frontier at each
    /// level is: changed cores + their neighbours + neighbours of vertices
    /// whose previous level changed (+ the endpoints).
    #[allow(clippy::needless_range_loop)] // index loops sidestep holding &self borrows
    fn refresh_cd(&mut self, core_changed: &[VertexId], endpoints: Option<(u32, u32)>) -> usize {
        let mut refreshed = 0usize;
        // prev_changed: vertices whose cd at the previous level changed.
        let mut prev_changed: Vec<VertexId> = Vec::new();
        for l in 0..self.h {
            let mark = self.bump_epoch();
            self.cand_buf.clear();
            let push = |this: &mut Self, x: VertexId| {
                if this.touch_mark[x as usize] != mark {
                    this.touch_mark[x as usize] = mark;
                    this.cand_buf.push(x);
                }
            };
            if let Some((a, b)) = endpoints {
                push(self, a);
                push(self, b);
            }
            for i in 0..core_changed.len() {
                let w = core_changed[i];
                push(self, w);
                for j in 0..self.graph.degree(w) {
                    let z = self.graph.neighbors(w)[j];
                    push(self, z);
                }
            }
            for i in 0..prev_changed.len() {
                let w = prev_changed[i];
                for j in 0..self.graph.degree(w) {
                    let z = self.graph.neighbors(w)[j];
                    push(self, z);
                }
            }
            let mut next_changed = Vec::new();
            for i in 0..self.cand_buf.len() {
                let v = self.cand_buf[i];
                let new = self.cd_value(l, v);
                refreshed += 1;
                if new != self.cd[l][v as usize] {
                    self.cd[l][v as usize] = new;
                    next_changed.push(v);
                }
            }
            if l == 0 {
                // The callers may have pre-applied the endpoint mcd deltas
                // (the removal peeling needs them before this refresh), so
                // value comparison cannot detect those changes — treat the
                // endpoints as changed unconditionally.
                if let Some((a, b)) = endpoints {
                    if !next_changed.contains(&a) {
                        next_changed.push(a);
                    }
                    if !next_changed.contains(&b) {
                        next_changed.push(b);
                    }
                }
            }
            prev_changed = next_changed;
        }
        refreshed
    }

    /// Cross-checks every maintained quantity against a from-scratch
    /// recomputation; panics with a description on divergence (tests).
    #[allow(clippy::needless_range_loop)]
    pub fn validate(&self) {
        let reference = core_decomposition(&self.graph);
        assert_eq!(self.core, reference, "core numbers diverged");
        let levels = kcore_decomp::validate::compute_cd_levels(&self.graph, &self.core, self.h);
        for l in 0..self.h {
            assert_eq!(self.cd[l], levels[l], "cd level {} diverged", l + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::fixtures;

    fn assert_cores(tc: &TraversalCore, expected: &[u32]) {
        assert_eq!(tc.cores(), expected);
    }

    #[test]
    fn build_matches_decomposition() {
        for h in 1..=4 {
            let pg = fixtures::PaperGraph::small();
            let tc = TraversalCore::new(pg.graph.clone(), h);
            tc.validate();
            assert_eq!(tc.hops(), h);
        }
    }

    #[test]
    fn insert_forms_triangle() {
        let mut g = DynamicGraph::with_vertices(3);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        let mut tc = TraversalCore::new(g, 2);
        assert_cores(&tc, &[1, 1, 1]);
        let stats = tc.insert_edge(2, 0).unwrap();
        assert_cores(&tc, &[2, 2, 2]);
        assert_eq!(stats.changed, 3);
        tc.validate();
    }

    #[test]
    fn insert_between_isolated_vertices() {
        let g = DynamicGraph::with_vertices(2);
        let mut tc = TraversalCore::new(g, 2);
        tc.insert_edge(0, 1).unwrap();
        assert_cores(&tc, &[1, 1]);
        tc.validate();
    }

    #[test]
    fn paper_example_4_2_insertion() {
        // Inserting (v4, u0) raises only u0's core, but Trav visits the
        // whole qualified chain.
        let pg = fixtures::PaperGraph::full();
        let mut tc = TraversalCore::new(pg.graph.clone(), 2);
        let stats = tc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        assert_eq!(stats.changed, 1);
        assert_eq!(tc.core(pg.u(0)), 2);
        assert_eq!(tc.core(pg.u(1)), 1);
        // The DFS visits ~all interior chain vertices (the paper counts
        // 1,999 of them) — the deficiency motivating the order approach.
        assert!(
            stats.visited > 1900,
            "expected a near-full chain scan, visited {}",
            stats.visited
        );
        tc.validate();
    }

    #[test]
    fn removal_reverts_insertion() {
        let pg = fixtures::PaperGraph::small();
        let mut tc = TraversalCore::new(pg.graph.clone(), 2);
        tc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        assert_eq!(tc.core(pg.u(0)), 2);
        let stats = tc.remove_edge(pg.v(4), pg.u(0)).unwrap();
        assert_eq!(tc.core(pg.u(0)), 1);
        assert_eq!(stats.changed, 1);
        assert_eq!(tc.cores(), &pg.expected_cores());
        tc.validate();
    }

    #[test]
    fn removal_unravels_clique_edge() {
        let mut tc = TraversalCore::new(fixtures::clique(4), 2);
        assert_cores(&tc, &[3, 3, 3, 3]);
        tc.remove_edge(0, 1).unwrap();
        assert_cores(&tc, &[2, 2, 2, 2]);
        tc.validate();
    }

    #[test]
    fn higher_hops_prune_harder() {
        // On the full paper graph, Trav-2 visits ~2000 vertices for the
        // (v4, u0) insertion; higher h prunes the chain further.
        let pg = fixtures::PaperGraph::full();
        let mut visited = Vec::new();
        for h in [2usize, 4, 6] {
            let mut tc = TraversalCore::new(pg.graph.clone(), h);
            let stats = tc.insert_edge(pg.v(4), pg.u(0)).unwrap();
            tc.validate();
            visited.push(stats.visited);
        }
        assert!(
            visited[0] >= visited[1] && visited[1] >= visited[2],
            "pruning must not degrade with h: {visited:?}"
        );
    }

    #[test]
    fn duplicate_and_missing_edges_error() {
        let mut tc = TraversalCore::new(fixtures::triangle(), 2);
        assert!(matches!(
            tc.insert_edge(0, 1),
            Err(EdgeListError::Duplicate(0, 1))
        ));
        assert!(matches!(
            tc.remove_edge(0, 9),
            Err(EdgeListError::Missing(0, 9))
        ));
        assert!(matches!(
            tc.insert_edge(1, 1),
            Err(EdgeListError::SelfLoop(1))
        ));
        tc.validate();
    }

    #[test]
    fn random_churn_stays_consistent() {
        // Insert & remove random edges, validating after every step.
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for h in [2usize, 3] {
            let mut tc = TraversalCore::new(DynamicGraph::with_vertices(24), h);
            let mut present: Vec<(u32, u32)> = Vec::new();
            for _ in 0..160 {
                let do_remove = !present.is_empty() && next() % 3 == 0;
                if do_remove {
                    let idx = (next() % present.len() as u64) as usize;
                    let (a, b) = present.swap_remove(idx);
                    tc.remove_edge(a, b).unwrap();
                } else {
                    let a = (next() % 24) as u32;
                    let b = (next() % 24) as u32;
                    if a != b && !tc.graph().has_edge(a, b) {
                        tc.insert_edge(a, b).unwrap();
                        present.push((a, b));
                    }
                }
                tc.validate();
            }
        }
    }

    #[test]
    fn add_vertex_then_connect() {
        let mut tc = TraversalCore::new(fixtures::triangle(), 2);
        let v = tc.add_vertex();
        assert_eq!(tc.core(v), 0);
        tc.insert_edge(v, 0).unwrap();
        assert_eq!(tc.core(v), 1);
        tc.validate();
    }

    #[test]
    fn theorem_3_1_core_changes_by_at_most_one() {
        let pg = fixtures::PaperGraph::small();
        let mut tc = TraversalCore::new(pg.graph.clone(), 2);
        let before = tc.cores().to_vec();
        tc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        for (v, &b0) in before.iter().enumerate() {
            let d = tc.cores()[v] as i64 - b0 as i64;
            assert!((0..=1).contains(&d));
        }
    }
}
