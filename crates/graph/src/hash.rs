//! Fx-style hashing for integer-keyed maps and sets.
//!
//! The default `std` hasher (SipHash 1-3) is collision-resistant but slow
//! for the 4–8 byte integer keys that dominate this workspace (vertex ids,
//! packed edge keys). The Firefox/rustc "Fx" multiply-rotate hash is the
//! standard fast replacement; since `rustc-hash` is not among the allowed
//! offline dependencies, the algorithm (public domain, ~20 lines) is
//! implemented here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming Fx hasher: `state = (rotl(state, 5) ^ word) * SEED` per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path, only hit for non-integer keys (rare here): fold the
        // byte stream 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000u32 {
            s.insert(i % 100);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn hash_distributes_sequential_keys() {
        // Sequential integers must not collide in the low bits too badly;
        // check that a table the size of the key range has decent occupancy
        // of distinct hashes.
        let mut hashes: FxHashSet<u64> = FxHashSet::default();
        for i in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 4096, "sequential keys must hash distinctly");
    }

    #[test]
    fn byte_stream_matches_length_sensitivity() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abc\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn small_writes_feed_state() {
        let mut h = FxHasher::default();
        h.write_u8(7);
        h.write_u16(9);
        h.write_u32(11);
        h.write_usize(13);
        assert_ne!(h.finish(), 0);
    }
}
