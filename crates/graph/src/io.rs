//! Plain-text edge-list reading and writing.
//!
//! Two formats are supported, matching what SNAP / Konect dumps look like:
//!
//! * **static**: one `u v` pair per line;
//! * **temporal**: one `u v t` triple per line (Konect-style), where `t` is
//!   a non-decreasing integer timestamp.
//!
//! Lines starting with `#` or `%` are comments. Directed inputs are
//! symmetrised by construction (an undirected edge is stored once).

use crate::graph::{edge_key, DynamicGraph, VertexId};
use crate::hash::FxHashSet;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

// The binary CSR path lives in [`crate::mapped`]; re-exported here so
// "graph I/O" stays one import site for callers.
pub use crate::mapped::{load_csr_mapped, save_csr};

/// A timestamped undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEdge {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Timestamp (arbitrary units, larger = later).
    pub t: u64,
}

/// Errors produced while parsing edge lists.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line did not contain the expected number of integer fields.
    Malformed { line: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('#') || t.starts_with('%')
}

/// Parses a static `u v` edge list from a reader. Duplicate edges and self
/// loops are dropped; vertices are whatever ids appear in the file.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Vec<(VertexId, VertexId)>, ParseError> {
    let mut edges = Vec::new();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(ParseError::Malformed {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v)) = (a.parse::<VertexId>(), b.parse::<VertexId>()) else {
            return Err(ParseError::Malformed {
                line: idx + 1,
                content: line.clone(),
            });
        };
        if u != v && seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
    Ok(edges)
}

/// Parses a temporal `u v t` edge list; edges are returned sorted by
/// timestamp (stable, so ties keep file order). Duplicates keep their
/// earliest occurrence.
pub fn read_temporal_edge_list<R: BufRead>(reader: R) -> Result<Vec<TemporalEdge>, ParseError> {
    let mut edges = Vec::new();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b), Some(c)) = (it.next(), it.next(), it.next()) else {
            return Err(ParseError::Malformed {
                line: idx + 1,
                content: line.clone(),
            });
        };
        let (Ok(u), Ok(v), Ok(t)) = (
            a.parse::<VertexId>(),
            b.parse::<VertexId>(),
            c.parse::<u64>(),
        ) else {
            return Err(ParseError::Malformed {
                line: idx + 1,
                content: line.clone(),
            });
        };
        if u != v && seen.insert(edge_key(u, v)) {
            edges.push(TemporalEdge { u, v, t });
        }
    }
    edges.sort_by_key(|e| e.t);
    Ok(edges)
}

/// Loads a static edge list file into a [`DynamicGraph`].
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<DynamicGraph, ParseError> {
    let file = std::fs::File::open(path)?;
    let edges = read_edge_list(io::BufReader::new(file))?;
    Ok(DynamicGraph::from_edges(edges))
}

/// Writes a graph as a `u v` edge list (one edge per line, `u < v`).
pub fn write_edge_list<W: Write>(graph: &DynamicGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# n={} m={}", graph.num_vertices(), graph.num_edges())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Saves a graph to a file in edge-list format.
pub fn save_graph<P: AsRef<Path>>(graph: &DynamicGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Writes a temporal stream as Konect-style `u v t` lines (one edge per
/// line, in the given order).
pub fn write_temporal_edge_list<W: Write>(edges: &[TemporalEdge], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% temporal edge list, {} edges", edges.len())?;
    for e in edges {
        writeln!(w, "{} {} {}", e.u, e.v, e.t)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn reads_static_edge_list() {
        let input = "# comment\n% konect comment\n0 1\n1 2\n2 0\n\n1 0\n3 3\n";
        let edges = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list(Cursor::new("0 1\nnot an edge\n")).unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reads_temporal_sorted() {
        let input = "5 6 30\n1 2 10\n3 4 20\n1 2 5\n";
        let edges = read_temporal_edge_list(Cursor::new(input)).unwrap();
        // duplicate (1,2) keeps earliest occurrence (t=10, first seen)
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], TemporalEdge { u: 1, v: 2, t: 10 });
        assert_eq!(edges[1], TemporalEdge { u: 3, v: 4, t: 20 });
        assert_eq!(edges[2], TemporalEdge { u: 5, v: 6, t: 30 });
    }

    #[test]
    fn write_read_roundtrip() {
        let g = crate::fixtures::petersen();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let edges = read_edge_list(Cursor::new(buf)).unwrap();
        let g2 = DynamicGraph::from_edges(edges);
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn temporal_write_read_roundtrip() {
        let edges = vec![
            TemporalEdge { u: 3, v: 4, t: 7 },
            TemporalEdge { u: 0, v: 1, t: 2 },
        ];
        let mut buf = Vec::new();
        write_temporal_edge_list(&edges, &mut buf).unwrap();
        let back = read_temporal_edge_list(Cursor::new(buf)).unwrap();
        // reader sorts by timestamp
        assert_eq!(back[0], TemporalEdge { u: 0, v: 1, t: 2 });
        assert_eq!(back[1], TemporalEdge { u: 3, v: 4, t: 7 });
    }

    #[test]
    fn file_roundtrip() {
        let g = crate::fixtures::clique(6);
        let dir = std::env::temp_dir().join("kcore_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clique6.txt");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.num_edges(), 15);
        std::fs::remove_file(path).ok();
    }
}
