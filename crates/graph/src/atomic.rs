//! Atomic-friendly degree views for parallel peeling.
//!
//! The level-synchronous parallel decomposition in `kcore-decomp`
//! repeatedly decrements the remaining degree of a peeled vertex's
//! neighbours from many threads at once. [`AtomicDegrees`] packages the
//! one primitive that makes this race-free *and* loss-free:
//! [`AtomicDegrees::decrement_above`], a CAS loop that decrements only
//! while the current value stays strictly above a floor. Compared with a
//! plain `fetch_sub` + undo protocol it can never transiently underflow
//! (no wrapped `u32::MAX` value is ever observable), and its return value
//! tells the caller exactly which thread performed the transition onto
//! the floor — the property the peel uses to add each vertex to a
//! frontier exactly once.

use crate::graph::VertexId;
use std::sync::atomic::{AtomicU32, Ordering};

/// A flat array of per-vertex degree counters safe to mutate from many
/// threads. Build one per decomposition from a degree snapshot.
#[derive(Debug, Default)]
pub struct AtomicDegrees {
    deg: Vec<AtomicU32>,
}

impl AtomicDegrees {
    /// Builds the view from an iterator of initial degrees (vertex id =
    /// iteration index).
    pub fn from_degrees<I: IntoIterator<Item = u32>>(degrees: I) -> Self {
        AtomicDegrees {
            deg: degrees.into_iter().map(AtomicU32::new).collect(),
        }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.deg.len()
    }

    /// `true` when the view covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deg.is_empty()
    }

    /// Current value for `v` (relaxed; callers synchronise via their own
    /// join/barrier points).
    #[inline]
    pub fn load(&self, v: VertexId) -> u32 {
        self.deg[v as usize].load(Ordering::Relaxed)
    }

    /// Decrements `v`'s counter by one **iff** it is strictly above
    /// `floor`, returning the new value, or `None` when the counter
    /// already sat at or below the floor. Among concurrent callers,
    /// exactly one observes each transition value — in particular exactly
    /// one receives `Some(floor)`, which is what makes frontier insertion
    /// exactly-once in the parallel peel.
    #[inline]
    pub fn decrement_above(&self, v: VertexId, floor: u32) -> Option<u32> {
        self.deg[v as usize]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                if d > floor {
                    Some(d - 1)
                } else {
                    None
                }
            })
            .ok()
            .map(|prev| prev - 1)
    }

    /// Copies the counters out (after all workers joined).
    pub fn snapshot(&self) -> Vec<u32> {
        self.deg.iter().map(|d| d.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrement_respects_floor() {
        let d = AtomicDegrees::from_degrees([3, 0, 5]);
        assert_eq!(d.decrement_above(0, 2), Some(2));
        assert_eq!(d.decrement_above(0, 2), None);
        assert_eq!(d.decrement_above(1, 0), None);
        assert_eq!(d.load(0), 2);
        assert_eq!(d.snapshot(), vec![2, 0, 5]);
    }

    #[test]
    fn concurrent_decrements_hit_floor_exactly_once() {
        // 8 threads race 1000 decrements against floor 0 on a counter of
        // 500: the floor transition (Some(0)) must be claimed exactly once
        // and the counter must never wrap.
        let d = AtomicDegrees::from_degrees([500]);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..125 {
                        if d.decrement_above(0, 0) == Some(0) {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(d.load(0), 0);
    }
}
