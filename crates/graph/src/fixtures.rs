//! Shared test graphs, including the running example of the paper (Fig 3).
//!
//! The paper's sample graph `G` consists of
//!
//! * `u0 … u2000`: a 1-core region — two long chains hanging off `u0`
//!   (odd indices `u1–u3–…–u1997` plus leaf `u1999`, even indices
//!   `u2–u4–…–u1998` plus leaf `u2000`);
//! * `v1 … v5`: the unique 2-subcore (`v3` is its hub);
//! * `v6 … v9` and `v10 … v13`: two 4-cliques, the two 3-subcores;
//! * the bridge `u0 – v5` and the cross edges `v2 – v7`, `v1 – v6`,
//!   `v1 – v10` linking the regions.
//!
//! This edge list is pinned down by the paper's own numbers: the `mcd`/`pcd`
//! annotations of Fig 3, the `cd` values of Fig 4, the `deg⁺` values of the
//! k-order in Fig 6 (`O1: u2000 … u0`, `O2: v4 v5 v3 v2 v1`,
//! `O3: v8 v9 v7 v6 v13 v12 v11 v10`), and the traces of Examples 4.1, 4.2,
//! 5.1 and 5.2. Unit tests across the workspace assert exactly those values.

use crate::graph::{DynamicGraph, VertexId};

/// The paper's Fig 3 graph with a configurable chain length.
///
/// `chain` is the number of `u`-vertices besides `u0`; the paper uses
/// `chain = 2000`. `chain` must be even and at least 4 so that both the odd
/// and even chains have an interior vertex and a leaf.
pub struct PaperGraph {
    /// The constructed graph.
    pub graph: DynamicGraph,
    chain: u32,
}

impl PaperGraph {
    /// Builds the Fig 3 graph with `u0 … u_chain` (the paper's instance is
    /// [`PaperGraph::full`]; tests mostly use [`PaperGraph::small`]).
    pub fn new(chain: u32) -> Self {
        assert!(
            chain >= 4 && chain.is_multiple_of(2),
            "chain must be even and >= 4"
        );
        let n = chain as usize + 1 + 13;
        let mut g = DynamicGraph::with_vertices(n);

        // u-region: u0 is vertex 0, u_i is vertex i.
        // Odd chain u1 - u3 - ... - u_{chain-3}, leaf u_{chain-1}.
        g.insert_edge(0, 1).unwrap();
        let mut i = 1;
        while i + 2 <= chain - 3 {
            g.insert_edge(i, i + 2).unwrap();
            i += 2;
        }
        g.insert_edge(chain - 3, chain - 1).unwrap();
        // Even chain u2 - u4 - ... - u_{chain-2}, leaf u_chain.
        g.insert_edge(0, 2).unwrap();
        let mut i = 2;
        while i + 2 <= chain - 2 {
            g.insert_edge(i, i + 2).unwrap();
            i += 2;
        }
        g.insert_edge(chain - 2, chain).unwrap();

        let v = |j: u32| chain + j; // v_j lives at id chain + j

        // 2-subcore {v1..v5}: edges v1-v2, v2-v3, v3-v4, v4-v5, v3-v5, v3-v1.
        g.insert_edge(v(1), v(2)).unwrap();
        g.insert_edge(v(2), v(3)).unwrap();
        g.insert_edge(v(3), v(4)).unwrap();
        g.insert_edge(v(4), v(5)).unwrap();
        g.insert_edge(v(3), v(5)).unwrap();
        g.insert_edge(v(3), v(1)).unwrap();
        // Bridge from the 1-core region.
        g.insert_edge(0, v(5)).unwrap();
        // 3-subcores: two 4-cliques.
        for base in [6, 10] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    g.insert_edge(v(base + a), v(base + b)).unwrap();
                }
            }
        }
        // Cross edges anchoring the v-region deg+ values of Fig 6.
        g.insert_edge(v(2), v(7)).unwrap();
        g.insert_edge(v(1), v(6)).unwrap();
        g.insert_edge(v(1), v(10)).unwrap();

        PaperGraph { graph: g, chain }
    }

    /// The exact instance of the paper: `u0 … u2000`.
    pub fn full() -> Self {
        PaperGraph::new(2000)
    }

    /// A 21-vertex `u`-region variant, same structure, test-sized.
    pub fn small() -> Self {
        PaperGraph::new(20)
    }

    /// Vertex id of `u_i` (`0 <= i <= chain`).
    #[inline]
    pub fn u(&self, i: u32) -> VertexId {
        debug_assert!(i <= self.chain);
        i
    }

    /// Vertex id of `v_j` (`1 <= j <= 13`).
    #[inline]
    pub fn v(&self, j: u32) -> VertexId {
        debug_assert!((1..=13).contains(&j));
        self.chain + j
    }

    /// Number of `u`-vertices besides `u0`.
    #[inline]
    pub fn chain(&self) -> u32 {
        self.chain
    }

    /// The expected core number of every vertex (the paper's Example 3.1).
    pub fn expected_cores(&self) -> Vec<u32> {
        let mut core = vec![1u32; self.graph.num_vertices()];
        for j in 1..=5 {
            core[self.v(j) as usize] = 2;
        }
        for j in 6..=13 {
            core[self.v(j) as usize] = 3;
        }
        core
    }
}

/// A triangle (3-cycle): every vertex has core number 2.
pub fn triangle() -> DynamicGraph {
    cycle(3)
}

/// A simple path `0 - 1 - … - (n-1)`; every vertex has core number 1.
pub fn path(n: usize) -> DynamicGraph {
    assert!(n >= 2);
    let mut g = DynamicGraph::with_vertices(n);
    for i in 0..n - 1 {
        g.insert_edge(i as VertexId, i as VertexId + 1).unwrap();
    }
    g
}

/// A cycle on `n >= 3` vertices; every vertex has core number 2.
pub fn cycle(n: usize) -> DynamicGraph {
    assert!(n >= 3);
    let mut g = path(n);
    g.insert_edge(n as VertexId - 1, 0).unwrap();
    g
}

/// The complete graph `K_n`; every vertex has core number `n - 1`.
pub fn clique(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.insert_edge(a as VertexId, b as VertexId).unwrap();
        }
    }
    g
}

/// A star with `n` leaves around vertex 0; every vertex has core number 1.
pub fn star(n: usize) -> DynamicGraph {
    assert!(n >= 1);
    let mut g = DynamicGraph::with_vertices(n + 1);
    for i in 1..=n {
        g.insert_edge(0, i as VertexId).unwrap();
    }
    g
}

/// Two `K_4`s joined by a single bridge edge; the bridge endpoints keep core
/// number 3 and the bridge itself is in no 2-core cycle.
pub fn two_cliques_bridge() -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(8);
    for base in [0u32, 4u32] {
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.insert_edge(base + a, base + b).unwrap();
            }
        }
    }
    g.insert_edge(3, 4).unwrap();
    g
}

/// The Petersen graph: 3-regular, so every vertex has core number 3.
pub fn petersen() -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(10);
    for i in 0..5u32 {
        g.insert_edge(i, (i + 1) % 5).unwrap(); // outer 5-cycle
        g.insert_edge(5 + i, 5 + (i + 2) % 5).unwrap(); // inner pentagram
        g.insert_edge(i, 5 + i).unwrap(); // spokes
    }
    g
}

/// Complete bipartite graph `K_{a,b}`; every vertex has core `min(a, b)`.
pub fn complete_bipartite(a: usize, b: usize) -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(a + b);
    for x in 0..a {
        for y in 0..b {
            g.insert_edge(x as VertexId, (a + y) as VertexId).unwrap();
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_graph_small_shape() {
        let pg = PaperGraph::small();
        let g = &pg.graph;
        g.check_consistency().unwrap();
        assert_eq!(g.num_vertices(), 21 + 13);
        // u0 is adjacent to u1, u2 and v5.
        let mut nbrs: Vec<_> = g.neighbors(pg.u(0)).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![pg.u(1), pg.u(2), pg.v(5)]);
        // Leaves have degree 1.
        assert_eq!(g.degree(pg.u(19)), 1);
        assert_eq!(g.degree(pg.u(20)), 1);
        // v3 is the hub of the 2-subcore.
        assert_eq!(g.degree(pg.v(3)), 4);
        // Clique vertices: 3 intra-clique edges (+1 for v6, v7, v10).
        assert_eq!(g.degree(pg.v(8)), 3);
        assert_eq!(g.degree(pg.v(7)), 4);
    }

    #[test]
    fn paper_graph_full_matches_paper_scale() {
        let pg = PaperGraph::full();
        assert_eq!(pg.graph.num_vertices(), 2001 + 13);
        assert_eq!(pg.graph.degree(pg.u(1997)), 2); // u1995 and u1999
        assert_eq!(pg.graph.degree(pg.u(1999)), 1);
        assert!(pg.graph.has_edge(pg.u(1997), pg.u(1999)));
        assert!(pg.graph.has_edge(pg.u(1998), pg.u(2000)));
        pg.graph.check_consistency().unwrap();
    }

    #[test]
    fn fixture_shapes() {
        assert_eq!(triangle().num_edges(), 3);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(clique(5).num_edges(), 10);
        assert_eq!(star(6).num_edges(), 6);
        assert_eq!(two_cliques_bridge().num_edges(), 13);
        let p = petersen();
        assert_eq!(p.num_edges(), 15);
        assert!(p.vertices().all(|v| p.degree(v) == 3));
        let kb = complete_bipartite(2, 3);
        assert_eq!(kb.num_edges(), 6);
    }
}
