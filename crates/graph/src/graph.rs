//! The dynamic undirected simple graph used by all maintenance algorithms.

use crate::arena::AdjArena;
use std::fmt;

/// Dense vertex identifier. Vertices are numbered `0..n`, which lets every
/// per-vertex attribute in the algorithm layers live in a flat `Vec`.
pub type VertexId = u32;

/// The hole ratio at which [`DynamicGraph::maintain_adjacency`] compacts —
/// backing entries may grow to twice the live half-edges (plus slack)
/// before a CSR rebuild is scheduled.
pub const DEFAULT_MAX_HOLE_RATIO: f64 = 2.0;

/// Sentinel for "no vertex" used by intrusive structures in other crates.
pub const NO_VERTEX: VertexId = VertexId::MAX;

/// Error type for edge-level mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeListError {
    /// The edge joins a vertex to itself; k-core theory assumes simple graphs.
    SelfLoop(VertexId),
    /// The edge already exists (parallel edges are rejected).
    Duplicate(VertexId, VertexId),
    /// The edge was not present (for removals).
    Missing(VertexId, VertexId),
    /// One endpoint exceeds the current vertex range.
    UnknownVertex(VertexId),
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EdgeListError::SelfLoop(v) => write!(f, "self loop at vertex {v}"),
            EdgeListError::Duplicate(u, v) => write!(f, "edge ({u}, {v}) already present"),
            EdgeListError::Missing(u, v) => write!(f, "edge ({u}, {v}) not present"),
            EdgeListError::UnknownVertex(v) => write!(f, "vertex {v} out of range"),
        }
    }
}

impl std::error::Error for EdgeListError {}

/// An undirected simple graph with `O(1)` amortised edge insertion and
/// `O(deg)` edge removal.
///
/// Both core-maintenance algorithm families spend almost all of their time
/// scanning neighbour lists, so adjacency lives in a flat [`AdjArena`]:
/// **one** contiguous backing buffer with per-vertex slices, instead of a
/// `Vec<Vec<VertexId>>` whose per-vertex heap allocations scatter the
/// neighbour lists. Scans stay `&[VertexId]`, no hashing on the hot path,
/// and batch writers can pre-reserve slot capacity so the steady-state
/// insertion path performs zero heap allocation. Edge-existence probes
/// (used to keep the graph simple) scan the smaller endpoint's list.
///
/// ```
/// use kcore_graph::DynamicGraph;
///
/// let mut g = DynamicGraph::with_vertices(4);
/// g.insert_edge(0, 1).unwrap();
/// g.insert_edge(1, 2).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
/// g.remove_edge(0, 1).unwrap();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Default)]
pub struct DynamicGraph {
    adj: AdjArena,
    m: usize,
}

impl DynamicGraph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        DynamicGraph {
            adj: AdjArena::with_vertices(n),
            m: 0,
        }
    }

    /// Builds a graph from an edge list, adding vertices as needed.
    /// Self loops and duplicate edges are silently skipped (generators and
    /// text loaders routinely produce a few of both).
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = DynamicGraph::new();
        for (u, v) in edges {
            g.ensure_vertex(u.max(v));
            let _ = g.insert_edge(u, v);
        }
        g
    }

    /// Number of vertices (`n`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.num_vertices()
    }

    /// Number of undirected edges (`m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.num_vertices() == 0
    }

    /// Adds one isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push_vertex()
    }

    /// Grows the vertex set so that `v` is a valid id.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        self.adj.ensure_vertex(v);
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj.len_of(v)
    }

    /// Neighbours of `v` in unspecified order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.adj.slice(v)
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.adj.num_vertices() as VertexId
    }

    /// Iterator over every undirected edge, reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.adj
                .slice(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// `true` iff `(u, v)` is an edge. Probes the smaller adjacency list.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let n = self.adj.num_vertices();
        if u as usize >= n || v as usize >= n {
            return false;
        }
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj.slice(probe).contains(&target)
    }

    /// Inserts the undirected edge `(u, v)`.
    ///
    /// Errors on self loops, out-of-range endpoints, and duplicates; the
    /// graph is unchanged on error.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), EdgeListError> {
        if u == v {
            return Err(EdgeListError::SelfLoop(u));
        }
        let n = self.adj.num_vertices() as VertexId;
        if u >= n {
            return Err(EdgeListError::UnknownVertex(u));
        }
        if v >= n {
            return Err(EdgeListError::UnknownVertex(v));
        }
        if self.has_edge(u, v) {
            return Err(EdgeListError::Duplicate(u, v));
        }
        self.insert_edge_unchecked(u, v);
        Ok(())
    }

    /// Inserts `(u, v)` without the simple-graph checks.
    ///
    /// The maintenance drivers use this after they have already consulted
    /// [`DynamicGraph::has_edge`]; keeping the probe out of the mutation
    /// avoids paying it twice.
    #[inline]
    pub fn insert_edge_unchecked(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(u != v);
        debug_assert!(!self.has_edge(u, v));
        self.adj.push(u, v);
        self.adj.push(v, u);
        self.m += 1;
    }

    /// Removes the undirected edge `(u, v)`; `Err` if it was not present.
    ///
    /// Removal leaves relocation holes in the adjacency arena and **never**
    /// compacts on its own: callers schedule compaction explicitly through
    /// [`maintain_adjacency`][Self::maintain_adjacency] at their batch
    /// boundaries (the maintenance engines do this once per update batch),
    /// so removal-heavy streams see no mid-batch latency spikes.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), EdgeListError> {
        let n = self.adj.num_vertices();
        if u as usize >= n || v as usize >= n {
            return Err(EdgeListError::Missing(u, v));
        }
        let Some(pu) = self.adj.position(u, v) else {
            return Err(EdgeListError::Missing(u, v));
        };
        let pv = self.adj.position(v, u).expect("adjacency symmetric");
        self.adj.swap_remove(u, pu);
        self.adj.swap_remove(v, pv);
        self.m -= 1;
        Ok(())
    }

    /// Pre-sizes `v`'s adjacency slot for `additional` more neighbours,
    /// so the upcoming [`insert_edge_unchecked`][Self::insert_edge_unchecked]
    /// calls relocate at most once. Batch writers call this with per-vertex
    /// degree deltas before applying an edge batch.
    #[inline]
    pub fn reserve_neighbors(&mut self, v: VertexId, additional: usize) {
        self.adj.reserve(v, additional);
    }

    /// Rebuilds adjacency tight-packed in vertex order (CSR layout),
    /// dropping relocation holes and restoring scan locality.
    pub fn compact_adjacency(&mut self) {
        self.adj.compact();
    }

    /// The adjacency compaction policy hook: compacts when holes exceed
    /// `max_hole_ratio * live + slack` backing entries (see
    /// [`AdjArena::maintain`]). Returns whether a compaction ran. Call at
    /// batch boundaries; [`DEFAULT_MAX_HOLE_RATIO`] matches the historical
    /// amortised policy.
    pub fn maintain_adjacency(&mut self, max_hole_ratio: f64) -> bool {
        self.adj.maintain(max_hole_ratio)
    }

    /// Number of adjacency compactions over this graph's lifetime
    /// (diagnostics; tests assert one per removal batch at most).
    pub fn adjacency_compactions(&self) -> u64 {
        self.adj.compactions()
    }

    /// `(live half-edges, backing-buffer entries)` of the adjacency
    /// arena — the difference is relocation holes (diagnostics).
    pub fn adjacency_footprint(&self) -> (usize, usize) {
        (self.adj.half_edges(), self.adj.backing_len())
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Degrees of all vertices as a fresh `Vec` (the seed snapshot for
    /// peeling decompositions and atomic degree views).
    pub fn degree_vec(&self) -> Vec<u32> {
        self.vertices().map(|v| self.degree(v) as u32).collect()
    }

    /// Average degree `2m / n` (0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.m as f64 / self.num_vertices() as f64
        }
    }

    /// Sum of degrees, i.e. `2m`.
    pub fn degree_sum(&self) -> usize {
        2 * self.m
    }

    /// Collects the edge list (each edge once, `u < v`). Useful for
    /// snapshotting a graph before replaying update streams.
    pub fn edge_vec(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.m);
        out.extend(self.edges());
        out
    }

    /// Verifies internal consistency (symmetry, no loops, no duplicates,
    /// correct edge count). Intended for tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.adj.check()?;
        let mut half_edges = 0usize;
        for u in self.vertices() {
            let nbrs = self.neighbors(u);
            half_edges += nbrs.len();
            let mut seen = crate::hash::FxHashSet::default();
            for &v in nbrs {
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if v as usize >= self.adj.num_vertices() {
                    return Err(format!("dangling neighbour {v} of {u}"));
                }
                if !seen.insert(v) {
                    return Err(format!("duplicate neighbour {v} of {u}"));
                }
                if !self.adj.slice(v).contains(&u) {
                    return Err(format!("asymmetric edge ({u}, {v})"));
                }
            }
        }
        if half_edges != 2 * self.m {
            return Err(format!(
                "edge count mismatch: m = {}, half-edge sum = {half_edges}",
                self.m
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for DynamicGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DynamicGraph {{ n: {}, m: {} }}",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Packs an undirected edge into a canonical `u64` key (`min << 32 | max`),
/// handy for hash-set based edge dedup in generators and samplers.
#[inline]
pub fn edge_key(u: VertexId, v: VertexId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`edge_key`].
#[inline]
pub fn key_edge(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn insert_and_query() {
        let mut g = DynamicGraph::with_vertices(5);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(2, 0).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(3, 4));
        g.check_consistency().unwrap();
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut g = DynamicGraph::with_vertices(3);
        assert_eq!(g.insert_edge(1, 1), Err(EdgeListError::SelfLoop(1)));
        g.insert_edge(0, 1).unwrap();
        assert_eq!(g.insert_edge(1, 0), Err(EdgeListError::Duplicate(1, 0)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut g = DynamicGraph::with_vertices(2);
        assert_eq!(g.insert_edge(0, 5), Err(EdgeListError::UnknownVertex(5)));
        assert_eq!(g.insert_edge(9, 0), Err(EdgeListError::UnknownVertex(9)));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = DynamicGraph::with_vertices(4);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(0, 2).unwrap();
        g.insert_edge(0, 3).unwrap();
        g.remove_edge(2, 0).unwrap();
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.remove_edge(0, 2), Err(EdgeListError::Missing(0, 2)));
        g.check_consistency().unwrap();
    }

    #[test]
    fn from_edges_dedups_and_grows() {
        let g = DynamicGraph::from_edges(vec![(0, 1), (1, 0), (1, 1), (7, 2)]);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(2, 7));
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut g = DynamicGraph::with_vertices(4);
        g.insert_edge(3, 1).unwrap();
        g.insert_edge(0, 2).unwrap();
        let mut es = g.edge_vec();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn add_vertex_extends_range() {
        let mut g = DynamicGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        assert_eq!((a, b), (0, 1));
        g.insert_edge(a, b).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn ensure_vertex_is_idempotent() {
        let mut g = DynamicGraph::new();
        g.ensure_vertex(3);
        g.ensure_vertex(1);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn edge_key_roundtrip() {
        assert_eq!(edge_key(7, 3), edge_key(3, 7));
        assert_eq!(key_edge(edge_key(3, 7)), (3, 7));
        assert_ne!(edge_key(1, 2), edge_key(1, 3));
    }

    #[test]
    fn removal_never_compacts_implicitly() {
        // Build enough relocation churn that the old per-remove policy
        // would have compacted, then check removal leaves the holes alone
        // until maintain_adjacency is invoked.
        let mut g = DynamicGraph::with_vertices(200);
        for u in 0..200u32 {
            for v in 0..200u32 {
                if u < v {
                    g.insert_edge_unchecked(u, v);
                }
            }
        }
        for u in 0..200u32 {
            for v in 0..200u32 {
                if u < v && (u + v) % 20 != 0 {
                    g.remove_edge(u, v).unwrap();
                }
            }
        }
        assert_eq!(g.adjacency_compactions(), 0);
        let (live, backing) = g.adjacency_footprint();
        assert!(backing > 2 * live, "test graph must actually have holes");
        assert!(g.maintain_adjacency(DEFAULT_MAX_HOLE_RATIO));
        assert_eq!(g.adjacency_compactions(), 1);
        let (live, backing) = g.adjacency_footprint();
        assert_eq!(live, backing);
        g.check_consistency().unwrap();
    }

    #[test]
    fn degree_sum_is_twice_m() {
        let mut g = DynamicGraph::with_vertices(10);
        for i in 0..9 {
            g.insert_edge(i, i + 1).unwrap();
        }
        assert_eq!(g.degree_sum(), 18);
        assert!((g.avg_degree() - 1.8).abs() < 1e-12);
    }
}
