//! Zero-copy binary CSR: the `KCSR` on-disk format and a mapped view.
//!
//! [`save_csr`] writes a [`CsrGraph`] as one flat little-endian buffer;
//! [`load_csr_mapped`] reads it back with a **single** buffer read and
//! validates it in place — no per-row parsing, no re-allocation, no
//! intermediate `DynamicGraph`. The result, [`MappedCsr`], serves the
//! peel-path accessors (`degree`, `for_each_neighbor`, `degree_vec`)
//! straight out of the raw bytes, so a decomposition can run over a
//! file-sized graph without ever materialising a second copy.
//!
//! `MappedCsr` is generic over any `AsRef<[u8]>` byte source. Today the
//! only source is a heap buffer from `read_to_end`; the generic seam is
//! exactly where a real `mmap`-backed buffer would plug in (an
//! `Mmap` type derefs to `[u8]`), without touching the accessors or the
//! validator.
//!
//! ## Format (version 1)
//!
//! | field      | type        | notes                                   |
//! |------------|-------------|-----------------------------------------|
//! | magic      | `b"KCSR"`   |                                         |
//! | version    | `u32` LE    | 1                                       |
//! | n          | `u64` LE    | vertex count                            |
//! | arcs       | `u64` LE    | directed arc count (2·edges)            |
//! | max_degree | `u32` LE    | cached maximum degree                   |
//! | reserved   | `u32` LE    | 0                                       |
//! | offsets    | `(n+1)·u32` | element offsets, monotone, `[0] == 0`   |
//! | targets    | `arcs·u32`  | row-sorted neighbour ids, each `< n`    |
//!
//! All integers little-endian; `u32` fields are naturally aligned only
//! by accident, so the accessors decode with `u32::from_le_bytes` and
//! never reinterpret the buffer as `&[u32]` — correct on any alignment
//! and endianness.

use crate::csr::CsrGraph;
use crate::graph::VertexId;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"KCSR";
const VERSION: u32 = 1;
const HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 4 + 4;

/// Validation failure while opening a `KCSR` buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrLoadError {
    /// Buffer too small for the header or the promised arrays.
    Truncated { expected: usize, actual: usize },
    /// Magic bytes did not match `KCSR`.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Offsets not monotone, not starting at 0, or final offset ≠ arcs.
    BadOffsets { vertex: usize },
    /// A neighbour id out of range.
    BadTarget { index: usize, value: u32 },
    /// Header counts that cannot describe a real buffer: `n` past the
    /// `u32` vertex-id space, or array extents overflowing `usize`.
    /// Distinct from [`CsrLoadError::Truncated`] because the expected
    /// size itself is not representable.
    TooLarge { n: u64, arcs: u64 },
}

impl std::fmt::Display for CsrLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrLoadError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated KCSR buffer: need {expected} bytes, have {actual}"
                )
            }
            CsrLoadError::BadMagic => write!(f, "not a KCSR buffer (bad magic)"),
            CsrLoadError::BadVersion(v) => write!(f, "unsupported KCSR version {v}"),
            CsrLoadError::BadOffsets { vertex } => {
                write!(f, "non-monotone or out-of-range offset at vertex {vertex}")
            }
            CsrLoadError::BadTarget { index, value } => {
                write!(f, "target {value} at arc {index} out of range")
            }
            CsrLoadError::TooLarge { n, arcs } => {
                write!(f, "header counts unrepresentable: n={n}, arcs={arcs}")
            }
        }
    }
}

impl std::error::Error for CsrLoadError {}

/// A CSR graph served directly from a validated byte buffer.
///
/// Generic over the byte source (`Vec<u8>` today; an mmap type derefing
/// to `[u8]` later). Offsets/targets are decoded per access with
/// `from_le_bytes` — alignment-agnostic, and on x86 the decode compiles
/// to a plain load.
#[derive(Debug)]
pub struct MappedCsr<B: AsRef<[u8]>> {
    buf: B,
    n: usize,
    arcs: usize,
    max_degree: u32,
    offsets_at: usize,
    targets_at: usize,
}

#[inline]
fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds pre-validated"))
}

impl<B: AsRef<[u8]>> MappedCsr<B> {
    /// Validates `buf` as a `KCSR` image and wraps it. The whole buffer
    /// is checked up front (header sanity, offset monotonicity, target
    /// ranges) so the accessors can skip per-call checks.
    pub fn from_bytes(buf: B) -> Result<Self, CsrLoadError> {
        let b = buf.as_ref();
        if b.len() < HEADER_BYTES {
            return Err(CsrLoadError::Truncated {
                expected: HEADER_BYTES,
                actual: b.len(),
            });
        }
        if &b[..4] != MAGIC {
            return Err(CsrLoadError::BadMagic);
        }
        let version = read_u32(b, 4);
        if version != VERSION {
            return Err(CsrLoadError::BadVersion(version));
        }
        let n_raw = u64::from_le_bytes(b[8..16].try_into().unwrap());
        let arcs_raw = u64::from_le_bytes(b[16..24].try_into().unwrap());
        let max_degree = read_u32(b, 24);
        // A hostile or bit-flipped header can carry counts whose array
        // extents overflow `usize` — every size computation below is
        // checked so corruption surfaces as an error, never as wrapped
        // arithmetic that could alias the arrays over each other.
        let too_large = CsrLoadError::TooLarge {
            n: n_raw,
            arcs: arcs_raw,
        };
        if n_raw > u32::MAX as u64 {
            // Vertex ids are u32: a bigger universe can never validate.
            return Err(too_large);
        }
        let n = n_raw as usize;
        let arcs = usize::try_from(arcs_raw).map_err(|_| too_large)?;
        let offsets_at = HEADER_BYTES;
        let targets_at = n
            .checked_add(1)
            .and_then(|rows| rows.checked_mul(4))
            .and_then(|bytes| bytes.checked_add(offsets_at))
            .ok_or(too_large)?;
        let expected = arcs
            .checked_mul(4)
            .and_then(|bytes| bytes.checked_add(targets_at))
            .ok_or(too_large)?;
        if b.len() < expected {
            return Err(CsrLoadError::Truncated {
                expected,
                actual: b.len(),
            });
        }
        // In-place validation: offsets monotone from 0 to arcs…
        let mut prev = read_u32(b, offsets_at);
        if prev != 0 {
            return Err(CsrLoadError::BadOffsets { vertex: 0 });
        }
        for v in 1..=n {
            let o = read_u32(b, offsets_at + 4 * v);
            if o < prev || o as usize > arcs {
                return Err(CsrLoadError::BadOffsets { vertex: v });
            }
            prev = o;
        }
        if prev as usize != arcs {
            return Err(CsrLoadError::BadOffsets { vertex: n });
        }
        // …and every target in range.
        for i in 0..arcs {
            let t = read_u32(b, targets_at + 4 * i);
            if t as usize >= n {
                return Err(CsrLoadError::BadTarget { index: i, value: t });
            }
        }
        Ok(MappedCsr {
            buf,
            n,
            arcs,
            max_degree,
            offsets_at,
            targets_at,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.arcs / 2
    }

    /// Maximum degree (from the header, written at save time).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    #[inline]
    fn offset(&self, v: usize) -> usize {
        read_u32(self.buf.as_ref(), self.offsets_at + 4 * v) as usize
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offset(v as usize + 1) - self.offset(v as usize)
    }

    /// Calls `f` for every neighbour of `v`, in row order (ascending —
    /// rows are sorted at save time).
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let b = self.buf.as_ref();
        let (s, e) = (self.offset(v as usize), self.offset(v as usize + 1));
        for i in s..e {
            f(read_u32(b, self.targets_at + 4 * i));
        }
    }

    /// Hints the prefetcher at row `v`'s bytes (no-op off x86_64).
    #[inline]
    pub fn prefetch_row(&self, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        {
            let at = self.targets_at + 4 * self.offset(v as usize);
            let b = self.buf.as_ref();
            if at < b.len() {
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        b.as_ptr().add(at) as *const i8,
                        core::arch::x86_64::_MM_HINT_T0,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = v;
        }
    }

    /// Owned per-vertex degrees (the peel seed).
    pub fn degree_vec(&self) -> Vec<u32> {
        let b = self.buf.as_ref();
        let mut out = Vec::with_capacity(self.n);
        let mut prev = 0u32;
        for v in 1..=self.n {
            let o = read_u32(b, self.offsets_at + 4 * v);
            out.push(o - prev);
            prev = o;
        }
        out
    }

    /// Materialises an owned plain-layout [`CsrGraph`] (one pass, one
    /// allocation per array) for callers that need borrowed row slices.
    pub fn to_csr(&self) -> CsrGraph {
        let b = self.buf.as_ref();
        let mut offsets = Vec::with_capacity(self.n + 1);
        for v in 0..=self.n {
            offsets.push(read_u32(b, self.offsets_at + 4 * v));
        }
        let mut targets = Vec::with_capacity(self.arcs);
        for i in 0..self.arcs {
            targets.push(read_u32(b, self.targets_at + 4 * i));
        }
        CsrGraph::from_plain_parts(offsets, targets)
    }
}

/// Writes `csr` to `path` in the `KCSR` format (any row layout — rows
/// are written plain).
pub fn save_csr<P: AsRef<Path>>(csr: &CsrGraph, path: P) -> io::Result<()> {
    let n = csr.num_vertices();
    let arcs = 2 * csr.num_edges();
    let mut buf = Vec::with_capacity(HEADER_BYTES + 4 * (n + 1) + 4 * arcs);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(arcs as u64).to_le_bytes());
    buf.extend_from_slice(&(csr.max_degree() as u32).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    let mut total = 0u32;
    buf.extend_from_slice(&total.to_le_bytes());
    for &d in csr.degrees() {
        total += d;
        buf.extend_from_slice(&total.to_le_bytes());
    }
    for v in 0..n as VertexId {
        csr.for_each_neighbor(v, |w| buf.extend_from_slice(&w.to_le_bytes()));
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)
}

/// Loads a `KCSR` file as a [`MappedCsr`] with one buffer read and
/// in-place validation — the zero-copy load path.
pub fn load_csr_mapped<P: AsRef<Path>>(path: P) -> io::Result<MappedCsr<Vec<u8>>> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    MappedCsr::from_bytes(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrLayout;
    use crate::fixtures;

    fn roundtrip(g: &crate::DynamicGraph) -> (CsrGraph, MappedCsr<Vec<u8>>) {
        let csr = CsrGraph::from(g);
        let dir = std::env::temp_dir().join("kcore_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("g_{}_{}.kcsr", g.num_vertices(), g.num_edges()));
        save_csr(&csr, &path).unwrap();
        let mapped = load_csr_mapped(&path).unwrap();
        std::fs::remove_file(path).ok();
        (csr, mapped)
    }

    #[test]
    fn mapped_mirrors_csr() {
        let g = fixtures::PaperGraph::small().graph;
        let (csr, mapped) = roundtrip(&g);
        assert_eq!(mapped.num_vertices(), csr.num_vertices());
        assert_eq!(mapped.num_edges(), csr.num_edges());
        assert_eq!(mapped.max_degree(), csr.max_degree());
        assert_eq!(mapped.degree_vec(), csr.degree_vec());
        for v in g.vertices() {
            assert_eq!(mapped.degree(v), csr.degree(v));
            let mut row = Vec::new();
            mapped.for_each_neighbor(v, |w| row.push(w));
            assert_eq!(row, csr.neighbors(v));
        }
        let back = mapped.to_csr();
        for v in g.vertices() {
            assert_eq!(back.neighbors(v), csr.neighbors(v));
        }
        assert_eq!(back.max_degree(), csr.max_degree());
    }

    #[test]
    fn delta_source_saves_plain_rows() {
        let g = fixtures::petersen();
        let delta = CsrGraph::with_layout(&g, CsrLayout::Delta);
        let dir = std::env::temp_dir().join("kcore_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("petersen_delta.kcsr");
        save_csr(&delta, &path).unwrap();
        let mapped = load_csr_mapped(&path).unwrap();
        std::fs::remove_file(path).ok();
        let plain = CsrGraph::from(&g);
        for v in g.vertices() {
            let mut row = Vec::new();
            mapped.for_each_neighbor(v, |w| row.push(w));
            assert_eq!(row, plain.neighbors(v));
        }
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = crate::DynamicGraph::with_vertices(4);
        let (_, mapped) = roundtrip(&g);
        assert_eq!(mapped.num_vertices(), 4);
        assert_eq!(mapped.num_edges(), 0);
        assert_eq!(mapped.degree(3), 0);
    }

    #[test]
    fn rejects_corruption() {
        let g = fixtures::petersen();
        let csr = CsrGraph::from(&g);
        let dir = std::env::temp_dir().join("kcore_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.kcsr");
        save_csr(&csr, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).ok();

        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            MappedCsr::from_bytes(bad).unwrap_err(),
            CsrLoadError::BadMagic
        );

        // bad version
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            MappedCsr::from_bytes(bad).unwrap_err(),
            CsrLoadError::BadVersion(99)
        );

        // truncated body
        let bad = good[..good.len() - 3].to_vec();
        assert!(matches!(
            MappedCsr::from_bytes(bad).unwrap_err(),
            CsrLoadError::Truncated { .. }
        ));

        // non-monotone offsets: swap offset[1] to something huge
        let mut bad = good.clone();
        let at = HEADER_BYTES + 4;
        bad[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(bad).unwrap_err(),
            CsrLoadError::BadOffsets { .. }
        ));

        // out-of-range target
        let mut bad = good.clone();
        let targets_at = HEADER_BYTES + 4 * (csr.num_vertices() + 1);
        bad[targets_at..targets_at + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(bad).unwrap_err(),
            CsrLoadError::BadTarget { .. }
        ));

        // the pristine buffer still loads
        assert!(MappedCsr::from_bytes(good).is_ok());
    }

    /// Fuzz-style sweep: flipping any single byte of a valid image (three
    /// masks per position) must never panic the validator — and when the
    /// flip happens to still validate (e.g. a target moved to another
    /// in-range id, or the unvalidated cached `max_degree`), every
    /// accessor must stay in bounds and internally consistent.
    #[test]
    fn fault_byte_flip_sweep_never_panics_or_goes_out_of_bounds() {
        let g = fixtures::petersen();
        let csr = CsrGraph::from(&g);
        let dir = std::env::temp_dir().join("kcore_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip_sweep.kcsr");
        save_csr(&csr, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).ok();

        let mut accepted = 0usize;
        for at in 0..good.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = good.clone();
                bad[at] ^= mask;
                let Ok(mapped) = MappedCsr::from_bytes(bad) else {
                    continue;
                };
                accepted += 1;
                // Whatever validated must be fully traversable: degrees
                // consistent with rows, every id in range, arc count
                // conserved.
                let n = mapped.num_vertices();
                let degs = mapped.degree_vec();
                assert_eq!(degs.len(), n);
                let mut arcs = 0usize;
                for v in 0..n as u32 {
                    let mut row = 0usize;
                    mapped.for_each_neighbor(v, |w| {
                        assert!((w as usize) < n);
                        row += 1;
                    });
                    assert_eq!(row, mapped.degree(v));
                    assert_eq!(row, degs[v as usize] as usize);
                    arcs += row;
                }
                assert_eq!(arcs, 2 * mapped.num_edges());
            }
        }
        // Some flips survive validation by construction (target moved to
        // a different valid id, cached max_degree, …) — the sweep is
        // only meaningful if both outcomes occur.
        assert!(accepted > 0, "sweep never exercised the accept path");
    }

    /// Extreme header counts must be rejected as errors — never wrap the
    /// size arithmetic, never attempt a giant allocation.
    #[test]
    fn fault_hostile_header_counts_are_rejected() {
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        header.extend_from_slice(&u64::MAX.to_le_bytes()); // arcs
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(header.clone()).unwrap_err(),
            CsrLoadError::TooLarge { .. }
        ));

        // n just past the vertex-id space.
        let mut h = header.clone();
        h[8..16].copy_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
        h[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(h).unwrap_err(),
            CsrLoadError::TooLarge { .. }
        ));

        // n * 4 overflows usize on 64-bit only via u64::MAX (caught
        // above); a merely-huge but representable extent reports
        // Truncated with the honest expected size.
        let mut h = header.clone();
        h[8..16].copy_from_slice(&1_000_000u64.to_le_bytes());
        h[16..24].copy_from_slice(&1_000_000u64.to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(h).unwrap_err(),
            CsrLoadError::Truncated { .. }
        ));

        // arcs alone unrepresentable.
        let mut h = header;
        h[8..16].copy_from_slice(&8u64.to_le_bytes());
        h[16..24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            MappedCsr::from_bytes(h).unwrap_err(),
            CsrLoadError::TooLarge { .. }
        ));
    }
}
