//! Shard assignment and the cross-shard boundary table.
//!
//! A sharded deployment splits edge ownership across N per-shard engines:
//! shard `s` stores every edge with at least one endpoint owned by `s`,
//! so a cross-shard edge is *mirrored* into both owners' graphs — each
//! side sees the remote endpoint's degree contribution locally, which is
//! what keeps per-shard skip semantics (duplicate / missing / self-loop /
//! out-of-range) bit-identical to the single-engine model.
//!
//! Two pieces live here, beneath the router:
//!
//! * [`ShardMap`] — a total, deterministic assignment of dense vertex ids
//!   to shards. [`HashShardMap`] (default) spreads arbitrary universes via
//!   a Fibonacci multiplicative hash; [`RangeShardMap`] carves a dense
//!   `0..n` universe into contiguous, ±1-balanced ranges.
//! * [`BoundaryTable`] — the set of live cross-shard edges plus the
//!   per-vertex mirrored-degree counts and per-shard incidence tallies
//!   the merge pass reads. [`BoundaryTable::validate`] recounts every
//!   derived tally from the edge set and is wired into the router's
//!   `validate()`.

use crate::graph::{edge_key, key_edge, DynamicGraph, VertexId};
use crate::hash::FxHashMap;

/// Total, deterministic vertex → shard assignment.
///
/// `owner` must return a value `< shards()` for **every** `u32`, even ids
/// outside the deployed universe: the router routes events before it can
/// know whether an endpoint is in range, and out-of-range events must be
/// routed somewhere so the owning engine can skip them exactly like the
/// single-engine model does.
pub trait ShardMap: Send + Sync {
    /// Number of shards (`>= 1`).
    fn shards(&self) -> usize;
    /// Owning shard of `v`; always `< self.shards()`.
    fn owner(&self, v: VertexId) -> usize;
}

/// Default assignment: Fibonacci multiplicative hash, then modulo.
///
/// Deterministic across runs (no per-process seed), total over `u32`,
/// and well-spread for both random and contiguous id universes — the
/// multiplier is the 32-bit golden-ratio constant, so consecutive ids
/// land far apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashShardMap {
    shards: usize,
}

impl HashShardMap {
    /// A hash map over `shards` shards (`>= 1`).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        HashShardMap { shards }
    }
}

impl ShardMap for HashShardMap {
    fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    fn owner(&self, v: VertexId) -> usize {
        // Fibonacci hashing: multiply by ⌊2^32/φ⌋ and keep the high bits
        // (the well-mixed ones) before reducing modulo the shard count.
        let h = v.wrapping_mul(0x9E37_79B9);
        ((h >> 16) as usize) % self.shards
    }
}

/// Contiguous range partitioning of a dense `0..n` universe.
///
/// Ranges are ±1-balanced by construction: the first `n % shards` shards
/// own `⌈n/shards⌉` ids each, the rest `⌊n/shards⌋`. Ids at or past `n`
/// fall into the last shard so the map stays total over `u32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeShardMap {
    /// `starts[s]` is the first id owned by shard `s`; `starts` is
    /// strictly increasing with `starts[0] == 0`.
    starts: Vec<VertexId>,
}

impl RangeShardMap {
    /// Balanced ranges for the dense universe `0..n` over `shards` shards.
    pub fn for_universe(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            n >= shards || n == 0,
            "universe of {n} ids cannot feed {shards} non-empty ranges"
        );
        let base = n / shards;
        let extra = n % shards;
        let mut starts = Vec::with_capacity(shards);
        let mut at = 0usize;
        for s in 0..shards {
            starts.push(at as VertexId);
            at += base + usize::from(s < extra);
        }
        RangeShardMap { starts }
    }

    /// First id owned by shard `s`.
    pub fn start_of(&self, s: usize) -> VertexId {
        self.starts[s]
    }
}

impl ShardMap for RangeShardMap {
    fn shards(&self) -> usize {
        self.starts.len()
    }

    #[inline]
    fn owner(&self, v: VertexId) -> usize {
        // Index of the last start <= v; ids past the universe end fall
        // into the final range, keeping the map total.
        self.starts.partition_point(|&s| s <= v) - 1
    }
}

/// Live cross-shard edges plus the derived tallies the merge pass reads.
///
/// For each cross-shard edge `(u, v)` the table records the pair of
/// owners and bumps `mirror_degree` on **both** endpoints — the count of
/// incident edges each side mirrors from a remote shard — and the
/// per-shard boundary-edge tallies on both owners.
#[derive(Debug, Clone, Default)]
pub struct BoundaryTable {
    /// `edge_key(u, v)` → `(owner(u_min), owner(u_max))` for live
    /// cross-shard edges (key endpoints canonically ordered `u < v`).
    edges: FxHashMap<u64, (u32, u32)>,
    /// Per-vertex count of incident cross-shard edges.
    mirror_deg: Vec<u32>,
    /// Per-shard count of incident cross-shard edges.
    per_shard: Vec<u64>,
}

impl BoundaryTable {
    /// An empty table for `shards` shards over `n` vertices.
    pub fn new(shards: usize, n: usize) -> Self {
        BoundaryTable {
            edges: FxHashMap::default(),
            mirror_deg: vec![0; n],
            per_shard: vec![0; shards],
        }
    }

    /// Number of live cross-shard edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no cross-shard edge is live.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// True when `(u, v)` is a live cross-shard edge.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains_key(&edge_key(u, v))
    }

    /// Count of cross-shard edges incident to `v` (the degree
    /// contribution `v`'s shard mirrors from remote shards).
    pub fn mirror_degree(&self, v: VertexId) -> u32 {
        self.mirror_deg.get(v as usize).copied().unwrap_or(0)
    }

    /// Count of cross-shard edges incident to shard `s`.
    pub fn shard_boundary_edges(&self, s: usize) -> u64 {
        self.per_shard[s]
    }

    /// Records an applied cross-shard insert. `ou`/`ov` are the owners of
    /// `u`/`v` and must differ. No-op protection is the caller's job —
    /// the router only notes *applied* operations.
    pub fn note(&mut self, u: VertexId, v: VertexId, ou: usize, ov: usize) {
        debug_assert_ne!(ou, ov, "({u},{v}) is not a cross-shard edge");
        // Store owners in the canonical (min-endpoint, max-endpoint) order
        // that `edge_key` uses, so `validate` can re-derive them.
        let owners = if u < v {
            (ou as u32, ov as u32)
        } else {
            (ov as u32, ou as u32)
        };
        let prev = self.edges.insert(edge_key(u, v), owners);
        debug_assert!(prev.is_none(), "({u},{v}) noted twice");
        self.mirror_deg[u as usize] += 1;
        self.mirror_deg[v as usize] += 1;
        self.per_shard[ou] += 1;
        self.per_shard[ov] += 1;
    }

    /// Records an applied cross-shard removal; returns whether the edge
    /// was live.
    pub fn forget(&mut self, u: VertexId, v: VertexId) -> bool {
        match self.edges.remove(&edge_key(u, v)) {
            Some((oa, ob)) => {
                self.mirror_deg[u as usize] -= 1;
                self.mirror_deg[v as usize] -= 1;
                self.per_shard[oa as usize] -= 1;
                self.per_shard[ob as usize] -= 1;
                true
            }
            None => false,
        }
    }

    /// Grows the per-vertex table to cover `n` vertices.
    pub fn grow(&mut self, n: usize) {
        if n > self.mirror_deg.len() {
            self.mirror_deg.resize(n, 0);
        }
    }

    /// Invariant check: every derived tally recounted from the edge set,
    /// every recorded owner consistent with `map`, and (when a union
    /// graph is supplied) the edge set exactly the cross-shard subset of
    /// the live graph.
    pub fn validate(&self, map: &dyn ShardMap, union: Option<&DynamicGraph>) -> Result<(), String> {
        if self.per_shard.len() != map.shards() {
            return Err(format!(
                "table built for {} shards, map has {}",
                self.per_shard.len(),
                map.shards()
            ));
        }
        let mut mirror = vec![0u32; self.mirror_deg.len()];
        let mut per_shard = vec![0u64; self.per_shard.len()];
        for (&key, &(oa, ob)) in &self.edges {
            let (a, b) = key_edge(key);
            if a >= b {
                return Err(format!("non-canonical boundary key ({a},{b})"));
            }
            let (ma, mb) = (map.owner(a), map.owner(b));
            if ma == mb {
                return Err(format!("({a},{b}) recorded but both owned by shard {ma}"));
            }
            if (ma as u32, mb as u32) != (oa, ob) {
                return Err(format!(
                    "({a},{b}) records owners ({oa},{ob}), map says ({ma},{mb})"
                ));
            }
            mirror[a as usize] += 1;
            mirror[b as usize] += 1;
            per_shard[ma] += 1;
            per_shard[mb] += 1;
        }
        if mirror != self.mirror_deg {
            return Err("mirror-degree counts diverge from the edge set".into());
        }
        if per_shard != self.per_shard {
            return Err("per-shard tallies diverge from the edge set".into());
        }
        if let Some(g) = union {
            let mut live = 0usize;
            for (u, v) in g.edges() {
                if map.owner(u) != map.owner(v) {
                    live += 1;
                    if !self.contains(u, v) {
                        return Err(format!("live cross-shard edge ({u},{v}) missing"));
                    }
                }
            }
            if live != self.edges.len() {
                return Err(format!(
                    "table holds {} edges, graph has {} cross-shard edges",
                    self.edges.len(),
                    live
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_is_total_and_deterministic() {
        let m = HashShardMap::new(4);
        assert_eq!(m.shards(), 4);
        for v in [0u32, 1, 17, 1024, u32::MAX] {
            let o = m.owner(v);
            assert!(o < 4);
            assert_eq!(o, m.owner(v));
        }
    }

    #[test]
    fn hash_map_balances_contiguous_universe() {
        let m = HashShardMap::new(4);
        let mut loads = [0usize; 4];
        let n = 4096;
        for v in 0..n as u32 {
            loads[m.owner(v)] += 1;
        }
        let avg = n / 4;
        for (s, &l) in loads.iter().enumerate() {
            assert!(
                l > avg / 2 && l < avg * 2,
                "shard {s} holds {l} of {n} ids (avg {avg})"
            );
        }
    }

    #[test]
    fn range_map_is_balanced_by_construction() {
        for (n, shards) in [(10usize, 3usize), (4, 4), (1000, 7), (8, 1)] {
            let m = RangeShardMap::for_universe(n, shards);
            let mut loads = vec![0usize; shards];
            for v in 0..n as u32 {
                loads[m.owner(v)] += 1;
            }
            let (lo, hi) = (n / shards, n.div_ceil(shards));
            for &l in &loads {
                assert!(l == lo || l == hi, "range load {l} outside [{lo},{hi}]");
            }
            // Total past the universe end: last shard absorbs.
            assert_eq!(m.owner(u32::MAX), shards - 1);
        }
    }

    #[test]
    fn boundary_table_tracks_mirror_degrees() {
        let map = RangeShardMap::for_universe(6, 2); // 0..3 | 3..6
        let mut t = BoundaryTable::new(2, 6);
        t.note(1, 4, map.owner(1), map.owner(4));
        t.note(5, 2, map.owner(5), map.owner(2));
        assert_eq!(t.len(), 2);
        assert!(t.contains(4, 1));
        assert_eq!(t.mirror_degree(1), 1);
        assert_eq!(t.mirror_degree(2), 1);
        assert_eq!(t.shard_boundary_edges(0), 2);
        assert_eq!(t.shard_boundary_edges(1), 2);
        t.validate(&map, None).unwrap();
        assert!(t.forget(1, 4));
        assert!(!t.forget(1, 4));
        assert_eq!(t.mirror_degree(1), 0);
        t.validate(&map, None).unwrap();
    }

    #[test]
    fn boundary_validate_checks_against_union_graph() {
        let map = RangeShardMap::for_universe(4, 2);
        let mut g = DynamicGraph::with_vertices(4);
        g.insert_edge(0, 1).unwrap(); // local to shard 0
        g.insert_edge(1, 2).unwrap(); // cross
        let mut t = BoundaryTable::new(2, 4);
        t.note(1, 2, 0, 1);
        t.validate(&map, Some(&g)).unwrap();
        // A stale entry the graph no longer holds must be caught.
        t.note(0, 3, 0, 1);
        assert!(t.validate(&map, Some(&g)).is_err());
    }
}
