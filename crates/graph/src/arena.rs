//! A flat adjacency arena: every neighbour list lives in **one**
//! contiguous backing buffer.
//!
//! The per-vertex `Vec<Vec<VertexId>>` representation costs one heap
//! allocation per vertex and scatters neighbour lists across the heap —
//! and neighbour scanning is the inner loop of every core-maintenance
//! algorithm in this workspace. [`AdjArena`] replaces it with:
//!
//! * one backing `Vec<VertexId>` (`buf`) holding every neighbour list;
//! * per-vertex `(offset, len, cap)` slots into that buffer;
//! * **amortised-doubling growth**: a list that outgrows its slot is
//!   relocated to the end of the buffer with doubled capacity (the old
//!   slot becomes a hole);
//! * **CSR-style compaction on demand**: when holes exceed the live
//!   data, the buffer is rebuilt tight-packed in vertex order — which
//!   also restores perfect scan locality. Compaction is **never**
//!   triggered implicitly by a mutation: callers invoke
//!   [`AdjArena::maintain`] at their own batch boundaries, so a
//!   removal-heavy stream pays the `O(live)` rebuild once per batch
//!   instead of as a latency spike in the middle of one;
//! * **batch pre-reservation** ([`AdjArena::reserve`]): a caller that
//!   knows how many neighbours a vertex is about to gain can size the
//!   slot once, so the steady-state push path never allocates or
//!   relocates (the zero-per-edge-allocation guarantee the batched
//!   update engine relies on).
//!
//! Offsets are `u32`, capping the buffer at `2^32` half-edges (2 billion
//! undirected edges) — beyond the scale anything in this workspace
//! addresses, and half the per-slot metadata of `usize` offsets.

use crate::graph::VertexId;

/// Flat slack added to every [`AdjArena::maintain`] threshold so tiny
/// arenas never bother compacting.
const COMPACT_SLACK: usize = 4096;

/// Minimum slot capacity allocated on first growth.
const MIN_CAP: u32 = 4;

/// Flat adjacency storage: one contiguous buffer, per-vertex slices.
#[derive(Clone, Default)]
pub struct AdjArena {
    /// Backing storage for every neighbour list.
    buf: Vec<VertexId>,
    /// Per-vertex slot start in `buf`.
    off: Vec<u32>,
    /// Per-vertex live length.
    len: Vec<u32>,
    /// Per-vertex slot capacity (`len <= cap`).
    cap: Vec<u32>,
    /// Sum of `len` — the number of live half-edges.
    live: usize,
    /// Number of compactions performed so far (diagnostics; lets tests
    /// assert a removal batch compacts at most once).
    compactions: u64,
}

impl AdjArena {
    /// An empty arena with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with `n` empty neighbour lists.
    pub fn with_vertices(n: usize) -> Self {
        AdjArena {
            buf: Vec::new(),
            off: vec![0; n],
            len: vec![0; n],
            cap: vec![0; n],
            live: 0,
            compactions: 0,
        }
    }

    /// Number of vertices (slots).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.off.len()
    }

    /// Live half-edge count (sum of list lengths, i.e. `2m`).
    #[inline]
    pub fn half_edges(&self) -> usize {
        self.live
    }

    /// Total backing-buffer entries, live + holes (diagnostics).
    #[inline]
    pub fn backing_len(&self) -> usize {
        self.buf.len()
    }

    /// Appends one empty slot; returns its vertex id.
    pub fn push_vertex(&mut self) -> VertexId {
        let id = self.off.len() as VertexId;
        self.off.push(0);
        self.len.push(0);
        self.cap.push(0);
        id
    }

    /// Grows the vertex range so `v` is a valid slot.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        let need = v as usize + 1;
        if need > self.off.len() {
            self.off.resize(need, 0);
            self.len.resize(need, 0);
            self.cap.resize(need, 0);
        }
    }

    /// Neighbour list of `v`.
    #[inline]
    pub fn slice(&self, v: VertexId) -> &[VertexId] {
        let vi = v as usize;
        let o = self.off[vi] as usize;
        &self.buf[o..o + self.len[vi] as usize]
    }

    /// Mutable neighbour list of `v`.
    #[inline]
    pub fn slice_mut(&mut self, v: VertexId) -> &mut [VertexId] {
        let vi = v as usize;
        let o = self.off[vi] as usize;
        &mut self.buf[o..o + self.len[vi] as usize]
    }

    /// List length of `v`.
    #[inline]
    pub fn len_of(&self, v: VertexId) -> usize {
        self.len[v as usize] as usize
    }

    /// Spare capacity of `v`'s slot.
    #[inline]
    pub fn spare(&self, v: VertexId) -> usize {
        let vi = v as usize;
        (self.cap[vi] - self.len[vi]) as usize
    }

    /// Relocates `v`'s list to the end of the buffer with capacity
    /// `new_cap` (callers guarantee `new_cap >= len`).
    #[cold]
    fn relocate(&mut self, vi: usize, new_cap: u32) {
        debug_assert!(new_cap >= self.len[vi]);
        let old_off = self.off[vi] as usize;
        let l = self.len[vi] as usize;
        let new_off = self.buf.len();
        assert!(
            new_off + new_cap as usize <= u32::MAX as usize,
            "AdjArena backing buffer exceeds u32 offsets"
        );
        self.buf.extend_from_within(old_off..old_off + l);
        // Fill the headroom so `buf.len()` always covers every slot.
        self.buf.resize(new_off + new_cap as usize, 0);
        self.off[vi] = new_off as u32;
        self.cap[vi] = new_cap;
    }

    /// Ensures `v`'s slot can take `additional` more neighbours without
    /// relocating. One relocation at most — this is the batch
    /// pre-reservation hook.
    pub fn reserve(&mut self, v: VertexId, additional: usize) {
        let vi = v as usize;
        let need = self.len[vi] as u64 + additional as u64;
        assert!(
            need <= u32::MAX as u64,
            "AdjArena slot capacity exceeds u32 offsets"
        );
        if need > self.cap[vi] as u64 {
            self.relocate(vi, (need as u32).max(MIN_CAP));
        }
    }

    /// Appends `w` to `v`'s list (amortised `O(1)`; relocates with
    /// doubled capacity when the slot is full).
    #[inline]
    pub fn push(&mut self, v: VertexId, w: VertexId) {
        let vi = v as usize;
        if self.len[vi] == self.cap[vi] {
            let new_cap = (self.cap[vi] * 2).max(MIN_CAP);
            self.relocate(vi, new_cap);
        }
        let slot = self.off[vi] as usize + self.len[vi] as usize;
        self.buf[slot] = w;
        self.len[vi] += 1;
        self.live += 1;
    }

    /// Removes the element at `idx` of `v`'s list by swapping the last
    /// element into its place (`O(1)`, order not preserved).
    #[inline]
    pub fn swap_remove(&mut self, v: VertexId, idx: usize) -> VertexId {
        let vi = v as usize;
        let l = self.len[vi] as usize;
        debug_assert!(idx < l);
        let o = self.off[vi] as usize;
        let removed = self.buf[o + idx];
        self.buf[o + idx] = self.buf[o + l - 1];
        self.len[vi] -= 1;
        self.live -= 1;
        removed
    }

    /// Position of `w` in `v`'s list.
    #[inline]
    pub fn position(&self, v: VertexId, w: VertexId) -> Option<usize> {
        self.slice(v).iter().position(|&x| x == w)
    }

    /// The explicit compaction policy hook: compacts when the backing
    /// buffer exceeds `max_hole_ratio * live + slack` entries, i.e. when
    /// holes outweigh live data by the given factor. Returns whether a
    /// compaction ran.
    ///
    /// Mutations never compact on their own; batch writers call this once
    /// per batch (and single-edge engines once per update — the check is
    /// `O(1)`), which turns the `O(live)` rebuild from a mid-batch latency
    /// spike into a scheduled, amortised step.
    pub fn maintain(&mut self, max_hole_ratio: f64) -> bool {
        debug_assert!(max_hole_ratio >= 1.0, "ratio below 1.0 compacts always");
        if self.buf.len() as f64 > max_hole_ratio * self.live as f64 + COMPACT_SLACK as f64 {
            self.compact();
            return true;
        }
        false
    }

    /// Number of compactions performed over this arena's lifetime.
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Rebuilds the buffer tight-packed in vertex order (CSR layout):
    /// drops every hole and restores sequential-scan locality. `O(live)`.
    pub fn compact(&mut self) {
        let mut new_buf = Vec::with_capacity(self.live);
        for vi in 0..self.off.len() {
            let o = self.off[vi] as usize;
            let l = self.len[vi] as usize;
            self.off[vi] = new_buf.len() as u32;
            self.cap[vi] = l as u32;
            new_buf.extend_from_slice(&self.buf[o..o + l]);
        }
        self.buf = new_buf;
        self.compactions += 1;
    }

    /// Verifies slot invariants (tests / debug).
    pub fn check(&self) -> Result<(), String> {
        let n = self.off.len();
        if self.len.len() != n || self.cap.len() != n {
            return Err("slot vectors disagree on n".into());
        }
        let mut live = 0usize;
        for vi in 0..n {
            if self.len[vi] > self.cap[vi] {
                return Err(format!("len > cap at vertex {vi}"));
            }
            let end = self.off[vi] as usize + self.cap[vi] as usize;
            if end > self.buf.len() {
                return Err(format!("slot of vertex {vi} overruns the buffer"));
            }
            live += self.len[vi] as usize;
        }
        if live != self.live {
            return Err(format!(
                "live count mismatch: counted {live}, stored {}",
                self.live
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice_roundtrip() {
        let mut a = AdjArena::with_vertices(3);
        a.push(0, 5);
        a.push(1, 6);
        a.push(0, 7);
        a.push(2, 8);
        a.push(0, 9);
        assert_eq!(a.slice(0), &[5, 7, 9]);
        assert_eq!(a.slice(1), &[6]);
        assert_eq!(a.slice(2), &[8]);
        assert_eq!(a.half_edges(), 5);
        a.check().unwrap();
    }

    #[test]
    fn growth_relocates_and_preserves_content() {
        let mut a = AdjArena::with_vertices(2);
        for i in 0..100u32 {
            a.push(0, i);
            a.push(1, 1000 + i);
        }
        assert_eq!(a.slice(0), (0..100).collect::<Vec<_>>().as_slice());
        assert_eq!(a.slice(1), (1000..1100).collect::<Vec<_>>().as_slice());
        a.check().unwrap();
    }

    #[test]
    fn swap_remove_behaves_like_vec() {
        let mut a = AdjArena::with_vertices(1);
        for i in 0..5u32 {
            a.push(0, i);
        }
        let mut model = vec![0u32, 1, 2, 3, 4];
        assert_eq!(a.swap_remove(0, 1), model.swap_remove(1));
        assert_eq!(a.slice(0), model.as_slice());
        assert_eq!(a.swap_remove(0, 3), model.swap_remove(3));
        assert_eq!(a.slice(0), model.as_slice());
        a.check().unwrap();
    }

    #[test]
    fn reserve_prevents_relocation() {
        let mut a = AdjArena::with_vertices(2);
        a.push(0, 1);
        a.reserve(0, 50);
        let off_before = a.off[0];
        for i in 0..50u32 {
            a.push(0, i);
        }
        assert_eq!(a.off[0], off_before, "reserve should pre-size the slot");
        assert_eq!(a.len_of(0), 51);
        a.check().unwrap();
    }

    #[test]
    fn compact_drops_holes() {
        let mut a = AdjArena::with_vertices(8);
        for v in 0..8u32 {
            for i in 0..20u32 {
                a.push(v, i);
            }
        }
        let before: Vec<Vec<u32>> = (0..8).map(|v| a.slice(v).to_vec()).collect();
        assert!(a.backing_len() > a.half_edges());
        a.compact();
        assert_eq!(a.backing_len(), a.half_edges());
        for v in 0..8u32 {
            assert_eq!(a.slice(v), before[v as usize].as_slice());
        }
        a.check().unwrap();
    }

    #[test]
    fn maintain_compacts_only_past_the_ratio() {
        let mut a = AdjArena::with_vertices(64);
        // Repeated doubling leaves holes behind every relocation.
        for v in 0..64u32 {
            for i in 0..300u32 {
                a.push(v, i);
            }
        }
        // Trim most lists so holes vastly outweigh live data.
        for v in 0..64u32 {
            while a.len_of(v) > 2 {
                a.swap_remove(v, 0);
            }
        }
        assert_eq!(a.compactions(), 0, "no mutation may compact implicitly");
        // A huge ratio tolerates the holes…
        assert!(!a.maintain(1.0e6));
        assert_eq!(a.compactions(), 0);
        // …the default-ish ratio does not.
        assert!(a.maintain(2.0));
        assert_eq!(a.compactions(), 1);
        assert_eq!(a.backing_len(), a.half_edges());
        // Idempotent once tight.
        assert!(!a.maintain(2.0));
        assert_eq!(a.compactions(), 1);
        a.check().unwrap();
    }

    #[test]
    fn ensure_vertex_grows_slots() {
        let mut a = AdjArena::new();
        a.ensure_vertex(3);
        assert_eq!(a.num_vertices(), 4);
        a.push(3, 1);
        assert_eq!(a.slice(3), &[1]);
        a.check().unwrap();
    }

    #[test]
    fn empty_slices_are_fine() {
        let a = AdjArena::with_vertices(4);
        for v in 0..4u32 {
            assert!(a.slice(v).is_empty());
        }
    }
}
