//! Degree and size statistics used by Table I and the workload reports.

use crate::graph::DynamicGraph;

/// Summary statistics of a graph (the columns of the paper's Table I, minus
/// `max k`, which needs a core decomposition and therefore lives upstream).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

/// Computes [`GraphStats`] for a graph.
pub fn graph_stats(g: &DynamicGraph) -> GraphStats {
    GraphStats {
        n: g.num_vertices(),
        m: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree: g.max_degree(),
        isolated: g.vertices().filter(|&v| g.degree(v) == 0).count(),
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &DynamicGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Cumulative distribution over arbitrary per-vertex values: returns
/// `(threshold, fraction_of_vertices_with_value <= threshold)` pairs at
/// round thresholds `1, 2, 5, 10, 20, 50, …` up to the max value.
///
/// This is the presentation used by the paper's Fig 5 and Fig 10.
pub fn cumulative_distribution(values: &[usize]) -> Vec<(usize, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = values.iter().copied().max().unwrap_or(0);
    let mut thresholds = Vec::new();
    let mut t = 1usize;
    while t < max {
        for factor in [1usize, 2, 5] {
            let v = t * factor;
            if v <= max {
                thresholds.push(v);
            }
        }
        t *= 10;
    }
    thresholds.push(max);
    thresholds.dedup();
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    thresholds
        .into_iter()
        .map(|th| {
            let cnt = sorted.partition_point(|&x| x <= th);
            (th, cnt as f64 / n)
        })
        .collect()
}

/// Buckets a set of counts into the paper's Fig 1 bands:
/// `<=3`, `(3,10]`, `(10,100]`, `(100,1000]`, `>1000`; returns proportions.
pub fn fig1_buckets(values: &[usize]) -> [f64; 5] {
    let mut counts = [0usize; 5];
    for &v in values {
        let idx = if v <= 3 {
            0
        } else if v <= 10 {
            1
        } else if v <= 100 {
            2
        } else if v <= 1000 {
            3
        } else {
            4
        };
        counts[idx] += 1;
    }
    let total = values.len().max(1) as f64;
    let mut out = [0.0f64; 5];
    for i in 0..5 {
        out[i] = counts[i] as f64 / total;
    }
    out
}

/// Human-readable labels matching [`fig1_buckets`].
pub const FIG1_BUCKET_LABELS: [&str; 5] = ["<=3", ">3,<=10", ">10,<=100", ">100,<=1000", ">1000"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn stats_of_star() {
        let s = graph_stats(&fixtures::star(5));
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 5);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_of_path() {
        let h = degree_histogram(&fixtures::path(5));
        assert_eq!(h, vec![0, 2, 3]);
    }

    #[test]
    fn cumulative_distribution_reaches_one() {
        let values = vec![1, 1, 2, 3, 10, 100, 2500];
        let cd = cumulative_distribution(&values);
        let (last_t, last_f) = *cd.last().unwrap();
        assert_eq!(last_t, 2500);
        assert!((last_f - 1.0).abs() < 1e-12);
        // monotone non-decreasing
        for w in cd.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn cumulative_distribution_empty() {
        assert!(cumulative_distribution(&[]).is_empty());
    }

    #[test]
    fn fig1_bucket_assignment() {
        let b = fig1_buckets(&[1, 2, 3, 4, 10, 11, 100, 101, 1000, 1001]);
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((b[0] - 0.3).abs() < 1e-12);
        assert!((b[1] - 0.2).abs() < 1e-12);
        assert!((b[2] - 0.2).abs() < 1e-12);
        assert!((b[3] - 0.2).abs() < 1e-12);
        assert!((b[4] - 0.1).abs() < 1e-12);
    }
}
