//! A frozen CSR (compressed sparse row) snapshot of a graph.
//!
//! The mutable [`crate::DynamicGraph`] pays one heap allocation per
//! vertex; for *static* passes over large graphs (index construction,
//! the Fig 5 region analysis, offline decompositions) a CSR layout —
//! one offsets array plus one contiguous neighbour array — removes the
//! pointer chasing and roughly halves the memory. `kcore-decomp`
//! exposes a CSR-specialised decomposition; the `index_build` Criterion
//! bench quantifies the difference.

use crate::graph::{DynamicGraph, VertexId};

/// Immutable CSR graph. Build from a [`DynamicGraph`] via `From`.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    /// Maximum degree, computed once at freeze time — consumers that
    /// bucket by degree (every peeling decomposition) would otherwise
    /// rescan all `n` offsets on each call.
    max_degree: u32,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Maximum degree over all vertices (0 for an empty graph). Cached at
    /// freeze time: `O(1)`.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Degrees of all vertices as a fresh `Vec` (the seed snapshot for
    /// peeling decompositions and atomic degree views).
    pub fn degree_vec(&self) -> Vec<u32> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Binary-search membership probe (`O(log deg)` — neighbour lists
    /// are sorted).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// Thaws back into a mutable graph.
    pub fn to_dynamic(&self) -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for &w in self.neighbors(v) {
                if v < w {
                    g.insert_edge_unchecked(v, w);
                }
            }
        }
        g
    }
}

impl From<&DynamicGraph> for CsrGraph {
    fn from(g: &DynamicGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for v in 0..n as VertexId {
            total += g.degree(v) as u32;
            offsets.push(total);
        }
        let mut targets = vec![0 as VertexId; total as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for v in 0..n as VertexId {
            for &w in g.neighbors(v) {
                targets[cursor[v as usize] as usize] = w;
                cursor[v as usize] += 1;
            }
        }
        // sort each row for binary-search probes
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
        }
        let max_degree = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        CsrGraph {
            offsets,
            targets,
            max_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn csr_mirrors_dynamic() {
        let g = fixtures::PaperGraph::small().graph;
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v));
            let mut expected = g.neighbors(v).to_vec();
            expected.sort_unstable();
            assert_eq!(csr.neighbors(v), &expected[..]);
        }
        for (u, v) in g.edges() {
            assert!(csr.has_edge(u, v) && csr.has_edge(v, u));
        }
        assert!(!csr.has_edge(0, 5));
    }

    #[test]
    fn thaw_roundtrip() {
        let g = fixtures::petersen();
        let csr = CsrGraph::from(&g);
        let g2 = csr.to_dynamic();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = DynamicGraph::with_vertices(3);
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.degree(1), 0);
        assert!(csr.neighbors(2).is_empty());
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(CsrGraph::from(&DynamicGraph::new()).max_degree(), 0);
    }

    #[test]
    fn max_degree_and_degree_vec_match_dynamic() {
        let g = fixtures::PaperGraph::small().graph;
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.max_degree(), g.max_degree());
        let degs = csr.degree_vec();
        assert_eq!(degs.len(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(degs[v as usize] as usize, g.degree(v));
        }
        assert_eq!(
            degs.iter().copied().max().unwrap() as usize,
            csr.max_degree()
        );
    }
}
