//! A frozen CSR (compressed sparse row) snapshot of a graph.
//!
//! The mutable [`crate::DynamicGraph`] pays one heap allocation per
//! vertex; for *static* passes over large graphs (index construction,
//! the Fig 5 region analysis, offline decompositions) a CSR layout —
//! one offsets array plus one contiguous neighbour array — removes the
//! pointer chasing and roughly halves the memory. `kcore-decomp`
//! exposes a CSR-specialised decomposition; the `index_build` Criterion
//! bench quantifies the difference.
//!
//! Two row encodings are available behind [`CsrLayout`]:
//!
//! * [`CsrLayout::Plain`] — rows are contiguous `u32` slices, sorted
//!   ascending. Supports `O(log deg)` membership probes and borrowed
//!   [`CsrGraph::neighbors`] slices. 4 bytes per directed arc.
//! * [`CsrLayout::Delta`] — rows are LEB128 varints: the first
//!   neighbour absolute, every subsequent one as the gap to its
//!   predecessor (rows are sorted and duplicate-free, so gaps are
//!   ≥ 1 and most gaps on real graphs fit one byte). Rows are decoded
//!   on the fly by [`CsrGraph::for_each_neighbor`] /
//!   [`CsrGraph::neighbors_iter`]; no borrowed slices exist.
//!
//! Degrees are cached at freeze time (one `u32` per vertex) so
//! [`CsrGraph::degrees`] is a borrow, not an allocation, in both
//! layouts — the offsets of a Delta graph are *byte* offsets and no
//! longer encode degrees. [`CsrGraph::memory_bytes`] /
//! [`CsrGraph::bytes_per_edge`] report the footprint either way.

use crate::graph::{DynamicGraph, VertexId};

/// Row encoding of a [`CsrGraph`]. See the module docs for the
/// trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrLayout {
    /// Rows are sorted `u32` slices; offsets index into them.
    Plain,
    /// Rows are LEB128 delta-coded byte runs; offsets are byte offsets.
    Delta,
}

#[derive(Debug, Clone)]
enum Rows {
    Plain(Vec<VertexId>),
    Delta(Vec<u8>),
}

/// Immutable CSR graph. Build from a [`DynamicGraph`] via `From` (plain
/// layout) or [`CsrGraph::with_layout`].
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Per-vertex degrees, cached at freeze time. In the Plain layout
    /// they are redundant with the offsets; in the Delta layout the
    /// offsets are byte offsets and this is the only degree record.
    degrees: Vec<u32>,
    /// `offsets[v]..offsets[v+1]` delimits row `v` — in *elements* for
    /// Plain, in *bytes* for Delta.
    offsets: Vec<u32>,
    rows: Rows,
    /// Number of directed arcs (2·undirected edges); not derivable from
    /// `rows` in the Delta layout.
    num_arcs: usize,
    /// Maximum degree, computed once at freeze time — consumers that
    /// bucket by degree (every peeling decomposition) would otherwise
    /// rescan all `n` degrees on each call.
    max_degree: u32,
}

impl CsrGraph {
    /// Freezes `g` into the requested row layout.
    pub fn with_layout(g: &DynamicGraph, layout: CsrLayout) -> Self {
        let plain = Self::from(g);
        match layout {
            CsrLayout::Plain => plain,
            CsrLayout::Delta => plain.to_layout(CsrLayout::Delta),
        }
    }

    /// Re-encodes into `layout` (clone-equivalent when the layout
    /// already matches).
    pub fn to_layout(&self, layout: CsrLayout) -> Self {
        match (layout, &self.rows) {
            (CsrLayout::Plain, Rows::Plain(_)) | (CsrLayout::Delta, Rows::Delta(_)) => self.clone(),
            (CsrLayout::Delta, Rows::Plain(targets)) => {
                let n = self.num_vertices();
                let mut bytes = Vec::with_capacity(self.num_arcs);
                let mut offsets = Vec::with_capacity(n + 1);
                offsets.push(0u32);
                for v in 0..n {
                    let row = &targets[self.offsets[v] as usize..self.offsets[v + 1] as usize];
                    let mut prev = 0u32;
                    for (i, &w) in row.iter().enumerate() {
                        let val = if i == 0 { w } else { w - prev };
                        write_varint(&mut bytes, val);
                        prev = w;
                    }
                    offsets.push(u32::try_from(bytes.len()).expect("delta rows fit u32"));
                }
                CsrGraph {
                    degrees: self.degrees.clone(),
                    offsets,
                    rows: Rows::Delta(bytes),
                    num_arcs: self.num_arcs,
                    max_degree: self.max_degree,
                }
            }
            (CsrLayout::Plain, Rows::Delta(_)) => {
                let n = self.num_vertices();
                let mut offsets = Vec::with_capacity(n + 1);
                offsets.push(0u32);
                let mut total = 0u32;
                for &d in &self.degrees {
                    total += d;
                    offsets.push(total);
                }
                let mut targets = Vec::with_capacity(self.num_arcs);
                for v in 0..n as VertexId {
                    self.for_each_neighbor(v, |w| targets.push(w));
                }
                CsrGraph {
                    degrees: self.degrees.clone(),
                    offsets,
                    rows: Rows::Plain(targets),
                    num_arcs: self.num_arcs,
                    max_degree: self.max_degree,
                }
            }
        }
    }

    /// Assembles a plain-layout CSR from raw parts. `offsets` must be
    /// monotone with `offsets[0] == 0` and `offsets[n] == targets.len()`,
    /// and each row sorted ascending — callers (the binary loader)
    /// validate before handing the buffers over.
    pub(crate) fn from_plain_parts(offsets: Vec<u32>, targets: Vec<VertexId>) -> Self {
        let degrees: Vec<u32> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let num_arcs = targets.len();
        CsrGraph {
            degrees,
            offsets,
            rows: Rows::Plain(targets),
            num_arcs,
            max_degree,
        }
    }

    /// The active row layout.
    #[inline]
    pub fn layout(&self) -> CsrLayout {
        match self.rows {
            Rows::Plain(_) => CsrLayout::Plain,
            Rows::Delta(_) => CsrLayout::Delta,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Maximum degree over all vertices (0 for an empty graph). Cached at
    /// freeze time: `O(1)`.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Per-vertex degrees, borrowed from the freeze-time cache — no
    /// allocation.
    #[inline]
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Degrees of all vertices as an owned `Vec` (the mutable seed
    /// snapshot for peeling decompositions and atomic degree views).
    /// Prefer [`CsrGraph::degrees`] when a borrow suffices.
    pub fn degree_vec(&self) -> Vec<u32> {
        self.degrees.clone()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Neighbours of `v` (sorted ascending) as a borrowed slice.
    ///
    /// Only the Plain layout stores rows as slices; call sites that must
    /// work in both layouts use [`CsrGraph::for_each_neighbor`] or
    /// [`CsrGraph::neighbors_iter`].
    ///
    /// # Panics
    /// Panics in the Delta layout.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.rows {
            Rows::Plain(targets) => {
                &targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
            }
            Rows::Delta(_) => panic!(
                "CsrGraph::neighbors needs the Plain layout; \
                 use for_each_neighbor/neighbors_iter on a Delta graph"
            ),
        }
    }

    /// Calls `f` for every neighbour of `v`, in ascending order. Works
    /// in both layouts; this is the hot-loop accessor.
    #[inline]
    pub fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        let (s, e) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        match &self.rows {
            Rows::Plain(targets) => {
                for &w in &targets[s..e] {
                    f(w);
                }
            }
            Rows::Delta(bytes) => {
                let mut pos = s;
                let mut acc = 0u32;
                let mut first = true;
                while pos < e {
                    let (val, next) = read_varint(bytes, pos);
                    acc = if first { val } else { acc + val };
                    first = false;
                    f(acc);
                    pos = next;
                }
            }
        }
    }

    /// Iterator over the neighbours of `v`, ascending. Works in both
    /// layouts (decodes on the fly for Delta).
    pub fn neighbors_iter(&self, v: VertexId) -> CsrRowIter<'_> {
        let (s, e) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        match &self.rows {
            Rows::Plain(targets) => CsrRowIter::Plain(targets[s..e].iter()),
            Rows::Delta(bytes) => CsrRowIter::Delta {
                bytes,
                pos: s,
                end: e,
                acc: 0,
                first: true,
            },
        }
    }

    /// Hints the prefetcher at row `v`'s storage (no-op off x86_64).
    /// The parallel peel loops call this a few vertices ahead of the
    /// scan cursor so row bytes are in cache by the time they decode.
    #[inline]
    pub fn prefetch_row(&self, v: VertexId) {
        #[cfg(target_arch = "x86_64")]
        {
            let s = self.offsets[v as usize] as usize;
            unsafe {
                match &self.rows {
                    Rows::Plain(targets) => {
                        if s < targets.len() {
                            core::arch::x86_64::_mm_prefetch(
                                targets.as_ptr().add(s) as *const i8,
                                core::arch::x86_64::_MM_HINT_T0,
                            );
                        }
                    }
                    Rows::Delta(bytes) => {
                        if s < bytes.len() {
                            core::arch::x86_64::_mm_prefetch(
                                bytes.as_ptr().add(s) as *const i8,
                                core::arch::x86_64::_MM_HINT_T0,
                            );
                        }
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = v;
        }
    }

    /// Binary-search membership probe in the Plain layout (`O(log deg)`
    /// — rows are sorted); linear decode in the Delta layout.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        match &self.rows {
            Rows::Plain(_) => self.neighbors(probe).binary_search(&target).is_ok(),
            Rows::Delta(_) => self.neighbors_iter(probe).any(|w| w == target),
        }
    }

    /// Heap bytes of the frozen structure (degrees + offsets + rows).
    pub fn memory_bytes(&self) -> usize {
        let rows = match &self.rows {
            Rows::Plain(t) => std::mem::size_of_val(t.as_slice()),
            Rows::Delta(b) => b.len(),
        };
        std::mem::size_of_val(self.degrees.as_slice())
            + std::mem::size_of_val(self.offsets.as_slice())
            + rows
    }

    /// Heap bytes per undirected edge — the headline compactness
    /// number (`f64::INFINITY` for an edgeless graph).
    pub fn bytes_per_edge(&self) -> f64 {
        self.memory_bytes() as f64 / self.num_edges().max(1) as f64
    }

    /// Thaws back into a mutable graph.
    pub fn to_dynamic(&self) -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            self.for_each_neighbor(v, |w| {
                if v < w {
                    g.insert_edge_unchecked(v, w);
                }
            });
        }
        g
    }
}

/// Iterator over one CSR row (see [`CsrGraph::neighbors_iter`]).
pub enum CsrRowIter<'a> {
    /// Plain layout: a slice iterator.
    Plain(std::slice::Iter<'a, VertexId>),
    /// Delta layout: on-the-fly varint decode.
    Delta {
        /// Encoded row bytes (whole buffer; `pos..end` is this row).
        bytes: &'a [u8],
        /// Cursor into `bytes`.
        pos: usize,
        /// End of this row in `bytes`.
        end: usize,
        /// Running prefix sum (last decoded neighbour).
        acc: u32,
        /// Whether the next varint is the absolute first neighbour.
        first: bool,
    },
}

impl Iterator for CsrRowIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            CsrRowIter::Plain(it) => it.next().copied(),
            CsrRowIter::Delta {
                bytes,
                pos,
                end,
                acc,
                first,
            } => {
                if *pos >= *end {
                    return None;
                }
                let (val, next) = read_varint(bytes, *pos);
                *pos = next;
                *acc = if *first { val } else { *acc + val };
                *first = false;
                Some(*acc)
            }
        }
    }
}

/// LEB128 encode (unsigned, 32-bit).
#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 decode starting at `pos`; returns `(value, next_pos)`.
#[inline]
fn read_varint(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let b = bytes[pos];
        pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return (v, pos);
        }
        shift += 7;
    }
}

impl From<&DynamicGraph> for CsrGraph {
    fn from(g: &DynamicGraph) -> Self {
        let n = g.num_vertices();
        let mut degrees = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for v in 0..n as VertexId {
            let d = g.degree(v) as u32;
            degrees.push(d);
            total += d;
            offsets.push(total);
        }
        let mut targets = vec![0 as VertexId; total as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for v in 0..n as VertexId {
            for &w in g.neighbors(v) {
                targets[cursor[v as usize] as usize] = w;
                cursor[v as usize] += 1;
            }
        }
        // sort each row for binary-search probes
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[s..e].sort_unstable();
        }
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        CsrGraph {
            degrees,
            offsets,
            rows: Rows::Plain(targets),
            num_arcs: total as usize,
            max_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn csr_mirrors_dynamic() {
        let g = fixtures::PaperGraph::small().graph;
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.layout(), CsrLayout::Plain);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v));
            let mut expected = g.neighbors(v).to_vec();
            expected.sort_unstable();
            assert_eq!(csr.neighbors(v), &expected[..]);
            assert_eq!(csr.neighbors_iter(v).collect::<Vec<_>>(), expected);
        }
        for (u, v) in g.edges() {
            assert!(csr.has_edge(u, v) && csr.has_edge(v, u));
        }
        assert!(!csr.has_edge(0, 5));
    }

    #[test]
    fn thaw_roundtrip() {
        let g = fixtures::petersen();
        let csr = CsrGraph::from(&g);
        let g2 = csr.to_dynamic();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = DynamicGraph::with_vertices(3);
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.degree(1), 0);
        assert!(csr.neighbors(2).is_empty());
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(CsrGraph::from(&DynamicGraph::new()).max_degree(), 0);
    }

    #[test]
    fn max_degree_and_degree_vec_match_dynamic() {
        let g = fixtures::PaperGraph::small().graph;
        let csr = CsrGraph::from(&g);
        assert_eq!(csr.max_degree(), g.max_degree());
        let degs = csr.degrees();
        assert_eq!(degs.len(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(degs[v as usize] as usize, g.degree(v));
        }
        assert_eq!(
            degs.iter().copied().max().unwrap() as usize,
            csr.max_degree()
        );
        assert_eq!(csr.degree_vec(), degs);
    }

    #[test]
    fn delta_layout_mirrors_plain() {
        let g = fixtures::PaperGraph::small().graph;
        let plain = CsrGraph::from(&g);
        let delta = plain.to_layout(CsrLayout::Delta);
        assert_eq!(delta.layout(), CsrLayout::Delta);
        assert_eq!(delta.num_vertices(), plain.num_vertices());
        assert_eq!(delta.num_edges(), plain.num_edges());
        assert_eq!(delta.max_degree(), plain.max_degree());
        assert_eq!(delta.degrees(), plain.degrees());
        for v in g.vertices() {
            assert_eq!(
                delta.neighbors_iter(v).collect::<Vec<_>>(),
                plain.neighbors(v)
            );
            let mut via_closure = Vec::new();
            delta.for_each_neighbor(v, |w| via_closure.push(w));
            assert_eq!(via_closure, plain.neighbors(v));
        }
        for (u, v) in g.edges() {
            assert!(delta.has_edge(u, v) && delta.has_edge(v, u));
        }
        assert!(!delta.has_edge(0, 5));
        // round-trip back to plain
        let back = delta.to_layout(CsrLayout::Plain);
        for v in g.vertices() {
            assert_eq!(back.neighbors(v), plain.neighbors(v));
        }
        // sorted duplicate-free rows make every gap >= 1, so the delta
        // encoding is never larger than plain on the row bytes
        assert!(delta.memory_bytes() <= plain.memory_bytes());
        assert!(delta.bytes_per_edge() <= plain.bytes_per_edge());
    }

    #[test]
    fn delta_thaw_roundtrip() {
        let g = fixtures::petersen();
        let delta = CsrGraph::with_layout(&g, CsrLayout::Delta);
        let g2 = delta.to_dynamic();
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            let (got, next) = read_varint(&buf, pos);
            assert_eq!(got, v);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn memory_accounting_is_exact_for_plain() {
        let g = fixtures::petersen();
        let csr = CsrGraph::from(&g);
        let n = csr.num_vertices();
        let arcs = 2 * csr.num_edges();
        assert_eq!(csr.memory_bytes(), 4 * n + 4 * (n + 1) + 4 * arcs);
        assert!(csr.bytes_per_edge() > 8.0);
    }
}
