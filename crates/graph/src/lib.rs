//! # kcore-graph
//!
//! Dynamic undirected graph substrate used by every crate in this workspace.
//!
//! The representation is deliberately simple and fast for the access pattern
//! of core-maintenance algorithms:
//!
//! * vertices are dense `u32` ids (`VertexId`), so every per-vertex attribute
//!   in the higher layers is a flat `Vec` indexed by vertex;
//! * adjacency is a flat [`arena::AdjArena`] — one contiguous backing
//!   buffer with per-vertex slices, `O(1)` amortised edge insertion,
//!   `O(deg)` removal via `swap_remove`, CSR-style compaction on demand,
//!   and cache-friendly neighbour scans (the inner loops of both
//!   maintenance algorithms are neighbour scans) with zero per-vertex
//!   heap allocations;
//! * parallel edges and self loops are rejected (k-core theory assumes a
//!   simple graph), with an `O(min(deg(u), deg(v)))` membership probe.
//!
//! The crate also ships:
//!
//! * [`hash`] — an Fx-style integer hasher (SipHash is a measurable
//!   hot-spot on integer keys; `rustc-hash` is not among the allowed
//!   offline dependencies so the 20-line algorithm is implemented here);
//! * [`io`] — plain text edge-list reading/writing;
//! * [`stats`] — degree statistics used when reporting Table I;
//! * [`fixtures`] — the running-example graph of the paper (Fig 3) and a
//!   handful of tiny graphs shared by unit tests across the workspace.

pub mod arena;
pub mod atomic;
pub mod csr;
pub mod fixtures;
pub mod graph;
pub mod hash;
pub mod io;
pub mod mapped;
pub mod shard;
pub mod stats;

pub use arena::AdjArena;
pub use atomic::AtomicDegrees;
pub use csr::{CsrGraph, CsrLayout};
pub use graph::{
    edge_key, key_edge, DynamicGraph, EdgeListError, VertexId, DEFAULT_MAX_HOLE_RATIO, NO_VERTEX,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use mapped::{load_csr_mapped, save_csr, CsrLoadError, MappedCsr};
pub use shard::{BoundaryTable, HashShardMap, RangeShardMap, ShardMap};
