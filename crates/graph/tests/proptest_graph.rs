//! Property-based tests of the graph substrate against a `HashSet` edge
//! model, plus I/O round-trips.

use kcore_graph::io::{read_edge_list, write_edge_list};
use kcore_graph::{edge_key, DynamicGraph};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum GOp {
    Insert(u32, u32),
    Remove(u32, u32),
    Probe(u32, u32),
}

fn arb_ops(n: u32, len: usize) -> impl Strategy<Value = Vec<GOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..n, 0..n).prop_map(|(a, b)| GOp::Insert(a, b)),
            (0..n, 0..n).prop_map(|(a, b)| GOp::Remove(a, b)),
            (0..n, 0..n).prop_map(|(a, b)| GOp::Probe(a, b)),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn graph_matches_edge_set_model(ops in arb_ops(24, 200)) {
        let mut g = DynamicGraph::with_vertices(24);
        let mut model: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                GOp::Insert(a, b) => {
                    let r = g.insert_edge(a, b);
                    if a == b || model.contains(&edge_key(a, b)) {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert(edge_key(a, b));
                    }
                }
                GOp::Remove(a, b) => {
                    let r = g.remove_edge(a, b);
                    prop_assert_eq!(r.is_ok(), model.remove(&edge_key(a, b)));
                }
                GOp::Probe(a, b) => {
                    prop_assert_eq!(g.has_edge(a, b), model.contains(&edge_key(a, b)));
                }
            }
            prop_assert_eq!(g.num_edges(), model.len());
        }
        g.check_consistency().unwrap();
        // degree sums and edge iteration agree with the model
        let listed: HashSet<u64> =
            g.edges().map(|(u, v)| edge_key(u, v)).collect();
        prop_assert_eq!(listed, model);
    }

    #[test]
    fn io_roundtrip_preserves_graphs(ops in arb_ops(16, 80)) {
        let mut g = DynamicGraph::with_vertices(16);
        for op in ops {
            if let GOp::Insert(a, b) = op {
                let _ = g.insert_edge(a, b);
            }
        }
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let edges = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        let mut g2 = DynamicGraph::with_vertices(16);
        for (u, v) in edges {
            g2.ensure_vertex(u.max(v));
            g2.insert_edge(u, v).unwrap();
        }
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
    }
}
