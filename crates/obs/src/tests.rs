use crate::hist::{bucket_bounds, index_of};
use crate::{Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Exact percentile with the same rank convention the histogram uses:
/// the value at rank `ceil(q * n)` (1-based) of the sorted samples.
fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let n = samples.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    samples[(rank - 1) as usize]
}

#[test]
fn bucket_index_and_bounds_roundtrip() {
    // Every bucket's own bounds map back to that bucket, buckets tile
    // the u64 range contiguously, and small values are exact.
    let mut prev_hi = None;
    for idx in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(idx);
        assert!(lo <= hi);
        assert_eq!(index_of(lo), idx, "lo of bucket {idx}");
        assert_eq!(index_of(hi), idx, "hi of bucket {idx}");
        if let Some(p) = prev_hi {
            assert_eq!(lo, p + 1u64, "gap before bucket {idx}");
        }
        prev_hi = Some(hi);
    }
    assert_eq!(prev_hi, Some(u64::MAX));
    for v in 0..8u64 {
        assert_eq!(bucket_bounds(index_of(v)), (v, v), "unit buckets exact");
    }
    assert_eq!(index_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
}

#[test]
fn histogram_basic_stats() {
    let h = Histogram::new();
    assert!(h.is_empty());
    assert_eq!((h.p50(), h.p99(), h.max(), h.min()), (0, 0, 0, 0));
    for v in [5u64, 5, 5, 7, 1000] {
        h.record(v);
    }
    assert_eq!(h.count(), 5);
    assert_eq!(h.sum(), 5 + 5 + 5 + 7 + 1000);
    assert_eq!(h.min(), 5);
    assert_eq!(h.max(), 1000);
    assert_eq!(h.p50(), 5, "small values are bucket-exact");
    // p99 rank 5 → the 1000 sample's bucket; clamped to observed max.
    assert_eq!(h.p99(), 1000);
}

#[test]
fn histogram_clone_shares_cells_and_eq_compares_contents() {
    let a = Histogram::new();
    let handle = a.clone();
    a.record(42);
    assert_eq!(handle.count(), 1, "clones share cells");
    let b = Histogram::new();
    b.record(42);
    assert_eq!(a, b, "equality is by contents");
    b.record(43);
    assert_ne!(a, b);
    // Absorbing self is a no-op, not a double-count.
    a.absorb(&handle);
    assert_eq!(a.count(), 1);
}

#[test]
fn histogram_samples_shim_is_rank_ordered_and_capped() {
    let h = Histogram::new();
    for v in (0..1000u64).rev() {
        h.record(v * 3);
    }
    let all = h.samples(4096);
    assert_eq!(all.len(), 1000);
    let mut sorted = all.clone();
    sorted.sort_unstable();
    assert_eq!(all, sorted, "samples come out rank-ordered");
    let capped = h.samples(100);
    assert!(capped.len() <= 100);
    assert!(!capped.is_empty());
}

#[test]
fn registry_snapshot_render_and_json() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("ingest_events_total");
    let g = reg.gauge("planner/ewma ns-per-edge"); // sanitized
    let h = reg.histogram("flush_apply_ns");
    c.add(3);
    g.set(12.5);
    h.record(100);
    h.record(200);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("ingest_events_total"), Some(3));
    assert_eq!(snap.gauge("planner_ewma_ns_per_edge"), Some(12.5));
    assert_eq!(snap.histogram("flush_apply_ns").unwrap().count, 2);

    let text = snap.render_text();
    assert!(text.contains("# TYPE ingest_events_total counter"));
    assert!(text.contains("ingest_events_total 3"));
    assert!(text.contains("planner_ewma_ns_per_edge 12.5"));
    assert!(text.contains("flush_apply_ns_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("flush_apply_ns_count 2"));
    for line in text.lines() {
        assert!(
            line.starts_with("# TYPE ") || line.split(' ').count() == 2,
            "malformed exposition line: {line:?}"
        );
    }

    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"ingest_events_total\":3"));
    assert!(json.contains("\"count\":2"));

    // Same-name re-lookup returns the same cells.
    reg.counter("ingest_events_total").inc();
    assert_eq!(c.get(), 4);
}

#[test]
fn registry_snapshot_under_concurrent_writes() {
    // Writers hammer a counter + histogram while a reader snapshots:
    // every snapshot must be internally sane (monotone counts, p99 ≥
    // p50) and the final totals exact. Recording is lock-free, so no
    // writer can be blocked by the reader.
    const WRITERS: usize = 4;
    const PER: u64 = 20_000;
    let reg = MetricsRegistry::new();
    let c = reg.counter("events");
    let h = reg.histogram("lat");
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let (c, h) = (c.clone(), h.clone());
            std::thread::spawn(move || {
                for i in 0..PER {
                    c.inc();
                    h.record((w as u64 + 1) * 1000 + i % 7);
                }
            })
        })
        .collect();
    let mut last = 0u64;
    for _ in 0..200 {
        let snap = reg.snapshot();
        let seen = snap.counter("events").unwrap();
        assert!(seen >= last, "counter went backwards");
        last = seen;
        let hs = snap.histogram("lat").unwrap();
        assert!(hs.p99 >= hs.p50);
        assert!(hs.count <= WRITERS as u64 * PER);
    }
    for t in handles {
        t.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("events"), Some(WRITERS as u64 * PER));
    assert_eq!(snap.histogram("lat").unwrap().count, WRITERS as u64 * PER);
}

#[test]
fn span_ring_bounds_retention_fifo() {
    let rec = SpanRecorder::with_capacity(3);
    for i in 0..5u64 {
        rec.record(i / 2, "apply", i * 10, 1, i);
    }
    assert_eq!(rec.recorded(), 5);
    let spans = rec.spans();
    assert_eq!(spans.len(), 3, "ring keeps the newest `capacity` spans");
    assert_eq!(
        spans.iter().map(|s| s.seq).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );
    assert_eq!(rec.trace(1).len(), 2); // seqs 2 and 3
    rec.clear();
    assert!(rec.spans().is_empty());
    assert_eq!(rec.recorded(), 5, "seq survives clear");
}

#[test]
fn counter_and_gauge_share_on_clone() {
    let c = Counter::new();
    c.clone().add(7);
    assert_eq!(c.get(), 7);
    let g = Gauge::new();
    g.clone().set(-1.25);
    assert_eq!(g.get(), -1.25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket-boundary property: for an arbitrary sample soup, the
    /// histogram's p50/p99 land in exactly the bucket holding the true
    /// rank-percentile — i.e. within one log-bucket of exact.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        mut samples in prop::collection::vec(0u64..5_000_000, 1..400),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        for q in [0.50, 0.99] {
            let exact = exact_quantile(&mut samples, q);
            let got = h.quantile(q);
            let (lo, hi) = bucket_bounds(index_of(exact));
            prop_assert!(
                got >= lo && got <= hi,
                "q={} exact={} bucket=[{},{}] got={}", q, exact, lo, hi, got
            );
        }
        prop_assert_eq!(h.max(), *samples.last().unwrap());
        prop_assert_eq!(h.min(), samples[0]);
    }

    /// Merge property: absorbing B into A gives the same quantiles (to
    /// bucket resolution) as recording the union directly — merging is
    /// percentile-safe, unlike sample-ring subsampling.
    #[test]
    fn absorb_is_percentile_safe(
        a in prop::collection::vec(0u64..1_000_000, 1..200),
        b in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &s in &a {
            ha.record(s);
            hu.record(s);
        }
        for &s in &b {
            hb.record(s);
            hu.record(s);
        }
        ha.absorb(&hb);
        prop_assert_eq!(&ha, &hu, "merged buckets equal union buckets");
        let mut union: Vec<u64> = a.iter().chain(&b).copied().collect();
        for q in [0.50, 0.99] {
            let exact = exact_quantile(&mut union, q);
            let got = ha.quantile(q);
            let (lo, hi) = bucket_bounds(index_of(exact));
            prop_assert!(
                got >= lo && got <= hi,
                "q={} exact={} bucket=[{},{}] got={}", q, exact, lo, hi, got
            );
        }
    }
}
