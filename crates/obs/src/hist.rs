//! Log-bucketed latency histogram.
//!
//! Layout: values `0..8` get exact unit buckets; every power-of-two
//! octave above that is split into 8 sub-buckets, so the relative
//! bucket width is ≤ 1/8 everywhere. That covers the full `u64` range
//! in [`HISTOGRAM_BUCKETS`] (= 496) buckets ≈ 4 KiB of atomics —
//! bounded no matter how long the run, unlike a raw sample ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS; // 8 sub-buckets per octave

/// Total bucket count: 8 unit buckets + 61 octaves × 8 sub-buckets.
pub const HISTOGRAM_BUCKETS: usize = (SUB + (64 - SUB_BITS) as u64 * SUB) as usize;

struct Kernel {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64, // u64::MAX while empty
}

/// A thread-safe log-bucketed histogram of `u64` samples (typically
/// nanoseconds). Clones share the underlying cells, so the same
/// histogram can be recorded to from a writer thread and read live
/// through a [`crate::MetricsRegistry`] snapshot.
#[derive(Clone)]
pub struct Histogram(Arc<Kernel>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
pub(crate) fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (msb - SUB_BITS)) - SUB;
        (SUB as usize) * (msb - SUB_BITS + 1) as usize + sub as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        (idx as u64, idx as u64)
    } else {
        let oct = (idx / SUB as usize) as u32;
        let msb = oct + SUB_BITS - 1;
        let sub = (idx % 8) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lo = (SUB + sub) << (msb - SUB_BITS);
        (lo, lo + (width - 1))
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(Kernel {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }))
    }

    /// Record one sample. Lock-free: two relaxed adds plus two
    /// relaxed min/max updates.
    #[inline]
    pub fn record(&self, v: u64) {
        let k = &*self.0;
        k.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        k.count.fetch_add(1, Ordering::Relaxed);
        k.sum.fetch_add(v, Ordering::Relaxed);
        k.max.fetch_max(v, Ordering::Relaxed);
        k.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Fold `other`'s buckets into `self`. Because merging is bucket
    /// addition, percentiles of the merged histogram are exact to
    /// bucket resolution — no subsampling bias.
    pub fn absorb(&self, other: &Histogram) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return; // same cells: absorbing self would double-count
        }
        let (a, b) = (&*self.0, &*other.0);
        for (dst, src) in a.buckets.iter().zip(&b.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        a.count
            .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum
            .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max
            .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
        a.min
            .fetch_min(b.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let m = self.0.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`), reported as the upper
    /// bound of the bucket holding that rank (clamped to the observed
    /// max) — i.e. exact to one bucket (≤ 12.5% relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                let (lo, hi) = bucket_bounds(idx);
                return hi.min(self.max()).max(lo.min(self.max()));
            }
        }
        self.max()
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Reconstruct up to `cap` rank-ordered representative samples
    /// (bucket lower bounds). Back-compat shim for callers that used to
    /// consume the raw `Vec<u64>` latency rings.
    pub fn samples(&self, cap: usize) -> Vec<u64> {
        let n = self.count();
        if n == 0 || cap == 0 {
            return Vec::new();
        }
        let stride = n.div_ceil(cap.min(n as usize) as u64).max(1);
        let mut out = Vec::with_capacity(cap.min(n as usize));
        let mut rank = 0u64; // ranks 0..n; emit ranks ≡ 0 (mod stride)
        let mut next = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let (lo, _) = bucket_bounds(idx);
            while next < rank + c {
                out.push(lo.min(self.max()));
                next += stride;
            }
            rank += c;
        }
        out
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs —
    /// the shape Prometheus `_bucket{le=...}` lines want.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_bounds(idx).1, cum));
            }
        }
        out
    }

    /// A point-in-time value snapshot (plain data, no atomics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.p50(),
            p99: self.p99(),
            buckets: self.cumulative_buckets(),
        }
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        self.count() == other.count()
            && self.sum() == other.sum()
            && self.cumulative_buckets() == other.cumulative_buckets()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// Plain-data snapshot of a [`Histogram`], embedded in
/// [`crate::MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p99: u64,
    /// Non-empty buckets as `(upper_bound, cumulative_count)`.
    pub buckets: Vec<(u64, u64)>,
}
