//! # kcore-obs — lock-light observability for the kcore runtime
//!
//! A dependency-free metrics core shared by every crate in the
//! workspace:
//!
//! - [`Counter`] / [`Gauge`] — single atomic word, cloned handles share
//!   the cell, safe to bump from any thread.
//! - [`Histogram`] — log-bucketed (8 sub-buckets per power of two,
//!   ≤ 12.5% relative bucket width) latency histogram over `u64`
//!   nanoseconds. Recording is a couple of relaxed atomic adds; p50/p99
//!   extraction walks ~500 buckets. Merging two histograms adds bucket
//!   counts, so percentiles survive aggregation exactly (to bucket
//!   resolution) — unlike sample-ring subsampling.
//! - [`MetricsRegistry`] — a name → metric map behind a mutex that is
//!   only taken on registration and snapshot, never on the record
//!   path. [`MetricsRegistry::snapshot`] returns a typed
//!   [`MetricsSnapshot`] readable from any thread; the snapshot renders
//!   to Prometheus text exposition ([`MetricsSnapshot::render_text`])
//!   or JSON ([`MetricsSnapshot::to_json`]).
//! - [`SpanRecorder`] — a bounded ring of per-stage [`Span`]s with
//!   caller-supplied timestamps, so a writer driven by a scripted clock
//!   produces bit-identical traces run over run and deterministic tests
//!   can assert on the exact flush breakdown.
//!
//! All handle types are `Arc`-backed: cloning shares the underlying
//! cells, so the same `Histogram` can live both in a report struct and
//! in a registry without double-recording.

mod hist;
mod registry;
mod span;

pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use span::{Span, SpanRecorder};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing atomic counter. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge holding an `f64` (stored as bits).
/// Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests;
