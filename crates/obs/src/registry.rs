//! Name → metric map with non-blocking snapshots.
//!
//! The mutex guards only the map itself; it is taken on registration
//! (setup-time) and on snapshot (reader-side). The record path — the
//! writer thread bumping counters and histograms — never touches it:
//! handles are `Arc`-shared atomics.

use crate::hist::HistogramSnapshot;
use crate::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A shared registry of named metrics. Clones share the map.
///
/// Names are sanitized to the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) at registration, so
/// [`MetricsSnapshot::render_text`] always emits well-formed exposition
/// lines.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(sanitize(name))
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(sanitize(name))
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a histogram under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(sanitize(name))
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Register an existing histogram handle (e.g. one owned by a
    /// report struct) under `name`, sharing its cells.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        let mut map = self.metrics.lock().unwrap();
        map.insert(sanitize(name), Metric::Histogram(h.clone()));
    }

    /// Names currently registered (sorted).
    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().unwrap().keys().cloned().collect()
    }

    /// A typed point-in-time snapshot of every registered metric.
    /// Holds the map lock only while copying handles; never blocks a
    /// recording thread (recording is lock-free).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let handles: Vec<(String, Metric)> = {
            let map = self.metrics.lock().unwrap();
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut values = BTreeMap::new();
        for (name, m) in handles {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            values.insert(name, v);
        }
        MetricsSnapshot { values }
    }

    /// Shorthand: snapshot and render Prometheus text exposition.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Shorthand: snapshot and render JSON.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.names().len())
            .finish()
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// Plain-data snapshot of a whole registry, readable from any thread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition format: `# TYPE` comments, one sample
    /// per line, histograms expanded to cumulative `_bucket{le=...}`
    /// lines plus `_sum` / `_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", fmt_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (le, cum) in &h.buckets {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name; histograms become summary
    /// objects (`count`, `sum`, `min`, `max`, `mean`, `p50`, `p99`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":");
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{}", fmt_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"mean\":{},\"p50\":{},\"p99\":{}}}",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        fmt_f64(h.mean),
                        h.p50,
                        h.p99
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

/// `f64` formatting that is valid in both JSON and Prometheus text:
/// finite values print with a decimal point, non-finite become 0.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}
