//! Bounded span ring for flush-pipeline tracing.
//!
//! Timestamps are **caller-supplied**: the ingest writer stamps spans
//! from its own clock, so under a scripted clock the whole trace —
//! sequence numbers, trace ids, stage names, timestamps, item counts —
//! is bit-identical run over run. Deterministic tests assert on the
//! exact span list; production runs get wall-clock stage breakdowns.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One pipeline stage of one flush (or merged cut).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Global sequence number within this recorder (0-based).
    pub seq: u64,
    /// Groups stages of the same flush / cut (e.g. the batch number).
    pub trace: u64,
    /// Stage name, e.g. `"apply"`, `"publish"`.
    pub stage: &'static str,
    /// Start timestamp in the recording thread's clock domain (ns).
    pub start_ns: u64,
    /// Duration in the same clock domain (ns).
    pub dur_ns: u64,
    /// Stage-specific work count (events applied, chunks copied, …).
    pub items: u64,
}

struct Ring {
    spans: Mutex<VecDeque<Span>>,
    seq: AtomicU64,
    capacity: usize,
}

/// A bounded ring of [`Span`]s. Clones share the ring. Recording takes
/// one uncontended mutex per span — a handful per *flush*, never per
/// event, so the cost is noise next to the batch work it measures.
#[derive(Clone)]
pub struct SpanRecorder(Arc<Ring>);

impl SpanRecorder {
    /// `capacity` is the maximum number of retained spans; older spans
    /// are dropped FIFO. Capacity 0 disables retention (records are
    /// dropped but `seq` still advances).
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRecorder(Arc::new(Ring {
            spans: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            seq: AtomicU64::new(0),
            capacity,
        }))
    }

    /// Record one completed stage. Returns the span's sequence number.
    pub fn record(
        &self,
        trace: u64,
        stage: &'static str,
        start_ns: u64,
        dur_ns: u64,
        items: u64,
    ) -> u64 {
        let seq = self.0.seq.fetch_add(1, Ordering::Relaxed);
        if self.0.capacity > 0 {
            let mut ring = self.0.spans.lock().unwrap();
            if ring.len() == self.0.capacity {
                ring.pop_front();
            }
            ring.push_back(Span {
                seq,
                trace,
                stage,
                start_ns,
                dur_ns,
                items,
            });
        }
        seq
    }

    /// Total spans ever recorded (including ones evicted from the ring).
    pub fn recorded(&self) -> u64 {
        self.0.seq.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.0.spans.lock().unwrap().iter().cloned().collect()
    }

    /// Retained spans belonging to trace id `trace`, oldest first.
    pub fn trace(&self, trace: u64) -> Vec<Span> {
        self.0
            .spans
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Drop all retained spans (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.0.spans.lock().unwrap().clear();
    }

    pub fn capacity(&self) -> usize {
        self.0.capacity
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.0.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}
