//! Property-based tests of the static decomposition layer: the bucket
//! algorithm against the defining fixed-point characterisation, k-order
//! validity for every heuristic, and region-analysis invariants.

use kcore_decomp::bucket::{core_histogram, kcore_subgraph, kcore_vertices};
use kcore_decomp::regions::{ordercore_sizes, purecore_sizes, subcore_sizes};
use kcore_decomp::validate::{compute_cd_levels, compute_mcd, compute_pcd};
use kcore_decomp::{
    core_decomposition, core_decomposition_csr, is_valid_korder, korder_decomposition,
    korder_decomposition_par, par_core_decomposition, par_core_decomposition_csr, Heuristic,
    Parallelism,
};
use kcore_graph::{CsrGraph, DynamicGraph};
use proptest::prelude::*;

/// Asserts the tentpole contract: the parallel peel (dynamic and CSR, at
/// 1, 2 and 4 threads, cutoff 0 so the threads actually engage) is
/// bit-identical to both sequential decompositions.
fn assert_par_matches_sequential(g: &DynamicGraph) -> Result<(), TestCaseError> {
    let reference = core_decomposition(g);
    let csr = CsrGraph::from(g);
    prop_assert_eq!(&core_decomposition_csr(&csr), &reference);
    for t in [1usize, 2, 4] {
        let par = Parallelism::exact(t).with_cutoff(0);
        prop_assert_eq!(
            &par_core_decomposition(g, &par),
            &reference,
            "dynamic peel diverged at {} threads",
            t
        );
        prop_assert_eq!(
            &par_core_decomposition_csr(&csr, &par),
            &reference,
            "csr peel diverged at {} threads",
            t
        );
    }
    Ok(())
}

fn arb_graph() -> impl Strategy<Value = DynamicGraph> {
    (
        2u32..40,
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..160),
    )
        .prop_map(|(n, pairs)| {
            let mut g = DynamicGraph::with_vertices(n as usize);
            for (a, b) in pairs {
                let (a, b) = (a % n, b % n);
                if a != b && !g.has_edge(a, b) {
                    g.insert_edge_unchecked(a, b);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The defining property: `core(v) >= k` iff `v` survives iterated
    /// deletion of vertices with degree < k.
    #[test]
    fn core_numbers_satisfy_fixed_point(g in arb_graph()) {
        let core = core_decomposition(&g);
        let max_k = core.iter().copied().max().unwrap_or(0);
        for k in 1..=max_k {
            // peel to the k-core independently
            let mut alive: Vec<bool> = (0..g.num_vertices()).map(|_| true).collect();
            let mut deg: Vec<usize> = (0..g.num_vertices())
                .map(|v| g.degree(v as u32))
                .collect();
            let mut changed = true;
            while changed {
                changed = false;
                for v in 0..g.num_vertices() {
                    if alive[v] && deg[v] < k as usize {
                        alive[v] = false;
                        changed = true;
                        for &w in g.neighbors(v as u32) {
                            if alive[w as usize] {
                                deg[w as usize] -= 1;
                            }
                        }
                    }
                }
            }
            for v in 0..g.num_vertices() {
                prop_assert_eq!(alive[v], core[v] >= k, "k = {}, v = {}", k, v);
            }
        }
    }

    /// Every heuristic produces a valid k-order (Lemma 5.1 + grouping +
    /// correct cores + correct deg+).
    #[test]
    fn all_heuristics_yield_valid_korders(g in arb_graph(), seed in any::<u64>()) {
        for h in Heuristic::ALL {
            let ko = korder_decomposition(&g, h, seed);
            if let Err(e) = is_valid_korder(&g, &ko) {
                prop_assert!(false, "{h:?}: {e}");
            }
        }
    }

    /// The parallel peel equals the sequential decompositions on random
    /// edge soups — `arb_graph` routinely yields isolated vertices and
    /// several components, the cases a frontier seeding bug would miss.
    #[test]
    fn parallel_peel_matches_sequential(g in arb_graph()) {
        assert_par_matches_sequential(&g)?;
    }

    /// Same contract on the generator families the benchmarks use:
    /// Barabási–Albert (power-law, low degeneracy) and G(n, m) (flat
    /// degrees), again with forced multi-threading.
    #[test]
    fn parallel_peel_matches_sequential_on_generators(
        n in 12usize..120,
        attach in 1usize..5,
        seed in any::<u64>(),
    ) {
        let ba = kcore_gen::barabasi_albert(n, attach, seed);
        assert_par_matches_sequential(&ba)?;
        let gnm = kcore_gen::erdos_renyi_gnm(n, (n * attach) / 2, seed ^ 0x5EED);
        assert_par_matches_sequential(&gnm)?;
    }

    /// Phase-parallel korder is bit-identical to the sequential build —
    /// order, cores, and deg⁺ — for every heuristic and thread count.
    #[test]
    fn phase_parallel_korder_matches(g in arb_graph(), seed in any::<u64>()) {
        for h in Heuristic::ALL {
            let reference = korder_decomposition(&g, h, seed);
            for t in [2usize, 4] {
                let par = Parallelism::exact(t).with_cutoff(0);
                let ko = korder_decomposition_par(&g, h, seed, &par);
                prop_assert_eq!(&ko.order, &reference.order, "{:?} at {} threads", h, t);
                prop_assert_eq!(&ko.core, &reference.core);
                prop_assert_eq!(&ko.deg_plus, &reference.deg_plus);
            }
        }
    }

    /// Histogram accounts for every vertex; k-core extraction and
    /// subgraph agree.
    #[test]
    fn histogram_and_extraction_agree(g in arb_graph()) {
        let core = core_decomposition(&g);
        let hist = core_histogram(&core);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
        let max_k = core.iter().copied().max().unwrap_or(0);
        for k in 0..=max_k {
            let members = kcore_vertices(&core, k);
            let expected: usize = hist[k as usize..].iter().sum();
            prop_assert_eq!(members.len(), expected);
            let sub = kcore_subgraph(&g, &core, k);
            // every member has degree >= k inside the k-core subgraph
            for &v in &members {
                prop_assert!(sub.degree(v) >= k as usize,
                    "vertex {} has degree {} < {} in its own core", v, sub.degree(v), k);
            }
        }
    }

    /// mcd >= core, pcd <= mcd, and the cd hierarchy is pointwise
    /// non-increasing in the level.
    #[test]
    fn degree_hierarchy_monotone(g in arb_graph()) {
        let core = core_decomposition(&g);
        let mcd = compute_mcd(&g, &core);
        let pcd = compute_pcd(&g, &core, &mcd);
        for v in 0..g.num_vertices() {
            prop_assert!(mcd[v] >= core[v]);
            prop_assert!(pcd[v] <= mcd[v]);
        }
        let levels = compute_cd_levels(&g, &core, 6);
        for l in 1..levels.len() {
            for (&hi, &lo) in levels[l].iter().zip(levels[l - 1].iter()) {
                prop_assert!(hi <= lo);
            }
        }
        prop_assert_eq!(&levels[0], &mcd);
        prop_assert_eq!(&levels[1], &pcd);
    }

    /// Region containments: oc(v) ⊆ same-core level, |oc| <= |sc|,
    /// pure cores are consistent with qualification.
    #[test]
    fn region_sizes_are_ordered(g in arb_graph(), seed in any::<u64>()) {
        let core = core_decomposition(&g);
        let sc = subcore_sizes(&g, &core);
        let pc = purecore_sizes(&g, &core);
        let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, seed);
        let all: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let oc = ordercore_sizes(&g, &ko, &all);
        for v in 0..g.num_vertices() {
            prop_assert!(sc[v] >= 1 && pc[v] >= 1 && oc[v] >= 1);
            prop_assert!(oc[v] <= sc[v], "oc({v}) > sc({v})");
            prop_assert!(pc[v] <= sc[v] + 1, "pc({v}) vs sc({v})");
        }
    }
}
