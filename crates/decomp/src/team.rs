//! A long-lived fork-join worker team shared by every parallel phase in
//! the workspace: the level-synchronous peels ([`crate::par`]), the
//! phase-parallel k-order build, and the maintenance engine's parallel
//! component passes.
//!
//! The PR-3 fork-join ran each job inside its own `std::thread::scope`,
//! paying a spawn + join per call — fine for one decomposition over a
//! 50k-vertex graph, a real tax when the ingest writer dispatches a
//! parallel pass per micro-batch. This team spawns its workers **once**
//! (lazily, growing up to [`MAX_WORKERS`]) and parks them on a condvar
//! between jobs, so a job submission costs a mutex round-trip and a
//! wake, not a `clone(2)`.
//!
//! ## Protocol
//!
//! [`run`]`(tasks, f)` executes `f(0)` on the calling thread and
//! `f(1) .. f(tasks-1)` on the team, returning only when every call has
//! finished. One job runs at a time (a submit lock serialises callers —
//! the workspace's parallel phases are themselves serialised behind
//! `&mut` engines, so contention is not a real shape). Task indices are
//! claimed greedily: a woken worker keeps claiming indices of the
//! current job until none remain, so stragglers cannot strand a task
//! and the job completes even if the OS wakes fewer workers than tasks.
//!
//! Panics in any task are caught, the job is drained to completion, and
//! the panic is re-raised on the submitting thread — same observable
//! behaviour as the scoped-join version. Calls from *inside* a team
//! task (accidental nesting) degrade to inline sequential execution
//! instead of deadlocking on the submit lock.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on spawned workers. Jobs may ask for more tasks than this;
/// greedy index claiming lets fewer workers drain them.
pub const MAX_WORKERS: usize = 32;

/// A job is a borrowed closure; [`run`] transmutes the borrow to
/// `'static` for the slot and guarantees (by blocking until `done ==
/// tasks - 1`) that no worker touches it after `run` returns.
type Job = &'static (dyn Fn(usize) + Sync);

struct Slot {
    /// Monotone job counter; a worker sleeps until it advances past the
    /// last job it helped with.
    seq: u64,
    job: Option<Job>,
    /// Next unclaimed task index of the current job.
    next_index: usize,
    /// Task count of the current job (worker indices are `1..tasks`).
    tasks: usize,
    /// Worker tasks finished (target: `tasks - 1`).
    done: usize,
    panicked: bool,
    spawned: usize,
}

struct Team {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
    submit: Mutex<()>,
}

fn team() -> &'static Team {
    static TEAM: OnceLock<&'static Team> = OnceLock::new();
    TEAM.get_or_init(|| {
        Box::leak(Box::new(Team {
            slot: Mutex::new(Slot {
                seq: 0,
                job: None,
                next_index: 0,
                tasks: 0,
                done: 0,
                panicked: false,
                spawned: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
        }))
    })
}

thread_local! {
    /// Set while this thread is executing a team task — nested [`run`]
    /// calls fall back to inline execution instead of self-deadlocking.
    static IN_TEAM_TASK: Cell<bool> = const { Cell::new(false) };
}

// Lifetime counters for the process-wide team, exported through
// [`stats`]. Relaxed: they are observability, not synchronisation.
static JOBS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static INLINE_JOBS: AtomicU64 = AtomicU64::new(0);
static NESTED_INLINE: AtomicU64 = AtomicU64::new(0);

/// A point-in-time view of the worker team, for gauges and logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TeamStats {
    /// Jobs dispatched to the team (`tasks > 1`, not nested).
    pub jobs: u64,
    /// Total task invocations across all jobs (including inline ones).
    pub tasks: u64,
    /// Jobs that ran inline because `tasks <= 1`.
    pub inline_jobs: u64,
    /// Jobs that ran inline because they were submitted from inside a
    /// team task (nesting fallback).
    pub nested_inline: u64,
    /// Workers spawned so far (monotone, ≤ [`MAX_WORKERS`]).
    pub workers_spawned: u64,
    /// Whether a job is occupying the team right now.
    pub busy: bool,
}

/// Lifetime team statistics — queue/occupancy gauges for the
/// observability layer. Cheap: four relaxed loads plus one short lock.
pub fn stats() -> TeamStats {
    let (spawned, busy) = {
        let slot = team().slot.lock().unwrap();
        (slot.spawned as u64, slot.job.is_some())
    };
    TeamStats {
        jobs: JOBS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        inline_jobs: INLINE_JOBS.load(Ordering::Relaxed),
        nested_inline: NESTED_INLINE.load(Ordering::Relaxed),
        workers_spawned: spawned,
        busy,
    }
}

fn worker_loop(team: &'static Team) {
    let mut last_seen = 0u64;
    let mut slot = team.slot.lock().unwrap();
    loop {
        if slot.seq != last_seen && slot.job.is_some() {
            if slot.next_index < slot.tasks {
                let i = slot.next_index;
                slot.next_index += 1;
                let job = slot.job.unwrap();
                drop(slot);
                let ok = panic::catch_unwind(AssertUnwindSafe(|| {
                    IN_TEAM_TASK.with(|f| f.set(true));
                    job(i);
                }))
                .is_ok();
                IN_TEAM_TASK.with(|f| f.set(false));
                slot = team.slot.lock().unwrap();
                if !ok {
                    slot.panicked = true;
                }
                slot.done += 1;
                if slot.done + 1 >= slot.tasks {
                    team.done_cv.notify_all();
                }
                continue; // greedily claim another index of this job
            }
            // Every index claimed: this job needs nothing more from us.
            last_seen = slot.seq;
        }
        slot = team.work_cv.wait(slot).unwrap();
    }
}

/// Runs `f(i)` for every `i in 0..tasks` — `f(0)` on the calling
/// thread, the rest on the worker team — and returns when all calls
/// have finished. Panics (from any task) are re-raised here after the
/// job has fully drained, so borrowed captures stay valid for the
/// job's whole lifetime.
pub fn run(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks <= 1 {
        INLINE_JOBS.fetch_add(1, Ordering::Relaxed);
        TASKS.fetch_add(1, Ordering::Relaxed);
        f(0);
        return;
    }
    if IN_TEAM_TASK.with(|flag| flag.get()) {
        // Nested submission from inside a task: run inline rather than
        // deadlock on the submit lock the outer job's caller holds.
        NESTED_INLINE.fetch_add(1, Ordering::Relaxed);
        TASKS.fetch_add(tasks as u64, Ordering::Relaxed);
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    JOBS.fetch_add(1, Ordering::Relaxed);
    TASKS.fetch_add(tasks as u64, Ordering::Relaxed);
    let team = team();
    let _guard = team
        .submit
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    // SAFETY: the slot's borrow of `f` is cleared below, and we do not
    // return (or unwind) before `done == tasks - 1` confirms no worker
    // still holds it.
    let job: Job = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    };
    {
        let mut slot = team.slot.lock().unwrap();
        let want = (tasks - 1).min(MAX_WORKERS);
        while slot.spawned < want {
            let t = slot.spawned;
            std::thread::Builder::new()
                .name(format!("kcore-team-{t}"))
                .spawn(move || worker_loop(self::team()))
                .expect("spawn team worker");
            slot.spawned += 1;
        }
        slot.seq += 1;
        slot.job = Some(job);
        slot.next_index = 1;
        slot.tasks = tasks;
        slot.done = 0;
        slot.panicked = false;
        team.work_cv.notify_all();
    }

    // Task 0 runs on this thread while the submit lock is held, so it
    // must take the same inline-nesting fallback as worker tasks — a
    // nested `run` here would self-deadlock on the non-reentrant lock.
    let caller = panic::catch_unwind(AssertUnwindSafe(|| {
        IN_TEAM_TASK.with(|flag| flag.set(true));
        f(0)
    }));
    IN_TEAM_TASK.with(|flag| flag.set(false));

    let mut slot = team.slot.lock().unwrap();
    while slot.done < slot.tasks - 1 {
        slot = team.done_cv.wait(slot).unwrap();
    }
    slot.job = None;
    let worker_panicked = slot.panicked;
    drop(slot);

    match caller {
        Err(payload) => panic::resume_unwind(payload),
        Ok(()) if worker_panicked => panic!("worker team task panicked"),
        Ok(()) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        for tasks in [1usize, 2, 3, 8, 40] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            run(tasks, &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "task {i} of {tasks}");
            }
        }
    }

    #[test]
    fn jobs_reuse_the_team_across_submissions() {
        let total = AtomicUsize::new(0);
        for round in 1..=20usize {
            run(4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(total.load(Ordering::SeqCst), round * 4);
        }
    }

    #[test]
    fn worker_panic_propagates_and_team_survives() {
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            run(4, &|i| {
                if i == 2 {
                    panic!("scripted task failure");
                }
            });
        }));
        assert!(boom.is_err(), "worker panic must reach the submitter");
        // The team is still serviceable afterwards.
        let n = AtomicUsize::new(0);
        run(4, &|_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_task_panic_propagates_after_drain() {
        let others = AtomicUsize::new(0);
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            run(3, &|i| {
                if i == 0 {
                    panic!("caller task failure");
                }
                others.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(boom.is_err());
        // Both worker tasks finished before the panic resumed.
        assert_eq!(others.load(Ordering::SeqCst), 2);
        let n = AtomicUsize::new(0);
        run(2, &|_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let inner_total = AtomicUsize::new(0);
        run(3, &|_| {
            run(4, &|_| {
                inner_total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_total.load(Ordering::SeqCst), 12);
    }
}
