//! Definitional oracles used by tests and debug assertions across the
//! workspace. Everything here is written for *clarity*, not speed — these
//! are the specifications the fast incremental structures are checked
//! against.

use crate::bucket::core_decomposition;
use crate::korder::KOrder;
use kcore_graph::{DynamicGraph, VertexId};

/// `mcd(u)` — max-core degree: the number of neighbours `w` of `u` with
/// `core(w) >= core(u)` (Section IV).
pub fn compute_mcd(g: &DynamicGraph, core: &[u32]) -> Vec<u32> {
    (0..g.num_vertices() as VertexId)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .filter(|&&w| core[w as usize] >= core[u as usize])
                .count() as u32
        })
        .collect()
}

/// `pcd(u)` — pure-core degree: the number of neighbours `w` of `u` with
/// `core(w) > core(u)`, or `core(w) = core(u) ∧ mcd(w) > core(w)`
/// (Section IV).
pub fn compute_pcd(g: &DynamicGraph, core: &[u32], mcd: &[u32]) -> Vec<u32> {
    (0..g.num_vertices() as VertexId)
        .map(|u| {
            let cu = core[u as usize];
            g.neighbors(u)
                .iter()
                .filter(|&&w| {
                    let cw = core[w as usize];
                    cw > cu || (cw == cu && mcd[w as usize] > cw)
                })
                .count() as u32
        })
        .collect()
}

/// The `cd_h` hierarchy of the Trav-h enhancement (VLDBJ'16):
/// `cd_1 = mcd`, and for `l >= 2`,
/// `cd_l(u) = |{w ∈ nbr(u): core(w) > core(u) ∨ (core(w) = core(u) ∧
/// cd_{l−1}(w) > core(w))}|` — so `cd_2 = pcd`. Returns levels `1..=h`.
pub fn compute_cd_levels(g: &DynamicGraph, core: &[u32], h: usize) -> Vec<Vec<u32>> {
    assert!(h >= 1);
    let mut levels = Vec::with_capacity(h);
    levels.push(compute_mcd(g, core));
    for _ in 2..=h {
        let prev = levels.last().unwrap();
        let next: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|u| {
                let cu = core[u as usize];
                g.neighbors(u)
                    .iter()
                    .filter(|&&w| {
                        let cw = core[w as usize];
                        cw > cu || (cw == cu && prev[w as usize] > cw)
                    })
                    .count() as u32
            })
            .collect();
        levels.push(next);
    }
    levels
}

/// Checks that `ko` is a valid k-order of `g`:
///
/// 1. `ko.core` equals a fresh core decomposition;
/// 2. `ko.order` is a permutation of the vertices grouped as
///    `O_0 O_1 O_2 …`;
/// 3. `ko.deg_plus` counts later neighbours;
/// 4. Lemma 5.1 holds: `deg⁺(v) <= k` for every `v ∈ O_k`.
///
/// Returns a human-readable violation description on failure.
pub fn is_valid_korder(g: &DynamicGraph, ko: &KOrder) -> Result<(), String> {
    let n = g.num_vertices();
    if ko.core.len() != n || ko.order.len() != n || ko.deg_plus.len() != n {
        return Err(format!(
            "size mismatch: n={n}, core={}, order={}, deg+={}",
            ko.core.len(),
            ko.order.len(),
            ko.deg_plus.len()
        ));
    }
    let reference = core_decomposition(g);
    if ko.core != reference {
        let v = (0..n).find(|&v| ko.core[v] != reference[v]).unwrap();
        return Err(format!(
            "core mismatch at vertex {v}: stored {} vs recomputed {}",
            ko.core[v], reference[v]
        ));
    }
    // permutation check
    let mut seen = vec![false; n];
    for &v in &ko.order {
        if (v as usize) >= n || seen[v as usize] {
            return Err(format!("order is not a permutation (vertex {v})"));
        }
        seen[v as usize] = true;
    }
    // grouping: core values along the order must be non-decreasing
    for w in ko.order.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        if ko.core[a] > ko.core[b] {
            return Err(format!(
                "order not grouped by core: {} (core {}) before {} (core {})",
                w[0], ko.core[a], w[1], ko.core[b]
            ));
        }
    }
    // deg+ definition and Lemma 5.1
    let pos = ko.positions();
    for v in 0..n as VertexId {
        let later = g
            .neighbors(v)
            .iter()
            .filter(|&&w| pos[w as usize] > pos[v as usize])
            .count() as u32;
        if later != ko.deg_plus[v as usize] {
            return Err(format!(
                "deg+ mismatch at {v}: stored {} vs actual {later}",
                ko.deg_plus[v as usize]
            ));
        }
        if later > ko.core[v as usize] {
            return Err(format!(
                "Lemma 5.1 violated at {v}: deg+ {} > core {}",
                later, ko.core[v as usize]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::korder::{korder_decomposition, Heuristic};
    use kcore_graph::fixtures;

    #[test]
    fn mcd_pcd_on_paper_graph_match_fig3() {
        // Fig 3 annotates the u-region: interior chain vertices have
        // mcd 2, the leaves mcd 1; u0 has mcd 3 = pcd 3; the vertex one
        // step above a leaf has pcd 1 (the leaf does not count).
        let pg = fixtures::PaperGraph::full();
        let core = core_decomposition(&pg.graph);
        let mcd = compute_mcd(&pg.graph, &core);
        let pcd = compute_pcd(&pg.graph, &core, &mcd);
        let u = |i| pg.u(i) as usize;
        assert_eq!(mcd[u(0)], 3);
        assert_eq!(pcd[u(0)], 3);
        assert_eq!(mcd[u(1)], 2);
        assert_eq!(pcd[u(1)], 2);
        assert_eq!(mcd[u(1997)], 2);
        assert_eq!(pcd[u(1997)], 1); // Example 4.1
        assert_eq!(mcd[u(1999)], 1);
        assert_eq!(pcd[u(1999)], 1);
        assert_eq!(mcd[u(2000)], 1);
        assert_eq!(pcd[u(2000)], 1);
        assert_eq!(mcd[u(1998)], 2);
        assert_eq!(pcd[u(1998)], 1);
    }

    #[test]
    fn mcd_at_least_core_for_non_isolated() {
        // By the k-core definition, mcd(u) >= core(u).
        let g = fixtures::PaperGraph::small().graph;
        let core = core_decomposition(&g);
        let mcd = compute_mcd(&g, &core);
        for v in 0..g.num_vertices() {
            assert!(mcd[v] >= core[v]);
        }
    }

    #[test]
    fn pcd_never_exceeds_mcd() {
        let g = fixtures::petersen();
        let core = core_decomposition(&g);
        let mcd = compute_mcd(&g, &core);
        let pcd = compute_pcd(&g, &core, &mcd);
        for v in 0..g.num_vertices() {
            assert!(pcd[v] <= mcd[v]);
        }
    }

    #[test]
    fn cd_levels_are_monotone_decreasing() {
        // cd_{l+1} <= cd_l pointwise (more pruning as h grows).
        let g = fixtures::PaperGraph::small().graph;
        let core = core_decomposition(&g);
        let levels = compute_cd_levels(&g, &core, 5);
        assert_eq!(levels.len(), 5);
        for l in 1..levels.len() {
            for (v, (&hi, &lo)) in levels[l].iter().zip(levels[l - 1].iter()).enumerate() {
                assert!(hi <= lo, "cd_{}({v}) > cd_{}({v})", l + 1, l);
            }
        }
        // level 2 is pcd
        let mcd = compute_mcd(&g, &core);
        assert_eq!(levels[1], compute_pcd(&g, &core, &mcd));
    }

    #[test]
    fn validator_rejects_corruptions() {
        let g = fixtures::petersen();
        let good = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
        is_valid_korder(&g, &good).unwrap();

        let mut bad = good.clone();
        bad.core[0] += 1;
        assert!(is_valid_korder(&g, &bad).is_err());

        let mut bad = good.clone();
        bad.order.swap(0, 9);
        assert!(is_valid_korder(&g, &bad).is_err());

        let mut bad = good.clone();
        bad.deg_plus[3] = 99;
        assert!(is_valid_korder(&g, &bad).is_err());

        let mut bad = good.clone();
        bad.order[0] = bad.order[1];
        assert!(is_valid_korder(&g, &bad).is_err());
    }

    #[test]
    fn validator_enforces_lemma_5_1() {
        // Reversing O_k inside a cycle breaks deg+ <= k for the first
        // vertex: construct manually.
        let g = fixtures::cycle(4);
        let mut ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
        ko.order.reverse();
        // recompute deg_plus so the "deg+ definition" check passes and the
        // Lemma 5.1 check is exercised... a reversed valid order is valid
        // for a cycle only if deg+ stays <= 2, which it does; instead put
        // the last vertex first while claiming its old deg_plus.
        let pos = ko.positions();
        for v in 0..4u32 {
            ko.deg_plus[v as usize] = g
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count() as u32;
        }
        // For a 4-cycle any permutation has some vertex with both
        // neighbours later only if it's first; reversed order is still a
        // valid k-order, so this asserts acceptance.
        is_valid_korder(&g, &ko).unwrap();
    }
}
