//! # kcore-decomp
//!
//! Static k-core machinery:
//!
//! * [`bucket`] — the Batagelj–Zaversnik `O(m + n)` core decomposition
//!   (`CoreDecomp`, Algorithm 1 of the paper);
//! * [`par`] — the level-synchronous **parallel** peel
//!   (`par_core_decomposition{,_csr}`) with atomic degree counters and a
//!   scoped worker team, bit-identical to the sequential decomposition
//!   at every thread count;
//! * [`korder`] — peeling that additionally emits a **k-order** and the
//!   remaining degrees `deg⁺`, under the three victim-selection heuristics
//!   of Section VI (*small deg⁺ first* — the paper's choice —, *large* and
//!   *random*), used both to build the order index and for the Fig 9
//!   comparison;
//! * [`regions`] — subcore (`sc`), pure-core (`pc`) and order-core (`oc`)
//!   size analysis behind Fig 5;
//! * [`validate`] — definitional oracles (`core`, `mcd`, `pcd`, Lemma 5.1
//!   k-order validity) used by tests across the workspace.

pub mod bucket;
pub mod korder;
pub mod par;
pub mod regions;
pub mod team;
pub mod validate;

pub use bucket::{core_decomposition, core_decomposition_csr, max_core};
pub use korder::{
    korder_decomposition, korder_decomposition_par, korder_from_cores, korder_from_cores_par,
    Heuristic, KOrder,
};
pub use par::{par_core_decomposition, par_core_decomposition_csr, Parallelism};
pub use validate::{compute_mcd, compute_pcd, is_valid_korder};
