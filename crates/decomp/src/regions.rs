//! Subcore (`sc`), pure-core (`pc`, Definition 4.1) and order-core (`oc`,
//! Definition 5.4) size analysis — the machinery behind Fig 5, which
//! explains *why* the order-based algorithm visits so much less than the
//! traversal algorithm: `|oc|` has far smaller tail mass than `|pc|`/`|sc|`.

use crate::korder::KOrder;
use crate::validate::compute_mcd;
use kcore_graph::{DynamicGraph, VertexId};

/// Plain union-find with union by size and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// `|sc(u)|` for every vertex: the size of the maximal connected set of
/// same-core vertices containing `u` (Section III).
pub fn subcore_sizes(g: &DynamicGraph, core: &[u32]) -> Vec<u32> {
    let mut uf = UnionFind::new(g.num_vertices());
    for (u, v) in g.edges() {
        if core[u as usize] == core[v as usize] {
            uf.union(u, v);
        }
    }
    (0..g.num_vertices() as VertexId)
        .map(|v| uf.set_size(v))
        .collect()
}

/// `|pc(u)|` for every vertex (Definition 4.1): `pc(u) = {u} ∪ PC` where
/// `PC` is the maximal set of *qualified* vertices (`mcd(w) > core(w)`,
/// `core(w) = core(u)`) such that `{u} ∪ PC` is connected.
///
/// This is the worst-case search space of the traversal insertion
/// algorithm rooted at `u`.
pub fn purecore_sizes(g: &DynamicGraph, core: &[u32]) -> Vec<u32> {
    let n = g.num_vertices();
    let mcd = compute_mcd(g, core);
    let qualified: Vec<bool> = (0..n).map(|v| mcd[v] > core[v]).collect();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        if core[u as usize] == core[v as usize] && qualified[u as usize] && qualified[v as usize] {
            uf.union(u, v);
        }
    }
    let mut roots: Vec<u32> = Vec::with_capacity(8);
    (0..n as VertexId)
        .map(|u| {
            roots.clear();
            let cu = core[u as usize];
            let mut total = 0u32;
            if qualified[u as usize] {
                roots.push(uf.find(u));
                total += uf.set_size(u);
            } else {
                total += 1; // u itself, outside PC
            }
            for &w in g.neighbors(u) {
                if core[w as usize] == cu && qualified[w as usize] {
                    let r = uf.find(w);
                    if !roots.contains(&r) {
                        roots.push(r);
                        total += uf.set_size(w);
                    }
                }
            }
            total
        })
        .collect()
}

/// `|oc(u)|` (Definition 5.4): vertices reachable from `u` by paths that
/// stay within `core(u)`'s level and always move *forward* in the k-order.
/// This is the worst-case search space of `OrderInsert` rooted at `u`.
///
/// Exact per-vertex reachability in a DAG has no subquadratic algorithm,
/// so callers pass the subset of `vertices` to evaluate (the Fig 5 driver
/// samples; tests pass everything).
pub fn ordercore_sizes(g: &DynamicGraph, ko: &KOrder, vertices: &[VertexId]) -> Vec<u32> {
    let n = g.num_vertices();
    let pos = ko.positions();
    let mut mark = vec![u32::MAX; n];
    let mut stack: Vec<VertexId> = Vec::new();
    vertices
        .iter()
        .enumerate()
        .map(|(epoch, &start)| {
            let epoch = epoch as u32;
            let cu = ko.core[start as usize];
            let mut count = 0u32;
            stack.push(start);
            mark[start as usize] = epoch;
            while let Some(v) = stack.pop() {
                count += 1;
                for &w in g.neighbors(v) {
                    let wi = w as usize;
                    if mark[wi] != epoch && ko.core[wi] == cu && pos[wi] > pos[v as usize] {
                        mark[wi] = epoch;
                        stack.push(w);
                    }
                }
            }
            count
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::core_decomposition;
    use crate::korder::{korder_decomposition, Heuristic};
    use kcore_graph::fixtures;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.set_size(0), 2);
        assert_eq!(uf.set_size(2), 1);
        uf.union(1, 3);
        assert_eq!(uf.set_size(4), 4);
        // union of already-joined sets is a no-op
        let r = uf.union(0, 4);
        assert_eq!(uf.set_size(r), 4);
    }

    #[test]
    fn subcores_of_paper_graph() {
        // Example 3.1: one 1-subcore {u_i} (2001 vertices), one 2-subcore
        // {v1..v5}, two 3-subcores of 4 vertices each.
        let pg = fixtures::PaperGraph::full();
        let core = core_decomposition(&pg.graph);
        let sc = subcore_sizes(&pg.graph, &core);
        assert_eq!(sc[pg.u(0) as usize], 2001);
        assert_eq!(sc[pg.u(1500) as usize], 2001);
        for j in 1..=5 {
            assert_eq!(sc[pg.v(j) as usize], 5);
        }
        for j in 6..=13 {
            assert_eq!(sc[pg.v(j) as usize], 4);
        }
    }

    #[test]
    fn purecore_excludes_tight_vertices() {
        // In the u-chain, the two leaves have mcd = core = 1, so they are
        // not qualified; every interior vertex is. The pure core of an
        // interior chain vertex therefore spans the interior chain + u0
        // (all connected through u0) but not the leaves.
        let pg = fixtures::PaperGraph::small(); // chain = 20
        let core = core_decomposition(&pg.graph);
        let pc = purecore_sizes(&pg.graph, &core);
        // qualified u-vertices: u0..u18 (19 of them); leaves u19, u20 not.
        assert_eq!(pc[pg.u(0) as usize], 19);
        assert_eq!(pc[pg.u(17) as usize], 19);
        // A leaf's pure core: itself + the adjacent qualified component.
        assert_eq!(pc[pg.u(19) as usize], 20);
        // Clique vertices: their cross edges go to *lower*-core vertices,
        // which do not raise mcd, so mcd = 3 = core for all of v6..v13 —
        // nobody in the 3-level is qualified and every pure core there is
        // the vertex alone.
        for j in 6..=13 {
            assert_eq!(pc[pg.v(j) as usize], 1, "v{j}");
        }
        // The 2-level: v3 has mcd 4 > 2 (hub), so qualified; v1, v2 have
        // mcd > core too (v1: nbrs v2,v3,v6,v10 all core >= 2 -> mcd 4;
        // v2: v1,v3,v7 -> mcd 3); v4 (nbrs v3,v5 -> mcd 2 = core) and
        // v5 (nbrs v3,v4 core>=2, u0 core 1 -> mcd 2) are not.
        assert_eq!(pc[pg.v(4) as usize], 1 + 3); // v4 + {v3} comp {v1,v2,v3}
        assert_eq!(pc[pg.v(1) as usize], 3); // inside {v1,v2,v3}
    }

    #[test]
    fn ordercore_respects_order_direction() {
        let pg = fixtures::PaperGraph::small();
        let ko = korder_decomposition(&pg.graph, Heuristic::SmallDegFirst, 0);
        let all: Vec<u32> = (0..pg.graph.num_vertices() as u32).collect();
        let oc = ordercore_sizes(&pg.graph, &ko, &all);
        // The very last vertex of the global order reaches only itself
        // within its level.
        let last = *ko.order.last().unwrap();
        assert_eq!(oc[last as usize], 1);
        // Everybody reaches at least themselves, and the order core never
        // exceeds the subcore.
        let core = core_decomposition(&pg.graph);
        let sc = subcore_sizes(&pg.graph, &core);
        for v in 0..pg.graph.num_vertices() {
            assert!(oc[v] >= 1);
            assert!(oc[v] <= sc[v], "oc({v}) > sc({v})");
        }
    }

    #[test]
    fn ordercore_of_chain_orders() {
        // Path graph: O_1 ordering peels leaves inward; the oc of the
        // first-peeled vertex includes its forward chain.
        let g = fixtures::path(6);
        let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
        let all: Vec<u32> = (0..6).collect();
        let oc = ordercore_sizes(&g, &ko, &all);
        let first = ko.order[0];
        assert!(oc[first as usize] >= 2);
        let last = ko.order[5];
        assert_eq!(oc[last as usize], 1);
    }

    #[test]
    fn pc_at_least_one_and_bounded_by_level_size() {
        let g = fixtures::petersen();
        let core = core_decomposition(&g);
        let pc = purecore_sizes(&g, &core);
        // Petersen is 3-regular: mcd = 3 = core for everyone, nobody is
        // qualified, every pure core is the vertex alone.
        assert_eq!(pc, vec![1; 10]);
    }
}
