//! Parallel level-synchronous core decomposition.
//!
//! The bucket peel of [`crate::bucket`] is sequential only in its
//! bookkeeping: at any peeling threshold `k`, *every* vertex whose
//! remaining degree has fallen to `k` can be peeled concurrently — their
//! core number is already decided. This module exploits exactly that
//! structure (the ParK/PKC family of algorithms):
//!
//! 1. **Scan** — at the start of level `k`, the vertex range is scanned
//!    in parallel for the frontier `{v : deg(v) = k}` (the invariant
//!    "unassigned ⇒ `deg >= k`" makes the degree test sufficient — no
//!    visited flags needed). The same scan records the minimum remaining
//!    degree above `k`, so empty levels are jumped over without extra
//!    scans.
//! 2. **Peel rounds** — the frontier is split into per-thread chunks;
//!    each worker assigns `core = k` to its vertices and decrements the
//!    neighbours' remaining degrees through
//!    [`AtomicDegrees::decrement_above`], a floored CAS that (a) can
//!    never underflow past the level and (b) hands **exactly one**
//!    worker the `Some(k)` transition — that worker owns the neighbour's
//!    frontier insertion, so per-thread next-frontier buffers merge into
//!    a duplicate-free frontier between rounds. Rounds repeat until the
//!    level produces no new frontier, then the level advances.
//!
//! Core numbers are a function of the graph alone, so the parallel peel
//! is **bit-identical** to [`crate::core_decomposition`] at every thread
//! count — property-tested in `tests/proptest_decomp.rs` and asserted by
//! the `par` bench binary before it reports a single number.
//!
//! Work is distributed by [`run_ranges`]/[`run_chunks`], a minimal
//! fork-join layer over the long-lived [`crate::team`] worker pool (the
//! container is offline; no rayon): callers hand a [`Parallelism`]
//! config and small inputs never leave the calling thread
//! (`sequential_cutoff`).

use kcore_graph::{AtomicDegrees, CsrGraph, DynamicGraph, MappedCsr, VertexId};
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};

/// How many frontier slots ahead of the scan cursor the peel rounds
/// prefetch neighbour rows. Far enough to cover the decrement loop's
/// latency, near enough not to evict its own lines.
const PREFETCH_AHEAD: usize = 8;

/// Thread-count and granularity knobs for the parallel decompositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker count; `0` resolves to `std::thread::available_parallelism`.
    pub threads: usize,
    /// Frontiers (and scan ranges) smaller than this are processed on the
    /// calling thread — spawning for a 20-vertex frontier costs more than
    /// peeling it.
    pub sequential_cutoff: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            threads: 0,
            sequential_cutoff: 4096,
        }
    }
}

impl Parallelism {
    /// Auto-detect threads, default cutoff.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Exactly `threads` workers, default cutoff.
    pub fn exact(threads: usize) -> Self {
        Parallelism {
            threads,
            ..Self::default()
        }
    }

    /// Overrides the sequential cutoff (tests set 0 to force the
    /// multi-threaded path even on tiny graphs).
    pub fn with_cutoff(mut self, cutoff: usize) -> Self {
        self.sequential_cutoff = cutoff;
        self
    }

    /// The worker count this config resolves to on the current host.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Read-only neighbourhood access shared by the parallel peels. The
/// neighbour scan is closure-based (not slice-based) so row storage can
/// be anything linear — an adjacency arena, plain CSR rows, LEB128
/// delta-coded rows, or raw little-endian file bytes ([`MappedCsr`]).
pub trait PeelGraph: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;
    /// Calls `f` for every neighbour of `v`.
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F);
    /// Hints the hardware prefetcher at `v`'s row storage. Default no-op;
    /// the frontier loops call it [`PREFETCH_AHEAD`] slots early.
    #[inline]
    fn prefetch(&self, _v: VertexId) {}
    /// Degree snapshot (the atomic counters' initial values).
    fn degree_vec(&self) -> Vec<u32>;
}

impl PeelGraph for DynamicGraph {
    fn num_vertices(&self) -> usize {
        DynamicGraph::num_vertices(self)
    }
    fn degree(&self, v: VertexId) -> usize {
        DynamicGraph::degree(self, v)
    }
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, mut f: F) {
        for &w in DynamicGraph::neighbors(self, v) {
            f(w);
        }
    }
    fn degree_vec(&self) -> Vec<u32> {
        DynamicGraph::degree_vec(self)
    }
}

impl PeelGraph for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        CsrGraph::for_each_neighbor(self, v, f)
    }
    #[inline]
    fn prefetch(&self, v: VertexId) {
        self.prefetch_row(v)
    }
    fn degree_vec(&self) -> Vec<u32> {
        CsrGraph::degree_vec(self)
    }
}

impl<B: AsRef<[u8]> + Sync> PeelGraph for MappedCsr<B> {
    fn num_vertices(&self) -> usize {
        MappedCsr::num_vertices(self)
    }
    fn degree(&self, v: VertexId) -> usize {
        MappedCsr::degree(self, v)
    }
    fn for_each_neighbor<F: FnMut(VertexId)>(&self, v: VertexId, f: F) {
        MappedCsr::for_each_neighbor(self, v, f)
    }
    #[inline]
    fn prefetch(&self, v: VertexId) {
        self.prefetch_row(v)
    }
    fn degree_vec(&self) -> Vec<u32> {
        MappedCsr::degree_vec(self)
    }
}

/// Runs `f(thread_index, range)` over `threads` contiguous sub-ranges of
/// `0..len` on the shared [`crate::team`] worker pool, returning the
/// per-thread results in range order. Falls back to a single inline call
/// when `len` is below `cutoff` or one worker is requested. The range
/// partition is identical to the PR-3 scoped-spawn version, so every
/// caller's work distribution — and therefore every bit-identical
/// equivalence guarantee — is unchanged; only the dispatch mechanism
/// (parked long-lived workers instead of per-call spawns) differs.
pub fn run_ranges<R, F>(threads: usize, len: usize, cutoff: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if threads <= 1 || len < cutoff.max(2) {
        return vec![f(0, 0..len)];
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..workers).map(|_| std::sync::Mutex::new(None)).collect();
    let task = |t: usize| {
        let lo = (t * chunk).min(len);
        let hi = ((t + 1) * chunk).min(len);
        *slots[t].lock().unwrap() = Some(f(t, lo..hi));
    };
    crate::team::run(workers, &task);
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("team task skipped a range")
        })
        .collect()
}

/// [`run_ranges`] specialised to slicing an item list: `f(thread_index,
/// chunk_of_items)`.
pub fn run_chunks<T, R, F>(threads: usize, items: &[T], cutoff: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    run_ranges(threads, items.len(), cutoff, |t, range| f(t, &items[range]))
}

/// One peel round's per-worker harvest: vertices that fell onto the
/// current level (next frontier) and the smallest remaining degree seen
/// strictly above it (level-jump hint).
struct RoundHarvest {
    next: Vec<VertexId>,
    min_above: u32,
}

/// The level-synchronous peel shared by both graph representations.
fn par_peel<G: PeelGraph>(g: &G, par: &Parallelism) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let threads = par.resolved_threads().clamp(1, n);
    let cutoff = par.sequential_cutoff;

    let deg = AtomicDegrees::from_degrees(g.degree_vec());
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();

    let mut assigned = 0usize;
    let mut k = 0u32;
    while assigned < n {
        // ---- scan: frontier = {deg == k}; also the next occupied level.
        // Unassigned vertices always satisfy deg >= k (the CAS floor
        // forbids dropping below the active level, and every vertex
        // *landing* on the level is assigned within it), so the degree
        // test alone selects exactly the unpeeled frontier.
        let scans = run_ranges(threads, n, cutoff, |_, range| {
            let mut frontier = Vec::new();
            let mut min_above = u32::MAX;
            for v in range {
                let d = deg.load(v as VertexId);
                if d == k {
                    frontier.push(v as VertexId);
                } else if d > k && d < min_above {
                    min_above = d;
                }
            }
            RoundHarvest {
                next: frontier,
                min_above,
            }
        });
        let mut min_above = u32::MAX;
        let mut frontier: Vec<VertexId> = Vec::new();
        for s in scans {
            frontier.extend_from_slice(&s.next);
            min_above = min_above.min(s.min_above);
        }

        // ---- peel rounds at level k ----
        while !frontier.is_empty() {
            assigned += frontier.len();
            let harvests = run_chunks(threads, &frontier, cutoff, |_, chunk| {
                let mut next = Vec::new();
                let mut local_min = u32::MAX;
                for (i, &v) in chunk.iter().enumerate() {
                    // Linear-prefetch: frontier order is arbitrary, so the
                    // row of the vertex a few slots ahead is a cache miss
                    // the hardware can't predict — hint it now.
                    if let Some(&ahead) = chunk.get(i + PREFETCH_AHEAD) {
                        g.prefetch(ahead);
                    }
                    core[v as usize].store(k, Ordering::Relaxed);
                    g.for_each_neighbor(v, |u| {
                        match deg.decrement_above(u, k) {
                            // This worker performed the k+1 -> k
                            // transition: it alone enrols u.
                            Some(nd) if nd == k => next.push(u),
                            Some(nd) if nd < local_min => local_min = nd,
                            _ => {}
                        }
                    });
                }
                RoundHarvest {
                    next,
                    min_above: local_min,
                }
            });
            frontier.clear();
            for h in harvests {
                frontier.extend_from_slice(&h.next);
                min_above = min_above.min(h.min_above);
            }
        }

        // Jump straight to the next occupied level: min_above saw every
        // remaining degree, both at scan time and as the peel rounds
        // re-landed them.
        if min_above == u32::MAX {
            break; // no unassigned vertex remains
        }
        k = min_above;
    }
    debug_assert_eq!(assigned, n);

    core.into_iter().map(AtomicU32::into_inner).collect()
}

/// Parallel [`crate::core_decomposition`]: identical core numbers,
/// level-synchronous multi-threaded peel.
///
/// ```
/// use kcore_graph::fixtures;
/// use kcore_decomp::par::{par_core_decomposition, Parallelism};
///
/// let g = fixtures::petersen();
/// let core = par_core_decomposition(&g, &Parallelism::exact(2).with_cutoff(0));
/// assert_eq!(core, vec![3; 10]);
/// ```
pub fn par_core_decomposition(g: &DynamicGraph, par: &Parallelism) -> Vec<u32> {
    par_peel(g, par)
}

/// Parallel [`crate::core_decomposition_csr`]: identical core numbers,
/// level-synchronous multi-threaded peel over the frozen snapshot. The
/// contiguous CSR rows are the layout the peel's neighbour scans want;
/// this is the variant the `BENCH_par.json` speedup gate tracks.
pub fn par_core_decomposition_csr(g: &CsrGraph, par: &Parallelism) -> Vec<u32> {
    par_peel(g, par)
}

/// The parallel peel over any [`PeelGraph`] — the entry point for
/// delta-compressed CSR layouts and file-backed [`MappedCsr`] views,
/// which have no named wrapper of their own.
pub fn par_core_decomposition_peel<G: PeelGraph>(g: &G, par: &Parallelism) -> Vec<u32> {
    par_peel(g, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_decomposition;
    use kcore_graph::fixtures;

    fn check_all_thread_counts(g: &DynamicGraph) {
        let reference = core_decomposition(g);
        let csr = CsrGraph::from(g);
        let delta = csr.to_layout(kcore_graph::CsrLayout::Delta);
        for t in [1usize, 2, 3, 4] {
            let par = Parallelism::exact(t).with_cutoff(0);
            assert_eq!(
                par_core_decomposition(g, &par),
                reference,
                "dynamic peel diverged at {t} threads"
            );
            assert_eq!(
                par_core_decomposition_csr(&csr, &par),
                reference,
                "csr peel diverged at {t} threads"
            );
            assert_eq!(
                par_core_decomposition_peel(&delta, &par),
                reference,
                "delta-layout peel diverged at {t} threads"
            );
        }
    }

    #[test]
    fn matches_sequential_on_fixtures() {
        check_all_thread_counts(&fixtures::triangle());
        check_all_thread_counts(&fixtures::path(9));
        check_all_thread_counts(&fixtures::cycle(6));
        check_all_thread_counts(&fixtures::star(5));
        check_all_thread_counts(&fixtures::petersen());
        check_all_thread_counts(&fixtures::two_cliques_bridge());
        check_all_thread_counts(&fixtures::clique(9));
        check_all_thread_counts(&fixtures::PaperGraph::full().graph);
    }

    #[test]
    fn isolated_vertices_and_components() {
        // Isolated vertices (core 0) plus two disconnected cliques of
        // different degeneracy: the scan must seed every component.
        let mut g = DynamicGraph::with_vertices(20);
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.insert_edge(a, b).unwrap();
            }
        }
        for a in 10..16u32 {
            for b in (a + 1)..16 {
                g.insert_edge(a, b).unwrap();
            }
        }
        check_all_thread_counts(&g);
    }

    #[test]
    fn empty_graph() {
        assert!(par_core_decomposition(&DynamicGraph::new(), &Parallelism::auto()).is_empty());
        let csr = CsrGraph::from(&DynamicGraph::new());
        assert!(par_core_decomposition_csr(&csr, &Parallelism::auto()).is_empty());
    }

    #[test]
    fn level_jump_skips_degree_gaps() {
        // A star has degrees {1, n}: after level 1 the peel must jump
        // straight to the hub's remaining level without scanning the gap.
        let g = fixtures::star(64);
        check_all_thread_counts(&g);
    }

    #[test]
    fn auto_parallelism_resolves() {
        let p = Parallelism::auto();
        assert!(p.resolved_threads() >= 1);
        assert_eq!(Parallelism::exact(3).resolved_threads(), 3);
    }

    #[test]
    fn mapped_csr_peels_identically() {
        let g = fixtures::PaperGraph::small().graph;
        let reference = core_decomposition(&g);
        let csr = CsrGraph::from(&g);
        let dir = std::env::temp_dir().join("kcore_par_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper_small.kcsr");
        kcore_graph::save_csr(&csr, &path).unwrap();
        let mapped = kcore_graph::load_csr_mapped(&path).unwrap();
        std::fs::remove_file(path).ok();
        for t in [1usize, 2, 4] {
            let par = Parallelism::exact(t).with_cutoff(0);
            assert_eq!(
                par_core_decomposition_peel(&mapped, &par),
                reference,
                "mapped peel diverged at {t} threads"
            );
        }
    }

    #[test]
    fn run_helpers_cover_all_items() {
        let items: Vec<u32> = (0..1000).collect();
        let sums = run_chunks(4, &items, 0, |_, chunk| chunk.iter().sum::<u32>());
        assert_eq!(sums.iter().sum::<u32>(), items.iter().sum::<u32>());
        let counts = run_ranges(3, 17, 0, |_, r| r.len());
        assert_eq!(counts.iter().sum::<usize>(), 17);
    }
}
