//! Peeling that emits a **k-order** (Definition 5.1) together with core
//! numbers and remaining degrees `deg⁺` (Definition 5.2).
//!
//! This is Algorithm 1 with the Section-VI instrumentation — "append `u` to
//! `O_{k−1}`; `deg⁺(u) ← deg(u)`" — and a pluggable victim-selection
//! heuristic among the vertices eligible for removal (`deg < k`):
//!
//! * [`Heuristic::SmallDegFirst`] — the paper's choice: always peel a
//!   vertex of minimum remaining degree (lazy bucket queue, `O(m + n)`);
//! * [`Heuristic::LargeDegFirst`] — peel a maximum-remaining-degree
//!   eligible vertex (lazy max-heap, `O(m log n)`);
//! * [`Heuristic::RandomDegFirst`] — peel a uniformly random eligible
//!   vertex (`O(m + n)` expected).
//!
//! All three produce *valid* k-orders (every victim satisfies `deg < k`);
//! they differ only in tie-breaking, which is precisely what Fig 9
//! compares.

use kcore_graph::{DynamicGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Victim-selection heuristic for k-order generation (Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Peel minimum remaining degree first (the paper's default).
    SmallDegFirst,
    /// Peel maximum remaining degree first.
    LargeDegFirst,
    /// Peel a uniformly random eligible vertex.
    RandomDegFirst,
}

impl Heuristic {
    /// All heuristics, in the order Fig 9 reports them.
    pub const ALL: [Heuristic; 3] = [
        Heuristic::SmallDegFirst,
        Heuristic::LargeDegFirst,
        Heuristic::RandomDegFirst,
    ];

    /// Display label used by the experiment binaries.
    pub fn label(self) -> &'static str {
        match self {
            Heuristic::SmallDegFirst => "small-deg+-first",
            Heuristic::LargeDegFirst => "large-deg+-first",
            Heuristic::RandomDegFirst => "random-deg+-first",
        }
    }
}

/// The output of a k-order decomposition.
#[derive(Debug, Clone)]
pub struct KOrder {
    /// Core number per vertex.
    pub core: Vec<u32>,
    /// Global peel order: the concatenation `O_0 O_1 O_2 …`.
    pub order: Vec<VertexId>,
    /// Remaining degree `deg⁺(v)` — the number of neighbours of `v` that
    /// appear *after* `v` in `order`.
    pub deg_plus: Vec<u32>,
}

impl KOrder {
    /// Position of every vertex in `order` (inverse permutation).
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, &v) in self.order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        pos
    }

    /// The `O_k` block: vertices with core number `k`, in k-order.
    pub fn block(&self, k: u32) -> Vec<VertexId> {
        self.order
            .iter()
            .copied()
            .filter(|&v| self.core[v as usize] == k)
            .collect()
    }
}

/// Eligible-vertex pool behind the three heuristics. Entries are inserted
/// lazily (possibly duplicated as degrees decay) and validated at pop time.
enum Pool {
    Small {
        /// `buckets[d]` holds candidates whose remaining degree was `d`
        /// when pushed (may be stale).
        buckets: Vec<Vec<u32>>,
        min_d: usize,
    },
    Large {
        /// Max-heap of `(remaining_degree_at_push, vertex)`.
        heap: std::collections::BinaryHeap<(u32, u32)>,
    },
    Random {
        pool: Vec<u32>,
        rng: SmallRng,
    },
}

impl Pool {
    fn new(h: Heuristic, max_deg: usize, seed: u64) -> Self {
        match h {
            Heuristic::SmallDegFirst => Pool::Small {
                buckets: vec![Vec::new(); max_deg + 1],
                min_d: 0,
            },
            Heuristic::LargeDegFirst => Pool::Large {
                heap: std::collections::BinaryHeap::new(),
            },
            Heuristic::RandomDegFirst => Pool::Random {
                pool: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
            },
        }
    }

    /// Registers `v` with current remaining degree `d`. For `Random`, the
    /// caller guarantees `v` is not already pooled (degrees only decrease,
    /// so threshold-crossing happens once per round).
    fn push(&mut self, v: u32, d: u32) {
        match self {
            Pool::Small { buckets, min_d } => {
                buckets[d as usize].push(v);
                *min_d = (*min_d).min(d as usize);
            }
            Pool::Large { heap } => heap.push((d, v)),
            Pool::Random { pool, .. } => pool.push(v),
        }
    }

    /// Pops the next victim according to the heuristic; `rdeg`/`removed`
    /// validate stale entries.
    fn pop(&mut self, rdeg: &[u32], removed: &[bool]) -> Option<u32> {
        match self {
            Pool::Small { buckets, min_d } => loop {
                while *min_d < buckets.len() && buckets[*min_d].is_empty() {
                    *min_d += 1;
                }
                if *min_d >= buckets.len() {
                    return None;
                }
                let v = buckets[*min_d].pop().unwrap();
                if !removed[v as usize] && rdeg[v as usize] as usize == *min_d {
                    return Some(v);
                }
            },
            Pool::Large { heap } => loop {
                let (d, v) = heap.pop()?;
                if !removed[v as usize] && rdeg[v as usize] == d {
                    return Some(v);
                }
            },
            Pool::Random { pool, rng } => loop {
                if pool.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..pool.len());
                let v = pool.swap_remove(i);
                if !removed[v as usize] {
                    return Some(v);
                }
            },
        }
    }
}

/// Runs Algorithm 1 with the given heuristic, producing core numbers, the
/// global k-order, and `deg⁺`.
///
/// ```
/// use kcore_graph::fixtures;
/// use kcore_decomp::{korder_decomposition, Heuristic};
///
/// let g = fixtures::cycle(5);
/// let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 42);
/// assert_eq!(ko.core, vec![2; 5]);
/// assert!(ko.deg_plus.iter().all(|&d| d <= 2)); // Lemma 5.1
/// ```
pub fn korder_decomposition(g: &DynamicGraph, heuristic: Heuristic, seed: u64) -> KOrder {
    let (core, order) = peel_order(g, heuristic, seed);
    let deg_plus = deg_plus_of_order(g, &order, &crate::par::Parallelism::exact(1));
    KOrder {
        core,
        order,
        deg_plus,
    }
}

/// [`korder_decomposition`] with the embarrassingly parallel phases run on
/// the [`crate::par`] worker team: the final `deg⁺` recomputation (an
/// `O(m)` neighbour scan, the only phase that touches every edge *after*
/// the peel) is chunked across threads.
///
/// The victim-selection loop itself stays sequential **on purpose**: the
/// emitted k-order's tie-breaks depend on the exact global event order in
/// which vertices cross the round threshold (the waiting-bucket drains
/// interleave across levels), so any concurrent victim pool would produce
/// a different — still valid, but not reproducible — order. Keeping it
/// serial preserves the deterministic tie-break order: the returned
/// `order` is **bit-identical** to [`korder_decomposition`] at every
/// thread count (unit-tested below), which downstream index builds rely
/// on for reproducibility.
pub fn korder_decomposition_par(
    g: &DynamicGraph,
    heuristic: Heuristic,
    seed: u64,
    par: &crate::par::Parallelism,
) -> KOrder {
    let (core, order) = peel_order(g, heuristic, seed);
    let deg_plus = deg_plus_of_order(g, &order, par);
    KOrder {
        core,
        order,
        deg_plus,
    }
}

/// `deg⁺` from final positions: neighbours occurring later in the order.
/// Chunked over the vertex range when `par` resolves to several workers.
fn deg_plus_of_order(
    g: &DynamicGraph,
    order: &[VertexId],
    par: &crate::par::Parallelism,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    let threads = par.resolved_threads();
    let chunks = crate::par::run_ranges(threads, n, par.sequential_cutoff, |_, range| {
        range
            .map(|v| {
                let pv = pos[v];
                g.neighbors(v as u32)
                    .iter()
                    .filter(|&&w| pos[w as usize] > pv)
                    .count() as u32
            })
            .collect::<Vec<u32>>()
    });
    let mut deg_plus = Vec::with_capacity(n);
    for c in chunks {
        deg_plus.extend_from_slice(&c);
    }
    deg_plus
}

/// Builds a k-order from **already computed** core numbers — the
/// recompute→k-order bridge. After `core_decomposition` (or the parallel
/// peel) has refreshed the cores, this emits a valid k-order in
/// `O(m + n)` without paying the victim-selection machinery of
/// [`korder_decomposition`] again: the adaptive planner's recompute
/// fallback uses it to restore the order index, and the persistence layer
/// could bulk-load through it.
///
/// The order is produced by a *constrained* peel: levels ascend, and
/// within level `k` a FIFO of core-`k` vertices whose remaining degree
/// has dropped to `<= k` is drained. Every emitted vertex therefore
/// satisfies the Algorithm 1 eligibility rule at its own level, so
/// Lemma 5.1 (`deg⁺(v) <= core(v)`) holds along the order by
/// construction — [`crate::validate::is_valid_korder`] accepts the
/// result (property-tested).
///
/// `core` **must** be the exact core numbers of `g`; the constrained peel
/// stalls otherwise and the function panics rather than emit a corrupt
/// order.
pub fn korder_from_cores(g: &DynamicGraph, core: &[u32]) -> KOrder {
    korder_from_cores_par(g, core, &crate::par::Parallelism::exact(1))
}

/// [`korder_from_cores`] with the `deg⁺` finalisation chunked over the
/// [`crate::par`] worker team (the peel itself is `O(m + n)` and stays
/// sequential; its emitted order is identical at every thread count).
pub fn korder_from_cores_par(
    g: &DynamicGraph,
    core: &[u32],
    par: &crate::par::Parallelism,
) -> KOrder {
    let n = g.num_vertices();
    assert_eq!(core.len(), n, "core slice must cover every vertex");
    let mut rdeg: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId) as u32).collect();
    let max_k = core.iter().copied().max().unwrap_or(0);
    // Bucket vertices by core value (counting sort keeps ids ascending
    // within a level, so the emitted order is deterministic).
    let mut level_start = vec![0u32; max_k as usize + 2];
    for &c in core {
        level_start[c as usize + 1] += 1;
    }
    for k in 1..level_start.len() {
        level_start[k] += level_start[k - 1];
    }
    let mut by_core = vec![0u32; n];
    {
        let mut next = level_start.clone();
        for (v, &c) in core.iter().enumerate() {
            by_core[next[c as usize] as usize] = v as u32;
            next[c as usize] += 1;
        }
    }

    let mut queued = vec![false; n];
    let mut peeled = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue: Vec<VertexId> = Vec::new();
    for k in 0..=max_k {
        // Seed: level-k vertices already at or under the threshold.
        queue.clear();
        let (lo, hi) = (level_start[k as usize], level_start[k as usize + 1]);
        for &v in &by_core[lo as usize..hi as usize] {
            if rdeg[v as usize] <= k {
                queued[v as usize] = true;
                queue.push(v);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            peeled[v as usize] = true;
            order.push(v);
            for &w in g.neighbors(v) {
                let wi = w as usize;
                if peeled[wi] {
                    continue;
                }
                rdeg[wi] -= 1;
                if !queued[wi] && core[wi] == k && rdeg[wi] <= k {
                    queued[wi] = true;
                    queue.push(w);
                }
            }
        }
        assert_eq!(
            queue.len() as u32,
            hi - lo,
            "core numbers do not match the graph (level {k} stalled)"
        );
    }
    debug_assert_eq!(order.len(), n);

    let deg_plus = deg_plus_of_order(g, &order, par);
    KOrder {
        core: core.to_vec(),
        order,
        deg_plus,
    }
}

/// The sequential victim loop of Algorithm 1: core numbers plus the
/// deterministic peel order (shared by the sequential and phase-parallel
/// entry points).
fn peel_order(g: &DynamicGraph, heuristic: Heuristic, seed: u64) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut rdeg: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId) as u32).collect();
    let mut removed = vec![false; n];
    let mut pooled = vec![false; n];
    let mut core = vec![0u32; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    let mut pool = Pool::new(heuristic, g.max_degree(), seed);
    // waiting[d] holds (possibly stale) vertices whose remaining degree was
    // d when last touched while still >= the round threshold; bucket d is
    // drained into the pool exactly once, when k reaches d + 1.
    let mut waiting: Vec<Vec<u32>> = vec![Vec::new(); g.max_degree() + 1];
    for v in 0..n as u32 {
        waiting[rdeg[v as usize] as usize].push(v);
    }
    let mut left = n;
    let mut k: u32 = 1;
    while left > 0 {
        // Vertices crossing the threshold as k grows: rdeg == k - 1 now.
        if let Some(bucket) = waiting.get_mut(k as usize - 1) {
            for v in std::mem::take(bucket) {
                let vi = v as usize;
                if !removed[vi] && !pooled[vi] && rdeg[vi] < k {
                    pooled[vi] = true;
                    pool.push(v, rdeg[vi]);
                }
            }
        }
        while let Some(v) = pool.pop(&rdeg, &removed) {
            removed[v as usize] = true;
            left -= 1;
            core[v as usize] = k - 1;
            order.push(v);
            for &w in g.neighbors(v) {
                let wi = w as usize;
                if removed[wi] {
                    continue;
                }
                rdeg[wi] -= 1;
                if rdeg[wi] < k {
                    if !pooled[wi] {
                        pooled[wi] = true;
                        pool.push(w, rdeg[wi]);
                    } else if !matches!(heuristic, Heuristic::RandomDegFirst) {
                        // re-key under the new degree (lazy duplicate)
                        pool.push(w, rdeg[wi]);
                    }
                } else {
                    // still above threshold: park for a later round
                    waiting[rdeg[wi] as usize].push(w);
                }
            }
        }
        k += 1;
    }

    (core, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::core_decomposition;
    use crate::validate::is_valid_korder;
    use kcore_graph::fixtures;

    fn check_all_heuristics(g: &DynamicGraph) {
        let reference = core_decomposition(g);
        for h in Heuristic::ALL {
            let ko = korder_decomposition(g, h, 7);
            assert_eq!(ko.core, reference, "{h:?} core mismatch");
            is_valid_korder(g, &ko).unwrap_or_else(|e| panic!("{h:?}: {e}"));
        }
    }

    #[test]
    fn all_heuristics_on_fixtures() {
        check_all_heuristics(&fixtures::triangle());
        check_all_heuristics(&fixtures::path(6));
        check_all_heuristics(&fixtures::star(5));
        check_all_heuristics(&fixtures::petersen());
        check_all_heuristics(&fixtures::two_cliques_bridge());
        check_all_heuristics(&fixtures::complete_bipartite(3, 4));
        check_all_heuristics(&fixtures::PaperGraph::small().graph);
    }

    #[test]
    fn order_is_grouped_by_core() {
        let pg = fixtures::PaperGraph::small();
        let ko = korder_decomposition(&pg.graph, Heuristic::SmallDegFirst, 0);
        let cores_along: Vec<u32> = ko.order.iter().map(|&v| ko.core[v as usize]).collect();
        let mut sorted = cores_along.clone();
        sorted.sort_unstable();
        assert_eq!(cores_along, sorted, "order must be O_0 O_1 O_2 …");
    }

    #[test]
    fn deg_plus_counts_later_neighbours() {
        let g = fixtures::cycle(4);
        let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
        // In a 4-cycle, the first peeled vertex has both neighbours later,
        // the last has none.
        let first = ko.order[0] as usize;
        let last = ko.order[3] as usize;
        assert_eq!(ko.deg_plus[first], 2);
        assert_eq!(ko.deg_plus[last], 0);
        let total: u32 = ko.deg_plus.iter().sum();
        assert_eq!(total as usize, g.num_edges());
    }

    #[test]
    fn deg_plus_total_is_edge_count() {
        // Every edge contributes to exactly one endpoint's deg+.
        for h in Heuristic::ALL {
            let g = fixtures::PaperGraph::small().graph;
            let ko = korder_decomposition(&g, h, 3);
            let total: u32 = ko.deg_plus.iter().sum();
            assert_eq!(total as usize, g.num_edges());
        }
    }

    #[test]
    fn block_extraction() {
        let pg = fixtures::PaperGraph::small();
        let ko = korder_decomposition(&pg.graph, Heuristic::SmallDegFirst, 0);
        assert_eq!(ko.block(2).len(), 5);
        assert_eq!(ko.block(3).len(), 8);
        assert_eq!(ko.block(1).len(), 21);
        assert_eq!(ko.block(7), Vec::<u32>::new());
    }

    #[test]
    fn positions_invert_order() {
        let g = fixtures::petersen();
        let ko = korder_decomposition(&g, Heuristic::RandomDegFirst, 5);
        let pos = ko.positions();
        for (i, &v) in ko.order.iter().enumerate() {
            assert_eq!(pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn phase_parallel_korder_is_bit_identical() {
        use crate::par::Parallelism;
        let graphs = [
            fixtures::PaperGraph::small().graph,
            fixtures::petersen(),
            fixtures::two_cliques_bridge(),
            DynamicGraph::with_vertices(4),
        ];
        for g in &graphs {
            for h in Heuristic::ALL {
                let seq = korder_decomposition(g, h, 13);
                for t in [1usize, 2, 4] {
                    let par =
                        korder_decomposition_par(g, h, 13, &Parallelism::exact(t).with_cutoff(0));
                    assert_eq!(par.order, seq.order, "{h:?} order diverged at {t} threads");
                    assert_eq!(par.core, seq.core);
                    assert_eq!(par.deg_plus, seq.deg_plus);
                }
            }
        }
    }

    #[test]
    fn korder_from_cores_is_valid_on_fixtures() {
        for g in [
            fixtures::triangle(),
            fixtures::path(6),
            fixtures::star(5),
            fixtures::petersen(),
            fixtures::two_cliques_bridge(),
            fixtures::complete_bipartite(3, 4),
            fixtures::PaperGraph::small().graph,
            DynamicGraph::with_vertices(3),
            DynamicGraph::new(),
        ] {
            let core = core_decomposition(&g);
            let ko = korder_from_cores(&g, &core);
            assert_eq!(ko.core, core, "bridge must preserve the given cores");
            is_valid_korder(&g, &ko).unwrap();
        }
    }

    #[test]
    fn korder_from_cores_matches_par_finalisation() {
        use crate::par::Parallelism;
        let g = fixtures::PaperGraph::small().graph;
        let core = core_decomposition(&g);
        let seq = korder_from_cores(&g, &core);
        for t in [2usize, 4] {
            let par = korder_from_cores_par(&g, &core, &Parallelism::exact(t).with_cutoff(0));
            assert_eq!(par.order, seq.order, "peel must be thread-independent");
            assert_eq!(par.deg_plus, seq.deg_plus);
        }
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn korder_from_cores_rejects_wrong_cores() {
        let g = fixtures::triangle();
        // Claiming core 1 for a triangle stalls the constrained peel:
        // every remaining degree is 2, so nothing is eligible at level 1.
        korder_from_cores(&g, &[1, 1, 1]);
    }

    #[test]
    fn random_heuristic_is_seed_deterministic() {
        let g = fixtures::PaperGraph::small().graph;
        let a = korder_decomposition(&g, Heuristic::RandomDegFirst, 11);
        let b = korder_decomposition(&g, Heuristic::RandomDegFirst, 11);
        assert_eq!(a.order, b.order);
        let c = korder_decomposition(&g, Heuristic::RandomDegFirst, 12);
        // Extremely likely to differ on a 34-vertex graph.
        assert_ne!(a.order, c.order);
    }

    #[test]
    fn empty_and_isolated() {
        let ko = korder_decomposition(&DynamicGraph::new(), Heuristic::SmallDegFirst, 0);
        assert!(ko.order.is_empty());
        let g = DynamicGraph::with_vertices(3);
        let ko = korder_decomposition(&g, Heuristic::SmallDegFirst, 0);
        assert_eq!(ko.core, vec![0, 0, 0]);
        assert_eq!(ko.order.len(), 3);
    }
}
