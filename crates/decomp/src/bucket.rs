//! The Batagelj–Zaversnik `O(m + n)` core decomposition ("`CoreDecomp`",
//! Algorithm 1 of the paper).
//!
//! Vertices are bin-sorted by degree; the minimum-degree vertex is peeled
//! repeatedly, its neighbours' degrees decremented with the classic
//! position-swap trick that keeps the bin sort valid without re-sorting.

use kcore_graph::{CsrGraph, DynamicGraph, VertexId};

/// Computes the core number of every vertex in `O(m + n)`.
///
/// ```
/// use kcore_graph::fixtures;
/// use kcore_decomp::core_decomposition;
///
/// let g = fixtures::clique(5);
/// assert_eq!(core_decomposition(&g), vec![4, 4, 4, 4, 4]);
/// ```
pub fn core_decomposition(g: &DynamicGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let max_deg = g.max_degree();

    // deg holds current (remaining) degrees; it doubles as the output,
    // because when a vertex is peeled its core number equals the peeling
    // threshold, and the threshold equals its clamped remaining degree.
    let mut deg: Vec<u32> = g.degree_vec();

    // Bin sort: bin[d] = first index in `vert` of the block of degree d.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    // vert = vertices sorted by degree; pos = inverse permutation.
    let mut vert = vec![0u32; n];
    let mut pos = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            vert[next[d] as usize] = v as u32;
            pos[v] = next[d];
            next[d] += 1;
        }
    }
    // bin[d] now = start of degree-d block (bin was exclusive-prefix sums).

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = deg[v];
        // Peel v: every neighbour with a larger current degree moves one
        // block to the left.
        for idx in 0..g.degree(v as VertexId) {
            let u = g.neighbors(v as VertexId)[idx] as usize;
            if deg[u] > deg[v] {
                let du = deg[u] as usize;
                let pu = pos[u] as usize;
                let pw = bin[du] as usize; // first slot of u's block
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw as u32;
                    pos[w] = pu as u32;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    core
}

/// [`core_decomposition`] specialised to a frozen [`CsrGraph`] snapshot:
/// identical algorithm, contiguous adjacency. Static pipelines (offline
/// analysis, the Fig 5 drivers) freeze once and decompose faster; the
/// `index_build` Criterion bench quantifies the gap.
pub fn core_decomposition_csr(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Cached at freeze time — no O(n) rescan per decomposition.
    let max_deg = g.max_degree();
    let mut deg: Vec<u32> = g.degree_vec();
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for d in 1..bin.len() {
        bin[d] += bin[d - 1];
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0u32; n];
    {
        let mut next = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            vert[next[d] as usize] = v as u32;
            pos[v] = next[d];
            next[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = deg[v];
        for &w in g.neighbors(v as VertexId) {
            let u = w as usize;
            if deg[u] > deg[v] {
                let du = deg[u] as usize;
                let pu = pos[u] as usize;
                let pw = bin[du] as usize;
                let x = vert[pw] as usize;
                if u != x {
                    vert.swap(pu, pw);
                    pos[u] = pw as u32;
                    pos[x] = pu as u32;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    core
}

/// The degeneracy of the graph: `max_k` of Table I.
pub fn max_core(core: &[u32]) -> u32 {
    core.iter().copied().max().unwrap_or(0)
}

/// Histogram of core numbers: `hist[k]` = number of vertices with core `k`.
pub fn core_histogram(core: &[u32]) -> Vec<usize> {
    let max = max_core(core) as usize;
    let mut hist = vec![0usize; max + 1];
    for &c in core {
        hist[c as usize] += 1;
    }
    hist
}

/// Extracts the vertex set of the `k`-core given the core numbers.
pub fn kcore_vertices(core: &[u32], k: u32) -> Vec<VertexId> {
    core.iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Builds the `k`-core subgraph (on the original vertex ids; vertices
/// outside the core become isolated).
pub fn kcore_subgraph(g: &DynamicGraph, core: &[u32], k: u32) -> DynamicGraph {
    let mut sub = DynamicGraph::with_vertices(g.num_vertices());
    for (u, v) in g.edges() {
        if core[u as usize] >= k && core[v as usize] >= k {
            sub.insert_edge_unchecked(u, v);
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::fixtures;

    /// Reference quadratic implementation: peel any vertex below threshold.
    pub(crate) fn naive_core(g: &DynamicGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut deg: Vec<i64> = (0..n).map(|v| g.degree(v as u32) as i64).collect();
        let mut removed = vec![false; n];
        let mut core = vec![0u32; n];
        let mut k = 0i64;
        let mut left = n;
        while left > 0 {
            let mut progress = true;
            while progress {
                progress = false;
                for v in 0..n {
                    if !removed[v] && deg[v] < k {
                        removed[v] = true;
                        left -= 1;
                        core[v] = (k - 1).max(0) as u32;
                        for &w in g.neighbors(v as u32) {
                            deg[w as usize] -= 1;
                        }
                        progress = true;
                    }
                }
            }
            k += 1;
        }
        core
    }

    #[test]
    fn cores_of_basic_fixtures() {
        assert_eq!(core_decomposition(&fixtures::triangle()), vec![2, 2, 2]);
        assert_eq!(core_decomposition(&fixtures::path(4)), vec![1; 4]);
        assert_eq!(core_decomposition(&fixtures::cycle(6)), vec![2; 6]);
        assert_eq!(core_decomposition(&fixtures::star(5)), vec![1; 6]);
        assert_eq!(core_decomposition(&fixtures::petersen()), vec![3; 10]);
        assert_eq!(
            core_decomposition(&fixtures::complete_bipartite(2, 4)),
            vec![2; 6]
        );
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let mut g = DynamicGraph::with_vertices(3);
        g.insert_edge(0, 1).unwrap();
        assert_eq!(core_decomposition(&g), vec![1, 1, 0]);
    }

    #[test]
    fn empty_graph() {
        assert!(core_decomposition(&DynamicGraph::new()).is_empty());
        assert_eq!(max_core(&[]), 0);
    }

    #[test]
    fn paper_graph_cores_match_example_3_1() {
        let pg = fixtures::PaperGraph::full();
        let core = core_decomposition(&pg.graph);
        assert_eq!(core, pg.expected_cores());
    }

    #[test]
    fn matches_naive_on_bridged_cliques() {
        let g = fixtures::two_cliques_bridge();
        assert_eq!(core_decomposition(&g), naive_core(&g));
        assert_eq!(core_decomposition(&g), vec![3; 8]);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        // Deterministic xorshift edge soup at several densities.
        for (seed, n, m) in [(1u64, 40usize, 60usize), (2, 60, 200), (3, 80, 600)] {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut g = DynamicGraph::with_vertices(n);
            let mut added = 0;
            while added < m {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                if u != v && !g.has_edge(u, v) {
                    g.insert_edge_unchecked(u, v);
                    added += 1;
                }
            }
            assert_eq!(core_decomposition(&g), naive_core(&g), "seed {seed}");
        }
    }

    #[test]
    fn histogram_and_kcore_extraction() {
        let pg = fixtures::PaperGraph::small();
        let core = core_decomposition(&pg.graph);
        let hist = core_histogram(&core);
        assert_eq!(hist[3], 8); // the two 4-cliques
        assert_eq!(hist[2], 5);
        assert_eq!(hist[1], 21);
        let three = kcore_vertices(&core, 3);
        assert_eq!(three.len(), 8);
        let sub = kcore_subgraph(&pg.graph, &core, 3);
        assert_eq!(sub.num_edges(), 12); // two K4s
        for v in three {
            assert_eq!(sub.degree(v), 3);
        }
    }

    #[test]
    fn max_core_of_clique() {
        let core = core_decomposition(&fixtures::clique(7));
        assert_eq!(max_core(&core), 6);
    }
}

#[cfg(test)]
mod csr_tests {
    use super::*;
    use kcore_graph::fixtures;

    #[test]
    fn csr_decomposition_matches_dynamic() {
        for g in [
            fixtures::PaperGraph::small().graph,
            fixtures::petersen(),
            fixtures::two_cliques_bridge(),
            DynamicGraph::with_vertices(5),
        ] {
            let csr = CsrGraph::from(&g);
            assert_eq!(core_decomposition_csr(&csr), core_decomposition(&g));
        }
    }

    #[test]
    fn csr_decomposition_empty() {
        let csr = CsrGraph::from(&DynamicGraph::new());
        assert!(core_decomposition_csr(&csr).is_empty());
    }
}
