//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate vendors
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::sample::Index`, `prop_map`, and `prop_oneof!`.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//!
//! * **no shrinking** — a failing case reports its case index and the
//!   deterministic per-test seed instead of a minimised input;
//! * case generation is deterministic per test name (stable across runs
//!   and platforms), so failures always reproduce.

use std::marker::PhantomData;

/// Deterministic RNG driving case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty());
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// `any::<T>()` — the canonical strategy for `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection`, `prop::sample`).

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};

        /// Inclusive size bounds for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy producing `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        //! Sampling helpers.

        use crate::{Arbitrary, TestRng};

        /// An index into a not-yet-known-length collection.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves against a concrete length (`len > 0`).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a proptest case; failure aborts only the current case
/// runner with a panic carrying the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("prop_assert!({}) failed", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "prop_assert_eq! failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "prop_assert_ne! failed: {} == {} ({:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Filters the current case out (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(::std::format!(
                "prop_assume!({})",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The property-test entry macro: expands each `fn name(bindings) { .. }`
/// into a `#[test]` running `cases` deterministic cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                        stringify!($name),
                        __attempts,
                        __config.cases
                    );
                }
                $(let __generated = $crate::Strategy::generate(&($s), &mut __rng);
                  let $p = __generated;)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => { __ran += 1; }
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            __ran,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1u8..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_and_map_compose(
            ops in prop::collection::vec(
                prop_oneof![
                    (0u32..5).prop_map(|a| (true, a)),
                    (5u32..10).prop_map(|a| (false, a)),
                ],
                0..20,
            )
        ) {
            for (small, a) in ops {
                prop_assert_eq!(small, a < 5);
            }
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
