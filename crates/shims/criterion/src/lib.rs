//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate vendors
//! the subset of the criterion API the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery each benchmark runs a
//! short warm-up, then measures batches until a fixed wall-clock budget
//! is spent, and prints the mean time per iteration. Good enough to
//! rank alternatives and catch order-of-magnitude regressions; not a
//! substitute for real criterion confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark (after warm-up).
const BUDGET: Duration = Duration::from_millis(200);
const WARMUP: Duration = Duration::from_millis(20);

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also discovers a batch size that keeps clock overhead
        // under control.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let batch = (warm_iters / 20).max(1);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    if b.mean_ns >= 1.0e6 {
        println!(
            "{label:<50} {:>12.3} ms/iter ({} iters)",
            b.mean_ns / 1.0e6,
            b.iters
        );
    } else if b.mean_ns >= 1.0e3 {
        println!(
            "{label:<50} {:>12.3} us/iter ({} iters)",
            b.mean_ns / 1.0e3,
            b.iters
        );
    } else {
        println!(
            "{label:<50} {:>12.1} ns/iter ({} iters)",
            b.mean_ns, b.iters
        );
    }
}

/// Identifier for a parameterised benchmark (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declares a group function calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.iters > 0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }
}
