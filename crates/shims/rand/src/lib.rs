//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the thin slice of the `rand 0.8` API it actually uses: `SmallRng`
//! seeded from a `u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `SliceRandom::{shuffle, partial_shuffle}`. Everything is fully
//! deterministic given the seed (a requirement of the workload
//! generators, which promise reproducible graphs).
//!
//! The generator is xorshift64* over a splitmix64-initialised state —
//! not cryptographic, statistically fine for synthetic graph generation.

/// Core trait: a source of `u64` randomness.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range; panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* with a
    /// splitmix64-derived non-zero initial state).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let mut state = splitmix64(&mut s);
            if state == 0 {
                state = 0x853C_49E6_748F_EA9B;
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    //! Slice helpers (mirrors `rand::seq::SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Shuffles `amount` uniformly-chosen elements into the *front*
        /// of the slice; returns `(chosen, rest)`.
        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_fronts_chosen() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(chosen.len(), 5);
        assert_eq!(rest.len(), 15);
    }
}
