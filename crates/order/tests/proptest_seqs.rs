//! Property-based tests of the three `OrderSeq` implementations against a
//! `Vec` reference model, plus heap ordering properties.

use kcore_order::{MinRankHeap, OrderSeq, OrderTreap, SkipList, TagList};
use proptest::prelude::*;

/// Sequence operations addressed by *position* into the model.
#[derive(Debug, Clone, Copy)]
enum SeqOp {
    InsertFirst(u32),
    InsertLast(u32),
    InsertAfter(usize, u32),
    InsertBefore(usize, u32),
    Remove(usize),
}

fn arb_ops(len: usize) -> impl Strategy<Value = Vec<SeqOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(SeqOp::InsertFirst),
            any::<u32>().prop_map(SeqOp::InsertLast),
            (any::<prop::sample::Index>(), any::<u32>())
                .prop_map(|(i, p)| SeqOp::InsertAfter(i.index(1 << 16), p)),
            (any::<prop::sample::Index>(), any::<u32>())
                .prop_map(|(i, p)| SeqOp::InsertBefore(i.index(1 << 16), p)),
            any::<prop::sample::Index>().prop_map(|i| SeqOp::Remove(i.index(1 << 16))),
        ],
        0..len,
    )
}

fn model_check<S: OrderSeq>(ops: &[SeqOp]) {
    let mut s = S::with_seed(0xC0FFEE);
    let mut model: Vec<(u32, u32)> = Vec::new(); // (handle, payload)
    for &op in ops {
        match op {
            SeqOp::InsertFirst(p) => {
                let h = s.insert_first(p);
                model.insert(0, (h, p));
            }
            SeqOp::InsertLast(p) => {
                let h = s.insert_last(p);
                model.push((h, p));
            }
            SeqOp::InsertAfter(i, p) => {
                if model.is_empty() {
                    let h = s.insert_first(p);
                    model.insert(0, (h, p));
                } else {
                    let i = i % model.len();
                    let h = s.insert_after(model[i].0, p);
                    model.insert(i + 1, (h, p));
                }
            }
            SeqOp::InsertBefore(i, p) => {
                if model.is_empty() {
                    let h = s.insert_first(p);
                    model.insert(0, (h, p));
                } else {
                    let i = i % model.len();
                    let h = s.insert_before(model[i].0, p);
                    model.insert(i, (h, p));
                }
            }
            SeqOp::Remove(i) => {
                if !model.is_empty() {
                    let i = i % model.len();
                    let (h, p) = model.remove(i);
                    assert_eq!(s.remove(h), p);
                }
            }
        }
        assert_eq!(s.len(), model.len());
    }
    s.validate();
    assert_eq!(
        s.to_vec(),
        model.iter().map(|&(_, p)| p).collect::<Vec<_>>()
    );
    // Order relations and key monotonicity across sampled pairs.
    let step = (model.len() / 16).max(1);
    for i in (0..model.len()).step_by(step) {
        for j in (0..model.len()).step_by(step) {
            let (hi, hj) = (model[i].0, model[j].0);
            assert_eq!(s.precedes(hi, hj), i < j, "precedes({i},{j})");
            if i < j {
                assert!(s.order_key(hi) < s.order_key(hj));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn treap_matches_model(ops in arb_ops(300)) {
        model_check::<OrderTreap>(&ops);
    }

    #[test]
    fn taglist_matches_model(ops in arb_ops(300)) {
        model_check::<TagList>(&ops);
    }

    #[test]
    fn skiplist_matches_model(ops in arb_ops(300)) {
        model_check::<SkipList>(&ops);
    }

    #[test]
    fn heap_pops_sorted(mut keys in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut h = MinRankHeap::new();
        for (i, &k) in keys.iter().enumerate() {
            h.push(k, i as u32);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop_valid(|_| true) {
            out.push(k);
        }
        keys.sort_unstable();
        prop_assert_eq!(out, keys);
    }

    #[test]
    fn heap_lazy_filtering_drops_exactly_invalid(
        keys in prop::collection::vec((any::<u64>(), any::<bool>()), 0..120)
    ) {
        let mut h = MinRankHeap::new();
        for (i, &(k, _)) in keys.iter().enumerate() {
            h.push(k, i as u32);
        }
        let valid: Vec<bool> = keys.iter().map(|&(_, v)| v).collect();
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_valid(|v| valid[v as usize]) {
            out.push((k, v));
        }
        let mut expected: Vec<(u64, u32)> = keys
            .iter()
            .enumerate()
            .filter(|&(_, &(_, ok))| ok)
            .map(|(i, &(k, _))| (k, i as u32))
            .collect();
        expected.sort_unstable();
        out.sort_unstable();
        prop_assert_eq!(out, expected);
    }
}

/// Deterministic adversarial patterns that stress each structure's weak
/// spot: monotone appends (treap-friendly), single-point hammering (tag
/// relabel storms), and alternating ends (skip-list tower churn).
#[test]
fn adversarial_patterns_all_structures() {
    fn drive<S: OrderSeq>() {
        // zigzag: alternate front/back
        let mut s = S::with_seed(3);
        let mut front = Vec::new();
        let mut back = Vec::new();
        for i in 0..800u32 {
            if i % 2 == 0 {
                front.push(s.insert_first(i));
            } else {
                back.push(s.insert_last(i));
            }
        }
        s.validate();
        let v = s.to_vec();
        assert_eq!(v.len(), 800);
        // fronts reversed, then backs in order
        assert_eq!(v[0], 798);
        assert_eq!(v[799], 799);
        // hammer one gap
        let anchor = front[0];
        for i in 0..800u32 {
            s.insert_after(anchor, 1000 + i);
        }
        s.validate();
        assert_eq!(s.len(), 1600);
        // drain from the middle out
        for h in front.into_iter().chain(back) {
            s.remove(h);
        }
        s.validate();
        assert_eq!(s.len(), 800);
    }
    drive::<OrderTreap>();
    drive::<TagList>();
    drive::<SkipList>();
}
