//! Tag-based order maintenance (list labelling) — the ablation alternative
//! to the paper's treap `A_k`.
//!
//! Every element carries a `u64` *tag*; order queries compare tags in
//! `O(1)`. Insertion takes the midpoint of the neighbouring tags; when the
//! local gap is exhausted, the smallest *aligned* tag range around the
//! insertion point whose density is at most 1/2 is relabelled uniformly
//! (the classic Itai–Konheim–Rodeh / Bender et al. scheme, amortised
//! `O(log n)` relabels per insertion in practice).
//!
//! Compared with the treap: order tests are `O(1)` instead of
//! `O(log n)`, but insertions occasionally rewrite many tags, and — unlike
//! ranks — tags are *not* dense, so the jump heap keys are tags instead of
//! ranks. The `ablation` benchmark quantifies this trade-off.

use crate::NONE;

/// Tag universe: labels live in `(0, 1 << UNIVERSE_BITS)`.
const UNIVERSE_BITS: u32 = 62;

#[derive(Clone, Debug)]
struct Node {
    next: u32,
    prev: u32,
    tag: u64,
    payload: u32,
}

/// An order-maintenance list with `u64` tags. Handles are arena indices.
#[derive(Clone, Debug)]
pub struct TagList {
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    len: usize,
    /// Total number of relabelled nodes, for the ablation report.
    pub relabel_count: u64,
}

impl Default for TagList {
    fn default() -> Self {
        Self::new()
    }
}

impl TagList {
    /// Creates an empty list.
    pub fn new() -> Self {
        TagList {
            nodes: Vec::new(),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
            len: 0,
            relabel_count: 0,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payload stored at `handle`.
    #[inline]
    pub fn payload(&self, handle: u32) -> u32 {
        self.nodes[handle as usize].payload
    }

    /// The tag of `handle` — a key that is strictly monotone in list order
    /// *as long as the list is not mutated*.
    #[inline]
    pub fn tag(&self, handle: u32) -> u64 {
        self.nodes[handle as usize].tag
    }

    /// `true` iff `a` is strictly before `b` (`O(1)`).
    #[inline]
    pub fn precedes(&self, a: u32, b: u32) -> bool {
        self.nodes[a as usize].tag < self.nodes[b as usize].tag
    }

    fn alloc(&mut self, payload: u32) -> u32 {
        let node = Node {
            next: NONE,
            prev: NONE,
            tag: 0,
            payload,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn tag_or(&self, h: u32, default: u64) -> u64 {
        if h == NONE {
            default
        } else {
            self.nodes[h as usize].tag
        }
    }

    /// Inserts `payload` as the first element.
    pub fn insert_first(&mut self, payload: u32) -> u32 {
        let x = self.alloc(payload);
        let old_head = self.head;
        self.nodes[x as usize].next = old_head;
        if old_head == NONE {
            self.tail = x;
        } else {
            self.nodes[old_head as usize].prev = x;
        }
        self.head = x;
        self.len += 1;
        self.assign_tag(x);
        x
    }

    /// Inserts `payload` as the last element.
    pub fn insert_last(&mut self, payload: u32) -> u32 {
        let x = self.alloc(payload);
        let old_tail = self.tail;
        self.nodes[x as usize].prev = old_tail;
        if old_tail == NONE {
            self.head = x;
        } else {
            self.nodes[old_tail as usize].next = x;
        }
        self.tail = x;
        self.len += 1;
        self.assign_tag(x);
        x
    }

    /// Inserts `payload` right after node `at`.
    pub fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        let x = self.alloc(payload);
        let nxt = self.nodes[at as usize].next;
        self.nodes[x as usize].prev = at;
        self.nodes[x as usize].next = nxt;
        self.nodes[at as usize].next = x;
        if nxt == NONE {
            self.tail = x;
        } else {
            self.nodes[nxt as usize].prev = x;
        }
        self.len += 1;
        self.assign_tag(x);
        x
    }

    /// Inserts `payload` right before node `at`.
    pub fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        let prv = self.nodes[at as usize].prev;
        if prv == NONE {
            self.insert_first(payload)
        } else {
            self.insert_after(prv, payload)
        }
    }

    /// Removes node `at`, returning its payload. Tags of other nodes are
    /// untouched.
    pub fn remove(&mut self, at: u32) -> u32 {
        let Node { next, prev, .. } = self.nodes[at as usize];
        if prev == NONE {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        self.len -= 1;
        self.free.push(at);
        self.nodes[at as usize].payload
    }

    /// Gives node `x` (already linked) a tag strictly between its
    /// neighbours' tags, relabelling locally when the gap is exhausted.
    fn assign_tag(&mut self, x: u32) {
        let universe = 1u64 << UNIVERSE_BITS;
        loop {
            let prev = self.nodes[x as usize].prev;
            let next = self.nodes[x as usize].next;
            let lo = self.tag_or(prev, 0);
            let hi = self.tag_or(next, universe);
            if hi - lo >= 2 {
                self.nodes[x as usize].tag = lo + (hi - lo) / 2;
                return;
            }
            self.relabel_around(x);
        }
    }

    /// Finds the smallest aligned tag range containing `x`'s neighbourhood
    /// with density <= 1/2 and relabels it uniformly.
    fn relabel_around(&mut self, x: u32) {
        // x has no valid tag yet; anchor ranges at its predecessor's tag
        // (or 0 at the head).
        let prev = self.nodes[x as usize].prev;
        let anchor = self.tag_or(prev, 0);
        let mut bits = 1u32;
        loop {
            let w = 1u64 << bits;
            let base = anchor & !(w - 1);
            let end = base.saturating_add(w).min(1u64 << UNIVERSE_BITS);
            // Collect the linked nodes (excluding x) whose tags fall in
            // [base, end); x is spliced into the middle positionally.
            let mut members: Vec<u32> = Vec::new();
            // walk left from x's predecessor
            let mut cur = prev;
            while cur != NONE && self.nodes[cur as usize].tag >= base {
                members.push(cur);
                cur = self.nodes[cur as usize].prev;
            }
            members.reverse();
            members.push(x);
            let mut cur = self.nodes[x as usize].next;
            while cur != NONE && self.nodes[cur as usize].tag < end {
                members.push(cur);
                cur = self.nodes[cur as usize].next;
            }
            let count = members.len() as u64;
            let span = end - base;
            // Density <= 1/4 guarantees gap = span/(count+1) >= 2, so both
            // the fresh tags and the boundary gaps admit a midpoint insert;
            // otherwise the assign_tag retry loop could live-lock.
            if bits >= UNIVERSE_BITS || count * 4 <= span {
                let gap = (span / (count + 1)).max(1);
                for (j, &m) in members.iter().enumerate() {
                    self.nodes[m as usize].tag = base + (j as u64 + 1) * gap;
                }
                self.relabel_count += count;
                return;
            }
            bits += 1;
        }
    }

    /// Front-to-back payload sequence (tests/diagnostics).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NONE {
            out.push(self.nodes[cur as usize].payload);
            cur = self.nodes[cur as usize].next;
        }
        out
    }

    /// Checks link symmetry and strict tag monotonicity.
    pub fn check_invariants(&self) {
        let mut cur = self.head;
        let mut prev = NONE;
        let mut last_tag = 0u64;
        let mut count = 0usize;
        while cur != NONE {
            let node = &self.nodes[cur as usize];
            assert_eq!(node.prev, prev, "prev mismatch at {cur}");
            if count > 0 {
                assert!(node.tag > last_tag, "tags not strictly increasing");
            }
            last_tag = node.tag;
            prev = cur;
            cur = node.next;
            count += 1;
            assert!(count <= self.nodes.len(), "cycle detected");
        }
        assert_eq!(self.tail, prev, "tail mismatch");
        assert_eq!(count, self.len, "len mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_appends() {
        let mut l = TagList::new();
        for i in 0..1000 {
            l.insert_last(i);
        }
        l.check_invariants();
        assert_eq!(l.to_vec(), (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn front_insert_storm_forces_relabels() {
        let mut l = TagList::new();
        for i in 0..5000 {
            l.insert_first(i);
        }
        l.check_invariants();
        assert!(l.relabel_count > 0, "dense front inserts must relabel");
        assert_eq!(l.to_vec(), (0..5000).rev().collect::<Vec<_>>());
    }

    #[test]
    fn midpoint_insert_storm_at_fixed_point() {
        // Repeated insertion right after the same node is the worst case
        // for naive midpoint labelling.
        let mut l = TagList::new();
        let a = l.insert_last(0);
        l.insert_last(1);
        for i in 2..3000 {
            l.insert_after(a, i);
        }
        l.check_invariants();
        let v = l.to_vec();
        assert_eq!(v[0], 0);
        assert_eq!(v[v.len() - 1], 1);
        assert_eq!(v[1], 2999);
    }

    #[test]
    fn precedes_matches_positions() {
        let mut l = TagList::new();
        let hs: Vec<u32> = (0..200).map(|i| l.insert_last(i)).collect();
        for i in 0..hs.len() {
            for j in (i + 1)..hs.len() {
                assert!(l.precedes(hs[i], hs[j]));
                assert!(!l.precedes(hs[j], hs[i]));
            }
        }
    }

    #[test]
    fn remove_keeps_order() {
        let mut l = TagList::new();
        let hs: Vec<u32> = (0..10).map(|i| l.insert_last(i)).collect();
        assert_eq!(l.remove(hs[0]), 0);
        assert_eq!(l.remove(hs[9]), 9);
        assert_eq!(l.remove(hs[4]), 4);
        l.check_invariants();
        assert_eq!(l.to_vec(), vec![1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(l.len(), 7);
    }

    #[test]
    fn interleaved_random_ops_match_vec_model() {
        let mut l = TagList::new();
        let mut model: Vec<(u32, u32)> = Vec::new();
        let mut state = 0xDEADBEEFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..3000u32 {
            let r = next();
            if model.is_empty() || r % 4 != 0 {
                if model.is_empty() {
                    let h = l.insert_first(step);
                    model.insert(0, (h, step));
                } else {
                    let pos = (r / 4) as usize % model.len();
                    let h = l.insert_after(model[pos].0, step);
                    model.insert(pos + 1, (h, step));
                }
            } else {
                let pos = (r / 4) as usize % model.len();
                let (h, p) = model.remove(pos);
                assert_eq!(l.remove(h), p);
            }
        }
        l.check_invariants();
        assert_eq!(
            l.to_vec(),
            model.iter().map(|&(_, p)| p).collect::<Vec<_>>()
        );
    }
}
