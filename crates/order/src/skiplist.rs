//! An **indexable skip list** — the third `A_k` candidate in the ablation
//! study, between the treap (`O(log n)` rank from a handle via parent
//! pointers) and the tag list (`O(1)` order queries, occasional global
//! relabels).
//!
//! Towers live in an arena; every link at level `l` stores its *width*
//! (number of level-0 hops it spans), which yields rank queries from a
//! node handle by walking **up and left**: from the node's tallest level,
//! repeatedly hop to the previous tower at that level accumulating
//! widths. Heights are drawn from a seeded xorshift (p = 1/2), giving
//! `O(log n)` expected insert/remove/rank.

use crate::NONE;

const MAX_LEVEL: usize = 32;

#[derive(Clone, Debug)]
struct Tower {
    /// `next[l]` / `prev[l]` — neighbours at level `l` (NONE-terminated).
    next: Vec<u32>,
    prev: Vec<u32>,
    /// `width[l]` — level-0 hops spanned by the `next[l]` link (0 when
    /// `next[l]` is NONE and the link runs to the tail sentinel).
    width: Vec<u32>,
    payload: u32,
}

/// Indexable skip list; handles are arena indices of towers.
#[derive(Clone, Debug)]
pub struct SkipList {
    towers: Vec<Tower>,
    /// Head sentinel tower (always index 0 in the arena).
    head: u32,
    free: Vec<u32>,
    len: usize,
    rng_state: u64,
}

impl SkipList {
    /// Creates an empty list; `seed` drives tower heights.
    pub fn new(seed: u64) -> Self {
        let head = Tower {
            next: vec![NONE; MAX_LEVEL],
            prev: vec![NONE; MAX_LEVEL],
            width: vec![0; MAX_LEVEL],
            payload: u32::MAX,
        };
        SkipList {
            towers: vec![head],
            head: 0,
            free: Vec::new(),
            len: 0,
            rng_state: seed | 1,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Payload stored at `handle`.
    #[inline]
    pub fn payload(&self, handle: u32) -> u32 {
        self.towers[handle as usize].payload
    }

    fn random_height(&mut self) -> usize {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL - 1)
    }

    fn alloc(&mut self, payload: u32, height: usize) -> u32 {
        let tower = Tower {
            next: vec![NONE; height],
            prev: vec![NONE; height],
            width: vec![0; height],
            payload,
        };
        match self.free.pop() {
            Some(i) => {
                self.towers[i as usize] = tower;
                i
            }
            None => {
                self.towers.push(tower);
                (self.towers.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn height(&self, t: u32) -> usize {
        self.towers[t as usize].next.len()
    }

    /// 1-based rank of `handle`: climb the tower, then walk left at the
    /// highest reachable levels accumulating widths.
    pub fn rank(&self, handle: u32) -> usize {
        let mut rank = 0usize;
        let mut cur = handle;
        let mut level = 0usize;
        while cur != self.head {
            let t = &self.towers[cur as usize];
            // climb as high as this tower allows
            let top = t.next.len() - 1;
            while level < top {
                level += 1;
            }
            // step left at the current level
            let left = t.prev[level];
            // width of the link (left -> cur) at this level
            let lw = self.towers[left as usize].width[level];
            rank += lw as usize;
            cur = left;
        }
        rank
    }

    /// `true` iff `a` is strictly before `b`.
    #[inline]
    pub fn precedes(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        self.rank(a) < self.rank(b)
    }

    /// Inserts `payload` right after `at` (use the head sentinel semantics
    /// through [`SkipList::insert_first`]). Returns the new handle.
    pub fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        let rank_at = if at == self.head { 0 } else { self.rank(at) };
        self.insert_at_rank(rank_at, payload)
    }

    /// Inserts `payload` right before `at`.
    pub fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        let rank_at = self.rank(at);
        self.insert_at_rank(rank_at - 1, payload)
    }

    /// Inserts at the front.
    pub fn insert_first(&mut self, payload: u32) -> u32 {
        self.insert_at_rank(0, payload)
    }

    /// Inserts at the back.
    pub fn insert_last(&mut self, payload: u32) -> u32 {
        self.insert_at_rank(self.len, payload)
    }

    /// Core insertion: the new element will have 1-based rank
    /// `after_rank + 1`.
    fn insert_at_rank(&mut self, after_rank: usize, payload: u32) -> u32 {
        let height = self.random_height();
        let node = self.alloc(payload, height);
        // Find predecessors at every level by a top-down descent tracking
        // traversed width.
        let mut preds = [0u32; MAX_LEVEL];
        let mut pred_rank = [0usize; MAX_LEVEL];
        let mut cur = self.head;
        let mut cur_rank = 0usize;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let nxt = self.towers[cur as usize].next[level];
                if nxt == NONE {
                    break;
                }
                let w = self.towers[cur as usize].width[level] as usize;
                if cur_rank + w > after_rank {
                    break;
                }
                cur_rank += w;
                cur = nxt;
            }
            preds[level] = cur;
            pred_rank[level] = cur_rank;
        }
        // Splice at levels < height; bump widths above.
        for level in 0..MAX_LEVEL {
            let p = preds[level];
            if level < height {
                let nxt = self.towers[p as usize].next[level];
                // width(p -> node): (after_rank + 1) - pred_rank - ... new
                // node's rank is after_rank + 1.
                let w_p_new = (after_rank + 1 - pred_rank[level]) as u32;
                let old_w = self.towers[p as usize].width[level];
                let w_new_next = if nxt == NONE { 0 } else { old_w + 1 - w_p_new };
                let t = &mut self.towers[node as usize];
                t.next[level] = nxt;
                t.prev[level] = p;
                t.width[level] = w_new_next;
                self.towers[p as usize].next[level] = node;
                self.towers[p as usize].width[level] = w_p_new;
                if nxt != NONE {
                    self.towers[nxt as usize].prev[level] = node;
                }
            } else {
                // link spans the new element: widen (if it doesn't run to
                // the tail)
                if self.towers[p as usize].next[level] != NONE {
                    self.towers[p as usize].width[level] += 1;
                }
            }
        }
        self.len += 1;
        node
    }

    /// Removes the element at `handle`, returning its payload.
    pub fn remove(&mut self, handle: u32) -> u32 {
        let height = self.height(handle);
        // Unlink at its own levels.
        for level in 0..height {
            let p = self.towers[handle as usize].prev[level];
            let n = self.towers[handle as usize].next[level];
            let w_p = self.towers[p as usize].width[level];
            let w_h = self.towers[handle as usize].width[level];
            self.towers[p as usize].next[level] = n;
            self.towers[p as usize].width[level] = if n == NONE { 0 } else { w_p + w_h - 1 };
            if n != NONE {
                self.towers[n as usize].prev[level] = p;
            }
        }
        // Shrink spanning links above: walk up from the tallest
        // predecessor chain.
        let mut cur = self.towers[handle as usize].prev[height - 1];
        let mut level = height;
        while level < MAX_LEVEL {
            // climb cur until it has a link at `level`
            while self.height(cur) <= level {
                let h = self.height(cur) - 1;
                cur = self.towers[cur as usize].prev[h];
            }
            while level < self.height(cur).min(MAX_LEVEL) {
                if self.towers[cur as usize].next[level] != NONE {
                    self.towers[cur as usize].width[level] -= 1;
                }
                level += 1;
            }
        }
        self.len -= 1;
        let payload = self.towers[handle as usize].payload;
        self.free.push(handle);
        payload
    }

    /// Front-to-back payloads (diagnostics).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.towers[self.head as usize].next[0];
        while cur != NONE {
            out.push(self.towers[cur as usize].payload);
            cur = self.towers[cur as usize].next[0];
        }
        out
    }

    /// Validates widths, links and length (tests).
    pub fn check_invariants(&self) {
        // level-0 walk establishes ranks
        let mut rank_of = std::collections::HashMap::new();
        let mut cur = self.head;
        let mut r = 0usize;
        rank_of.insert(self.head, 0usize);
        loop {
            let nxt = self.towers[cur as usize].next[0];
            assert_eq!(
                self.towers[cur as usize].width[0],
                if nxt == NONE { 0 } else { 1 },
                "level-0 width must be 1"
            );
            if nxt == NONE {
                break;
            }
            r += 1;
            rank_of.insert(nxt, r);
            assert_eq!(self.towers[nxt as usize].prev[0], cur, "prev broken");
            cur = nxt;
        }
        assert_eq!(r, self.len, "len mismatch");
        // higher levels: widths consistent with rank gaps
        for level in 1..MAX_LEVEL {
            let mut cur = self.head;
            loop {
                let nxt = self.towers[cur as usize]
                    .next
                    .get(level)
                    .copied()
                    .unwrap_or(NONE);
                if nxt == NONE {
                    break;
                }
                let w = self.towers[cur as usize].width[level] as usize;
                assert_eq!(
                    rank_of[&nxt] - rank_of[&cur],
                    w,
                    "width mismatch at level {level}"
                );
                assert_eq!(self.towers[nxt as usize].prev[level], cur);
                cur = nxt;
            }
        }
    }
}

impl crate::seq::OrderSeq for SkipList {
    fn with_seed(seed: u64) -> Self {
        SkipList::new(seed)
    }

    fn len(&self) -> usize {
        SkipList::len(self)
    }

    fn insert_first(&mut self, payload: u32) -> u32 {
        SkipList::insert_first(self, payload)
    }

    fn insert_last(&mut self, payload: u32) -> u32 {
        SkipList::insert_last(self, payload)
    }

    fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        SkipList::insert_after(self, at, payload)
    }

    fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        SkipList::insert_before(self, at, payload)
    }

    fn remove(&mut self, at: u32) -> u32 {
        SkipList::remove(self, at)
    }

    fn precedes(&self, a: u32, b: u32) -> bool {
        SkipList::precedes(self, a, b)
    }

    fn order_key(&self, at: u32) -> u64 {
        SkipList::rank(self, at) as u64
    }

    fn payload(&self, at: u32) -> u32 {
        SkipList::payload(self, at)
    }

    fn to_vec(&self) -> Vec<u32> {
        SkipList::to_vec(self)
    }

    fn validate(&self) {
        self.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_and_ranks() {
        let mut l = SkipList::new(5);
        let hs: Vec<u32> = (0..200).map(|i| l.insert_last(i)).collect();
        l.check_invariants();
        assert_eq!(l.to_vec(), (0..200).collect::<Vec<_>>());
        for (i, &h) in hs.iter().enumerate() {
            assert_eq!(l.rank(h), i + 1, "rank of element {i}");
        }
    }

    #[test]
    fn front_inserts() {
        let mut l = SkipList::new(9);
        for i in 0..100 {
            l.insert_first(i);
        }
        l.check_invariants();
        assert_eq!(l.to_vec(), (0..100).rev().collect::<Vec<_>>());
    }

    #[test]
    fn insert_after_and_before() {
        let mut l = SkipList::new(1);
        let a = l.insert_last(10);
        let c = l.insert_last(30);
        let b = l.insert_after(a, 20);
        let z = l.insert_before(a, 5);
        l.check_invariants();
        assert_eq!(l.to_vec(), vec![5, 10, 20, 30]);
        assert!(l.precedes(z, a) && l.precedes(a, b) && l.precedes(b, c));
    }

    #[test]
    fn removal_everywhere() {
        let mut l = SkipList::new(3);
        let hs: Vec<u32> = (0..50).map(|i| l.insert_last(i)).collect();
        l.remove(hs[0]);
        l.remove(hs[49]);
        l.remove(hs[25]);
        l.check_invariants();
        assert_eq!(l.len(), 47);
        let v = l.to_vec();
        assert_eq!(v[0], 1);
        assert_eq!(v[v.len() - 1], 48);
        assert!(!v.contains(&25));
    }

    #[test]
    fn interleaved_random_ops_match_vec_model() {
        let mut l = SkipList::new(1234);
        let mut model: Vec<(u32, u32)> = Vec::new();
        let mut state = 0x13579BDFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2500u32 {
            let r = next();
            if model.is_empty() || r % 3 != 0 {
                if model.is_empty() {
                    let h = l.insert_first(step);
                    model.insert(0, (h, step));
                } else {
                    let pos = (r / 3) as usize % model.len();
                    let h = l.insert_after(model[pos].0, step);
                    model.insert(pos + 1, (h, step));
                }
            } else {
                let pos = (r / 3) as usize % model.len();
                let (h, p) = model.remove(pos);
                assert_eq!(l.remove(h), p);
            }
        }
        l.check_invariants();
        assert_eq!(
            l.to_vec(),
            model.iter().map(|&(_, p)| p).collect::<Vec<_>>()
        );
        for (i, &(h, _)) in model.iter().enumerate() {
            assert_eq!(l.rank(h), i + 1);
        }
    }

    #[test]
    fn orderseq_contract() {
        use crate::seq::OrderSeq;
        let mut s = <SkipList as OrderSeq>::with_seed(7);
        let a = OrderSeq::insert_last(&mut s, 1);
        let b = OrderSeq::insert_last(&mut s, 2);
        assert!(OrderSeq::precedes(&s, a, b));
        assert!(OrderSeq::order_key(&s, a) < OrderSeq::order_key(&s, b));
        assert_eq!(OrderSeq::remove(&mut s, a), 1);
        OrderSeq::validate(&s);
    }
}
