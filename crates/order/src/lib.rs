//! # kcore-order
//!
//! Order-maintenance data structures backing the k-order of the paper
//! (Section VI, "Implementation"):
//!
//! * [`treap::OrderTreap`] — the paper's `A_k`: an **order-statistics tree
//!   implemented on top of treaps** with parent pointers and subtree sizes,
//!   supporting `rank` in `O(log n)` from a node handle (the paper's
//!   one-to-one vertex → node mapping is the handle itself). Raw pointers
//!   from the C++ original are replaced with `u32` arena indices.
//! * [`list::VertexLists`] — the paper's `O_k`: intrusive doubly-linked
//!   lists over a dense vertex id space (`O(1)` insert/remove/traverse,
//!   every vertex on at most one list).
//! * [`heap::MinRankHeap`] — the paper's `B`: a binary min-heap of
//!   `(rank, vertex)` pairs with lazy deletion, giving the `O(1)` "jump to
//!   the next relevant vertex" step of `OrderInsert`.
//! * [`skiplist::SkipList`] — an alternative `A_k`: an indexable skip
//!   list with width-augmented links (rank in `O(log n)` expected);
//! * [`tag::TagList`] — an alternative `A_k` based on **list labelling**
//!   (Dietz–Sleator style order maintenance with `u64` tags): `O(1)` order
//!   queries at the cost of occasional relabelling. Used by the ablation
//!   benchmark to quantify the treap choice.
//!
//! [`seq::OrderSeq`] abstracts over the two `A_k` implementations so the
//! maintenance algorithms in `kcore-maint` can be instantiated with either.

pub mod heap;
pub mod list;
pub mod seq;
pub mod skiplist;
pub mod tag;
pub mod treap;

pub use heap::MinRankHeap;
pub use list::VertexLists;
pub use seq::OrderSeq;
pub use skiplist::SkipList;
pub use tag::TagList;
pub use treap::OrderTreap;

/// Sentinel used by the arena structures ("no node" / "no vertex").
pub const NONE: u32 = u32::MAX;
