//! The paper's `B` structure: a min-heap of `(rank, vertex)` pairs used by
//! `OrderInsert` to jump, in `O(1)`, to the next vertex of `O_K` that still
//! needs attention (`deg*(v) > 0 ∨ deg⁺(v) > K`).
//!
//! Entries are removed **lazily**: instead of an indexed heap with decrease
//! key support, stale entries are filtered out at pop time by a caller
//! supplied validity predicate. Each (re-)qualification of a vertex pushes
//! a fresh entry, so the number of pushes is bounded by the number of
//! `deg*` transitions — within the `O(Σ_{v∈V⁺} deg(v) · log)` budget of
//! Theorem 5.2.

/// Binary min-heap over `(key, vertex)` pairs with lazy invalidation.
#[derive(Clone, Debug, Default)]
pub struct MinRankHeap {
    data: Vec<(u64, u32)>,
}

impl MinRankHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live + stale entries currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Pushes an entry.
    pub fn push(&mut self, key: u64, vertex: u32) {
        self.data.push((key, vertex));
        self.sift_up(self.data.len() - 1);
    }

    /// Pops entries until one satisfies `valid`; returns it, or `None` when
    /// the heap is exhausted. Invalid entries are discarded permanently.
    pub fn pop_valid<F: FnMut(u32) -> bool>(&mut self, mut valid: F) -> Option<(u64, u32)> {
        while let Some(&(key, v)) = self.data.first() {
            self.pop_root();
            if valid(v) {
                return Some((key, v));
            }
        }
        None
    }

    /// Peeks the minimum entry satisfying `valid`, discarding invalid roots.
    pub fn peek_valid<F: FnMut(u32) -> bool>(&mut self, mut valid: F) -> Option<(u64, u32)> {
        while let Some(&(key, v)) = self.data.first() {
            if valid(v) {
                return Some((key, v));
            }
            self.pop_root();
        }
        None
    }

    fn pop_root(&mut self) {
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / 2;
            if self.data[p] <= self.data[i] {
                break;
            }
            self.data.swap(p, i);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.data[l] < self.data[smallest] {
                smallest = l;
            }
            if r < n && self.data[r] < self.data[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = MinRankHeap::new();
        for (k, v) in [(5u64, 50u32), (1, 10), (3, 30), (2, 20), (4, 40)] {
            h.push(k, v);
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_valid(|_| true) {
            out.push((k, v));
        }
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
    }

    #[test]
    fn lazy_invalidation_skips_stale() {
        let mut h = MinRankHeap::new();
        h.push(1, 100);
        h.push(2, 200);
        h.push(3, 300);
        // 100 is stale.
        let got = h.pop_valid(|v| v != 100);
        assert_eq!(got, Some((2, 200)));
        // stale entry was dropped, not retained
        let got = h.pop_valid(|_| true);
        assert_eq!(got, Some((3, 300)));
        assert!(h.is_empty());
    }

    #[test]
    fn peek_discards_invalid_roots_only() {
        let mut h = MinRankHeap::new();
        h.push(1, 1);
        h.push(2, 2);
        assert_eq!(h.peek_valid(|v| v != 1), Some((2, 2)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek_valid(|_| true), Some((2, 2)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn duplicate_vertices_allowed() {
        let mut h = MinRankHeap::new();
        h.push(5, 7);
        h.push(2, 7);
        assert_eq!(h.pop_valid(|_| true), Some((2, 7)));
        assert_eq!(h.pop_valid(|_| true), Some((5, 7)));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = MinRankHeap::new();
        h.push(1, 1);
        assert_eq!(h.pop_valid(|_| false), None);
        assert!(h.is_empty());
        assert_eq!(h.pop_valid(|_| true), None);
    }

    #[test]
    fn clear_retains_capacity_semantics() {
        let mut h = MinRankHeap::new();
        for i in 0..100 {
            h.push(i, i as u32);
        }
        h.clear();
        assert!(h.is_empty());
        h.push(1, 1);
        assert_eq!(h.pop_valid(|_| true), Some((1, 1)));
    }

    #[test]
    fn heap_property_random() {
        let mut h = MinRankHeap::new();
        let mut state = 12345u64;
        let mut keys = Vec::new();
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = state % 1000;
            keys.push(k);
            h.push(k, k as u32);
        }
        keys.sort_unstable();
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop_valid(|_| true) {
            out.push(k);
        }
        assert_eq!(out, keys);
    }
}
