//! Intrusive doubly-linked lists over a dense vertex id space — the `O_k`
//! sequences of the paper.
//!
//! Every vertex belongs to at most one list at a time (its current core
//! value), so a single pair of `next`/`prev` arrays serves all lists; each
//! list `k` keeps explicit head/tail ids. All operations are `O(1)`.

use crate::NONE;

/// A family of doubly-linked lists indexed by a small integer (core value).
#[derive(Clone, Debug, Default)]
pub struct VertexLists {
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Which list each vertex is on (`NONE` if detached).
    list_of: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    lens: Vec<usize>,
}

impl VertexLists {
    /// Creates a family with capacity for `n` vertices and `lists` lists.
    pub fn new(n: usize, lists: usize) -> Self {
        VertexLists {
            next: vec![NONE; n],
            prev: vec![NONE; n],
            list_of: vec![NONE; n],
            head: vec![NONE; lists],
            tail: vec![NONE; lists],
            lens: vec![0; lists],
        }
    }

    /// Grows the vertex space so that `v` is addressable.
    pub fn ensure_vertex(&mut self, v: u32) {
        if v as usize >= self.next.len() {
            let n = v as usize + 1;
            self.next.resize(n, NONE);
            self.prev.resize(n, NONE);
            self.list_of.resize(n, NONE);
        }
    }

    /// Grows the list space so that list `k` exists.
    pub fn ensure_list(&mut self, k: u32) {
        if k as usize >= self.head.len() {
            let n = k as usize + 1;
            self.head.resize(n, NONE);
            self.tail.resize(n, NONE);
            self.lens.resize(n, 0);
        }
    }

    /// Number of vertices currently on list `k`.
    #[inline]
    pub fn len(&self, k: u32) -> usize {
        self.lens.get(k as usize).copied().unwrap_or(0)
    }

    /// `true` if list `k` has no vertices.
    #[inline]
    pub fn is_empty(&self, k: u32) -> bool {
        self.len(k) == 0
    }

    /// Number of addressable lists.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.head.len()
    }

    /// The list vertex `v` currently belongs to, or `NONE`.
    #[inline]
    pub fn list_of(&self, v: u32) -> u32 {
        self.list_of[v as usize]
    }

    /// First vertex of list `k`, or `NONE`.
    #[inline]
    pub fn head(&self, k: u32) -> u32 {
        self.head.get(k as usize).copied().unwrap_or(NONE)
    }

    /// Last vertex of list `k`, or `NONE`.
    #[inline]
    pub fn tail(&self, k: u32) -> u32 {
        self.tail.get(k as usize).copied().unwrap_or(NONE)
    }

    /// Successor of `v` on its list, or `NONE`.
    #[inline]
    pub fn next(&self, v: u32) -> u32 {
        self.next[v as usize]
    }

    /// Predecessor of `v` on its list, or `NONE`.
    #[inline]
    pub fn prev(&self, v: u32) -> u32 {
        self.prev[v as usize]
    }

    /// Appends detached vertex `v` to the back of list `k`.
    pub fn push_back(&mut self, k: u32, v: u32) {
        debug_assert_eq!(self.list_of[v as usize], NONE, "vertex already listed");
        let t = self.tail[k as usize];
        self.prev[v as usize] = t;
        self.next[v as usize] = NONE;
        if t == NONE {
            self.head[k as usize] = v;
        } else {
            self.next[t as usize] = v;
        }
        self.tail[k as usize] = v;
        self.list_of[v as usize] = k;
        self.lens[k as usize] += 1;
    }

    /// Prepends detached vertex `v` to the front of list `k`.
    pub fn push_front(&mut self, k: u32, v: u32) {
        debug_assert_eq!(self.list_of[v as usize], NONE, "vertex already listed");
        let h = self.head[k as usize];
        self.next[v as usize] = h;
        self.prev[v as usize] = NONE;
        if h == NONE {
            self.tail[k as usize] = v;
        } else {
            self.prev[h as usize] = v;
        }
        self.head[k as usize] = v;
        self.list_of[v as usize] = k;
        self.lens[k as usize] += 1;
    }

    /// Inserts detached vertex `v` immediately after `after` (which must be
    /// on list `k`).
    pub fn insert_after(&mut self, k: u32, after: u32, v: u32) {
        debug_assert_eq!(self.list_of[after as usize], k, "anchor not on list");
        debug_assert_eq!(self.list_of[v as usize], NONE, "vertex already listed");
        let nxt = self.next[after as usize];
        self.prev[v as usize] = after;
        self.next[v as usize] = nxt;
        self.next[after as usize] = v;
        if nxt == NONE {
            self.tail[k as usize] = v;
        } else {
            self.prev[nxt as usize] = v;
        }
        self.list_of[v as usize] = k;
        self.lens[k as usize] += 1;
    }

    /// Inserts detached vertex `v` immediately before `before`.
    pub fn insert_before(&mut self, k: u32, before: u32, v: u32) {
        debug_assert_eq!(self.list_of[before as usize], k, "anchor not on list");
        let prv = self.prev[before as usize];
        if prv == NONE {
            self.push_front(k, v);
        } else {
            self.insert_after(k, prv, v);
        }
    }

    /// Detaches `v` from whatever list it is on.
    pub fn remove(&mut self, v: u32) {
        let k = self.list_of[v as usize];
        debug_assert_ne!(k, NONE, "vertex not on a list");
        let (p, n) = (self.prev[v as usize], self.next[v as usize]);
        if p == NONE {
            self.head[k as usize] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail[k as usize] = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.next[v as usize] = NONE;
        self.prev[v as usize] = NONE;
        self.list_of[v as usize] = NONE;
        self.lens[k as usize] -= 1;
    }

    /// Iterates list `k` front-to-back.
    pub fn iter(&self, k: u32) -> ListIter<'_> {
        ListIter {
            lists: self,
            cur: self.head(k),
        }
    }

    /// Collects list `k` into a `Vec` (tests/diagnostics).
    pub fn to_vec(&self, k: u32) -> Vec<u32> {
        self.iter(k).collect()
    }

    /// Verifies link symmetry and length bookkeeping of list `k`.
    pub fn check_list(&self, k: u32) {
        let mut count = 0usize;
        let mut prev = NONE;
        let mut cur = self.head(k);
        while cur != NONE {
            assert_eq!(self.prev[cur as usize], prev, "prev mismatch at {cur}");
            assert_eq!(self.list_of[cur as usize], k, "list_of mismatch at {cur}");
            count += 1;
            assert!(count <= self.next.len(), "cycle detected in list {k}");
            prev = cur;
            cur = self.next[cur as usize];
        }
        assert_eq!(self.tail(k), prev, "tail mismatch for list {k}");
        assert_eq!(self.lens[k as usize], count, "length mismatch for list {k}");
    }
}

/// Front-to-back iterator over one list.
pub struct ListIter<'a> {
    lists: &'a VertexLists,
    cur: u32,
}

impl<'a> Iterator for ListIter<'a> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NONE {
            None
        } else {
            let v = self.cur;
            self.cur = self.lists.next(v);
            Some(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut l = VertexLists::new(10, 3);
        l.push_back(1, 4);
        l.push_back(1, 5);
        l.push_front(1, 3);
        assert_eq!(l.to_vec(1), vec![3, 4, 5]);
        assert_eq!(l.len(1), 3);
        assert!(l.is_empty(0));
        l.check_list(1);
    }

    #[test]
    fn insert_after_before() {
        let mut l = VertexLists::new(10, 1);
        l.push_back(0, 1);
        l.push_back(0, 5);
        l.insert_after(0, 1, 2);
        l.insert_before(0, 5, 4);
        l.insert_before(0, 1, 0);
        assert_eq!(l.to_vec(0), vec![0, 1, 2, 4, 5]);
        l.check_list(0);
    }

    #[test]
    fn remove_everywhere() {
        let mut l = VertexLists::new(6, 1);
        for v in 0..6 {
            l.push_back(0, v);
        }
        l.remove(0); // head
        l.remove(5); // tail
        l.remove(3); // middle
        assert_eq!(l.to_vec(0), vec![1, 2, 4]);
        assert_eq!(l.list_of(3), NONE);
        assert_eq!(l.head(0), 1);
        assert_eq!(l.tail(0), 4);
        l.check_list(0);
    }

    #[test]
    fn move_between_lists() {
        let mut l = VertexLists::new(4, 3);
        l.push_back(0, 0);
        l.push_back(0, 1);
        l.remove(1);
        l.push_front(2, 1);
        assert_eq!(l.to_vec(0), vec![0]);
        assert_eq!(l.to_vec(2), vec![1]);
        assert_eq!(l.list_of(1), 2);
        l.check_list(0);
        l.check_list(2);
    }

    #[test]
    fn grow_dynamically() {
        let mut l = VertexLists::new(0, 0);
        l.ensure_vertex(7);
        l.ensure_list(4);
        l.push_back(4, 7);
        assert_eq!(l.to_vec(4), vec![7]);
        assert_eq!(l.num_lists(), 5);
    }

    #[test]
    fn empty_list_queries() {
        let l = VertexLists::new(3, 2);
        assert_eq!(l.head(1), NONE);
        assert_eq!(l.tail(1), NONE);
        assert_eq!(l.len(9), 0); // out-of-range list reads as empty
        assert_eq!(l.to_vec(0), Vec::<u32>::new());
    }
}
