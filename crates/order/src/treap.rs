//! Order-statistics treap with parent pointers (the paper's `A_k`).
//!
//! The tree stores a *sequence* (no keys): a node's position is defined by
//! the usual in-order traversal, insertions are positional
//! (`insert_after` / `insert_before` / front / back), and every node carries
//! the size of its subtree so that the **rank** of a node — its 1-based
//! position in the sequence — can be computed by walking *up* from the node
//! in `O(log n)` expected time. This is exactly the mechanism of Section VI:
//! because the caller keeps a one-to-one mapping from vertices to node
//! handles, "locating the node" is free, and the usual chicken-and-egg
//! problem of searching an order-statistics tree without knowing the rank
//! disappears.
//!
//! Heap priorities come from a per-tree deterministic xorshift generator,
//! making test failures reproducible. Nodes live in an arena (`Vec`) with a
//! free list; handles are `u32` indices and remain stable across rotations.

use crate::NONE;

#[derive(Clone, Debug)]
struct Node {
    left: u32,
    right: u32,
    parent: u32,
    size: u32,
    priority: u64,
    payload: u32,
}

/// A positional treap; see the module docs.
#[derive(Clone, Debug)]
pub struct OrderTreap {
    nodes: Vec<Node>,
    root: u32,
    free: Vec<u32>,
    len: usize,
    rng_state: u64,
}

impl OrderTreap {
    /// Creates an empty treap whose priorities are drawn from a xorshift
    /// generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        OrderTreap {
            nodes: Vec::new(),
            root: NONE,
            free: Vec::new(),
            len: 0,
            // xorshift must not start at 0.
            rng_state: seed | 1,
        }
    }

    /// Number of nodes in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn next_priority(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn alloc(&mut self, payload: u32) -> u32 {
        let priority = self.next_priority();
        let node = Node {
            left: NONE,
            right: NONE,
            parent: NONE,
            size: 1,
            priority,
            payload,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn n(&self, i: u32) -> &Node {
        &self.nodes[i as usize]
    }

    #[inline]
    fn nm(&mut self, i: u32) -> &mut Node {
        &mut self.nodes[i as usize]
    }

    #[inline]
    fn size_of(&self, i: u32) -> u32 {
        if i == NONE {
            0
        } else {
            self.n(i).size
        }
    }

    #[inline]
    fn fix_size(&mut self, i: u32) {
        let s = 1 + self.size_of(self.n(i).left) + self.size_of(self.n(i).right);
        self.nm(i).size = s;
    }

    /// Payload stored at `handle`.
    #[inline]
    pub fn payload(&self, handle: u32) -> u32 {
        self.n(handle).payload
    }

    /// Replaces the payload stored at `handle`.
    #[inline]
    pub fn set_payload(&mut self, handle: u32, payload: u32) {
        self.nm(handle).payload = payload;
    }

    /// Rotates `x` up over its parent, preserving in-order sequence.
    fn rotate_up(&mut self, x: u32) {
        let p = self.n(x).parent;
        debug_assert!(p != NONE);
        let g = self.n(p).parent;
        if self.n(p).left == x {
            // right rotation
            let b = self.n(x).right;
            self.nm(p).left = b;
            if b != NONE {
                self.nm(b).parent = p;
            }
            self.nm(x).right = p;
        } else {
            // left rotation
            let b = self.n(x).left;
            self.nm(p).right = b;
            if b != NONE {
                self.nm(b).parent = p;
            }
            self.nm(x).left = p;
        }
        self.nm(p).parent = x;
        self.nm(x).parent = g;
        if g == NONE {
            self.root = x;
        } else if self.n(g).left == p {
            self.nm(g).left = x;
        } else {
            self.nm(g).right = x;
        }
        self.fix_size(p);
        self.fix_size(x);
    }

    /// Restores the min-heap priority invariant by rotating `x` towards the
    /// root, then propagates subtree sizes the rest of the way up.
    fn bubble_up(&mut self, x: u32) {
        while self.n(x).parent != NONE && self.n(self.n(x).parent).priority > self.n(x).priority {
            self.rotate_up(x);
        }
        // Sizes above x's final position still need the +1.
        let mut p = self.n(x).parent;
        while p != NONE {
            self.nm(p).size += 1;
            p = self.n(p).parent;
        }
    }

    /// Inserts `payload` as the first element; returns its handle.
    pub fn insert_first(&mut self, payload: u32) -> u32 {
        let x = self.alloc(payload);
        if self.root == NONE {
            self.root = x;
        } else {
            // leftmost descent
            let mut cur = self.root;
            while self.n(cur).left != NONE {
                cur = self.n(cur).left;
            }
            self.nm(cur).left = x;
            self.nm(x).parent = cur;
            self.bubble_up(x);
        }
        self.len += 1;
        x
    }

    /// Inserts `payload` as the last element; returns its handle.
    pub fn insert_last(&mut self, payload: u32) -> u32 {
        let x = self.alloc(payload);
        if self.root == NONE {
            self.root = x;
        } else {
            let mut cur = self.root;
            while self.n(cur).right != NONE {
                cur = self.n(cur).right;
            }
            self.nm(cur).right = x;
            self.nm(x).parent = cur;
            self.bubble_up(x);
        }
        self.len += 1;
        x
    }

    /// Inserts `payload` immediately after the node `at`; returns the new
    /// node's handle.
    pub fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        let x = self.alloc(payload);
        if self.n(at).right == NONE {
            self.nm(at).right = x;
            self.nm(x).parent = at;
        } else {
            let mut cur = self.n(at).right;
            while self.n(cur).left != NONE {
                cur = self.n(cur).left;
            }
            self.nm(cur).left = x;
            self.nm(x).parent = cur;
        }
        self.bubble_up(x);
        self.len += 1;
        x
    }

    /// Inserts `payload` immediately before the node `at`; returns the new
    /// node's handle.
    pub fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        let x = self.alloc(payload);
        if self.n(at).left == NONE {
            self.nm(at).left = x;
            self.nm(x).parent = at;
        } else {
            let mut cur = self.n(at).left;
            while self.n(cur).right != NONE {
                cur = self.n(cur).right;
            }
            self.nm(cur).right = x;
            self.nm(x).parent = cur;
        }
        self.bubble_up(x);
        self.len += 1;
        x
    }

    /// Removes the node `at` from the sequence and returns its payload.
    /// The handle is recycled; using it afterwards is a logic error.
    pub fn remove(&mut self, at: u32) -> u32 {
        // Rotate `at` down until it is a leaf, then detach.
        loop {
            let (l, r) = (self.n(at).left, self.n(at).right);
            if l == NONE && r == NONE {
                break;
            }
            let child = match (l, r) {
                (NONE, _) => r,
                (_, NONE) => l,
                _ if self.n(r).priority < self.n(l).priority => r,
                _ => l,
            };
            self.rotate_up(child);
        }
        let p = self.n(at).parent;
        if p == NONE {
            self.root = NONE;
        } else {
            if self.n(p).left == at {
                self.nm(p).left = NONE;
            } else {
                self.nm(p).right = NONE;
            }
            // shrink sizes up to the root
            let mut cur = p;
            while cur != NONE {
                self.nm(cur).size -= 1;
                cur = self.n(cur).parent;
            }
        }
        self.len -= 1;
        let payload = self.n(at).payload;
        self.free.push(at);
        payload
    }

    /// 1-based rank of `at` in the sequence, computed by walking to the
    /// root (`O(log n)` expected).
    pub fn rank(&self, at: u32) -> usize {
        let mut r = self.size_of(self.n(at).left) as usize + 1;
        let mut cur = at;
        let mut p = self.n(cur).parent;
        while p != NONE {
            if self.n(p).right == cur {
                r += self.size_of(self.n(p).left) as usize + 1;
            }
            cur = p;
            p = self.n(cur).parent;
        }
        r
    }

    /// `true` iff `a` precedes `b` in the sequence. `a == b` yields `false`.
    #[inline]
    pub fn precedes(&self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        self.rank(a) < self.rank(b)
    }

    /// Handle of the node at 1-based `rank`, or `None` if out of range.
    /// (`O(log n)` top-down descent; used by tests and diagnostics.)
    pub fn select(&self, rank: usize) -> Option<u32> {
        if rank == 0 || rank > self.len {
            return None;
        }
        let mut cur = self.root;
        let mut need = rank;
        loop {
            let left = self.size_of(self.n(cur).left) as usize;
            if need == left + 1 {
                return Some(cur);
            } else if need <= left {
                cur = self.n(cur).left;
            } else {
                need -= left + 1;
                cur = self.n(cur).right;
            }
        }
    }

    /// In-order payload sequence (allocates; for tests and diagnostics).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        // iterative in-order traversal
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NONE || !stack.is_empty() {
            while cur != NONE {
                stack.push(cur);
                cur = self.n(cur).left;
            }
            let node = stack.pop().unwrap();
            out.push(self.n(node).payload);
            cur = self.n(node).right;
        }
        out
    }

    /// Verifies heap order, parent pointers, and subtree sizes; panics with
    /// a description on violation. Test-only helper (O(n)).
    pub fn check_invariants(&self) {
        if self.root == NONE {
            assert_eq!(self.len, 0, "empty tree but len = {}", self.len);
            return;
        }
        assert_eq!(self.n(self.root).parent, NONE, "root has a parent");
        let total = self.check_subtree(self.root);
        assert_eq!(total, self.len as u32, "len mismatch");
    }

    fn check_subtree(&self, x: u32) -> u32 {
        let node = self.n(x);
        let mut size = 1;
        for child in [node.left, node.right] {
            if child != NONE {
                assert_eq!(self.n(child).parent, x, "bad parent pointer");
                assert!(
                    self.n(child).priority >= node.priority,
                    "heap violation at {x}"
                );
                size += self.check_subtree(child);
            }
        }
        assert_eq!(node.size, size, "bad size at {x}");
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_back_sequence() {
        let mut t = OrderTreap::new(42);
        let handles: Vec<u32> = (0..100).map(|i| t.insert_last(i)).collect();
        t.check_invariants();
        assert_eq!(t.to_vec(), (0..100).collect::<Vec<_>>());
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(t.rank(h), i + 1);
            assert_eq!(t.payload(h), i as u32);
        }
    }

    #[test]
    fn push_front_reverses() {
        let mut t = OrderTreap::new(7);
        for i in 0..50 {
            t.insert_first(i);
        }
        t.check_invariants();
        assert_eq!(t.to_vec(), (0..50).rev().collect::<Vec<_>>());
    }

    #[test]
    fn insert_after_and_before() {
        let mut t = OrderTreap::new(1);
        let a = t.insert_last(10);
        let c = t.insert_last(30);
        let b = t.insert_after(a, 20);
        let z = t.insert_before(a, 5);
        t.check_invariants();
        assert_eq!(t.to_vec(), vec![5, 10, 20, 30]);
        assert!(t.precedes(z, a) && t.precedes(a, b) && t.precedes(b, c));
        assert!(!t.precedes(b, a));
        assert!(!t.precedes(a, a));
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut t = OrderTreap::new(3);
        let hs: Vec<u32> = (0..10).map(|i| t.insert_last(i)).collect();
        assert_eq!(t.remove(hs[5]), 5);
        assert_eq!(t.remove(hs[0]), 0);
        assert_eq!(t.remove(hs[9]), 9);
        t.check_invariants();
        assert_eq!(t.to_vec(), vec![1, 2, 3, 4, 6, 7, 8]);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn remove_all_then_reuse() {
        let mut t = OrderTreap::new(5);
        let hs: Vec<u32> = (0..20).map(|i| t.insert_last(i)).collect();
        for h in hs {
            t.remove(h);
        }
        assert!(t.is_empty());
        t.check_invariants();
        let h = t.insert_first(99);
        assert_eq!(t.to_vec(), vec![99]);
        assert_eq!(t.rank(h), 1);
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let mut t = OrderTreap::new(11);
        let hs: Vec<u32> = (0..64).map(|i| t.insert_last(i)).collect();
        for &h in &hs {
            assert_eq!(t.select(t.rank(h)), Some(h));
        }
        assert_eq!(t.select(0), None);
        assert_eq!(t.select(65), None);
    }

    #[test]
    fn interleaved_random_ops_match_vec_model() {
        // Deterministic pseudo-random op sequence cross-checked against a
        // Vec model.
        let mut t = OrderTreap::new(1234);
        let mut model: Vec<(u32, u32)> = Vec::new(); // (handle, payload)
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2000u32 {
            let r = next();
            if model.is_empty() || r % 3 != 0 {
                // insert at a random position
                let payload = step;
                if model.is_empty() {
                    let h = t.insert_first(payload);
                    model.insert(0, (h, payload));
                } else {
                    let pos = (r / 3) as usize % model.len();
                    let h = t.insert_after(model[pos].0, payload);
                    model.insert(pos + 1, (h, payload));
                }
            } else {
                let pos = (r / 3) as usize % model.len();
                let (h, payload) = model.remove(pos);
                assert_eq!(t.remove(h), payload);
            }
        }
        t.check_invariants();
        let expected: Vec<u32> = model.iter().map(|&(_, p)| p).collect();
        assert_eq!(t.to_vec(), expected);
        for (i, &(h, _)) in model.iter().enumerate() {
            assert_eq!(t.rank(h), i + 1);
        }
    }

    #[test]
    fn precedes_total_order() {
        let mut t = OrderTreap::new(77);
        let hs: Vec<u32> = (0..30).map(|i| t.insert_last(i)).collect();
        for i in 0..hs.len() {
            for j in 0..hs.len() {
                assert_eq!(t.precedes(hs[i], hs[j]), i < j);
            }
        }
    }
}
