//! [`OrderSeq`]: the interface the maintenance algorithms need from an
//! `A_k` structure, implemented by both [`crate::OrderTreap`] (the paper's
//! choice) and [`crate::TagList`] (the ablation alternative).

use crate::{OrderTreap, TagList};

/// A mutable sequence with stable `u32` handles supporting positional
/// insertion, removal, order tests, and a monotone order key.
///
/// The *order key* contract: while the sequence is **not mutated**, `a`
/// precedes `b` iff `order_key(a) < order_key(b)`. Keys may be invalidated
/// by any mutation — `OrderInsert` only compares keys captured within a
/// single mutation-free pass, which is exactly what this permits.
///
/// `Send + Sync` is a supertrait: parallel component passes plan against
/// a shared `&OrderCore<S>` from worker threads, reading frozen order
/// keys concurrently. Every implementation here is plain `Vec`-backed
/// data, so the bound is free.
pub trait OrderSeq: Send + Sync {
    /// Creates an empty sequence; `seed` feeds any internal randomness.
    fn with_seed(seed: u64) -> Self;

    /// Number of elements.
    fn len(&self) -> usize;

    /// `true` when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `payload` at the front; returns a handle.
    fn insert_first(&mut self, payload: u32) -> u32;

    /// Inserts `payload` at the back; returns a handle.
    fn insert_last(&mut self, payload: u32) -> u32;

    /// Inserts `payload` right after `at`; returns a handle.
    fn insert_after(&mut self, at: u32, payload: u32) -> u32;

    /// Inserts `payload` right before `at`; returns a handle.
    fn insert_before(&mut self, at: u32, payload: u32) -> u32;

    /// Removes the element behind `at`, returning its payload.
    fn remove(&mut self, at: u32) -> u32;

    /// `true` iff `a` is strictly before `b`.
    fn precedes(&self, a: u32, b: u32) -> bool;

    /// Monotone order key (see trait docs).
    fn order_key(&self, at: u32) -> u64;

    /// Payload stored behind `at`.
    fn payload(&self, at: u32) -> u32;

    /// In-order payload dump (diagnostics).
    fn to_vec(&self) -> Vec<u32>;

    /// Validates internal invariants; panics on violation (tests only).
    fn validate(&self);
}

impl OrderSeq for OrderTreap {
    fn with_seed(seed: u64) -> Self {
        OrderTreap::new(seed)
    }

    fn len(&self) -> usize {
        OrderTreap::len(self)
    }

    fn insert_first(&mut self, payload: u32) -> u32 {
        OrderTreap::insert_first(self, payload)
    }

    fn insert_last(&mut self, payload: u32) -> u32 {
        OrderTreap::insert_last(self, payload)
    }

    fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        OrderTreap::insert_after(self, at, payload)
    }

    fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        OrderTreap::insert_before(self, at, payload)
    }

    fn remove(&mut self, at: u32) -> u32 {
        OrderTreap::remove(self, at)
    }

    fn precedes(&self, a: u32, b: u32) -> bool {
        OrderTreap::precedes(self, a, b)
    }

    fn order_key(&self, at: u32) -> u64 {
        OrderTreap::rank(self, at) as u64
    }

    fn payload(&self, at: u32) -> u32 {
        OrderTreap::payload(self, at)
    }

    fn to_vec(&self) -> Vec<u32> {
        OrderTreap::to_vec(self)
    }

    fn validate(&self) {
        self.check_invariants()
    }
}

impl OrderSeq for TagList {
    fn with_seed(_seed: u64) -> Self {
        TagList::new()
    }

    fn len(&self) -> usize {
        TagList::len(self)
    }

    fn insert_first(&mut self, payload: u32) -> u32 {
        TagList::insert_first(self, payload)
    }

    fn insert_last(&mut self, payload: u32) -> u32 {
        TagList::insert_last(self, payload)
    }

    fn insert_after(&mut self, at: u32, payload: u32) -> u32 {
        TagList::insert_after(self, at, payload)
    }

    fn insert_before(&mut self, at: u32, payload: u32) -> u32 {
        TagList::insert_before(self, at, payload)
    }

    fn remove(&mut self, at: u32) -> u32 {
        TagList::remove(self, at)
    }

    fn precedes(&self, a: u32, b: u32) -> bool {
        TagList::precedes(self, a, b)
    }

    fn order_key(&self, at: u32) -> u64 {
        self.tag(at)
    }

    fn payload(&self, at: u32) -> u32 {
        TagList::payload(self, at)
    }

    fn to_vec(&self) -> Vec<u32> {
        TagList::to_vec(self)
    }

    fn validate(&self) {
        self.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: OrderSeq>() {
        let mut s = S::with_seed(99);
        assert!(s.is_empty());
        let a = s.insert_last(1);
        let c = s.insert_last(3);
        let b = s.insert_after(a, 2);
        let z = s.insert_before(a, 0);
        s.validate();
        assert_eq!(s.to_vec(), vec![0, 1, 2, 3]);
        assert!(s.precedes(z, a) && s.precedes(a, b) && s.precedes(b, c));
        // order keys are monotone while unmutated
        assert!(s.order_key(z) < s.order_key(a));
        assert!(s.order_key(a) < s.order_key(b));
        assert!(s.order_key(b) < s.order_key(c));
        assert_eq!(s.payload(b), 2);
        assert_eq!(s.remove(a), 1);
        s.validate();
        assert_eq!(s.to_vec(), vec![0, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn treap_satisfies_orderseq() {
        exercise::<OrderTreap>();
    }

    #[test]
    fn taglist_satisfies_orderseq() {
        exercise::<TagList>();
    }
}
