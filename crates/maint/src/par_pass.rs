//! Thread-parallel component passes: **plan in parallel, commit
//! serially**.
//!
//! [`crate::components`] proves that the level-`k` seed pool splits into
//! vertex-disjoint, non-adjacent components, and the serial batch path
//! already runs one promotion/dismissal pass per component. Those passes
//! are independent *except* that they mutate the shared per-level order
//! structures (`A_k`, `O_k`, the scratch arrays) — so this module splits
//! each pass into two phases:
//!
//! 1. **Plan** (`plan_promote` / `plan_dismiss`): a read-only replay of
//!    the serial pass against `&OrderCore<S>`, with every mutation
//!    captured in pass-local overlays (hash-map `deg⁺`/`deg*` deltas, a
//!    local jump heap, a local candidate set). The plan phase runs on
//!    the shared worker team ([`kcore_decomp::par`]), one component per
//!    task — sound because components are disjoint at level `k` and
//!    `A_k` is *frozen during a pass* anyway (the serial engine's
//!    standing invariant; order tests compare pass-start ranks).
//! 2. **Apply** (`apply_promote_plan` / `apply_dismiss_plan`): commit
//!    each plan **serially, in component order** — replay the recorded
//!    `O_k` list operations, write the surviving `deg⁺` overlays, then
//!    run the serial ending phase verbatim (fused `deg⁺`/`mcd` repair
//!    scan, treap repairs, level counts, core-change log).
//!
//! ## Why this is bit-identical to the serial component loop
//!
//! * Components at level `k` share no vertices and no edges inside level
//!   `k`, so a pass reads only (a) its own component's level-`k` state
//!   and (b) `core` values of higher/lower-level neighbours — and the
//!   only *cross-component* write a pass performs is the ending-phase
//!   `mcd += 1` / `mcd -= 1` on neighbours at adjacent levels, which the
//!   plan phase never reads and the serial-order applies reproduce
//!   exactly.
//! * Order tests compare pass-start ranks. Treap removals by earlier
//!   components do not reorder survivors, and the serial path only ever
//!   compares ranks of *same-component* vertices — so the frozen
//!   pre-batch ranks the plan phase reads order identically.
//! * Applies run in the deterministic component order of
//!   [`OrderCore::split_level_seeds`], so `UpdateStats`, the core-change
//!   log, and every `A_k` mutation land in the serial sequence.
//!
//! The equivalence proptests in `tests/` pin this down at 1/2/4 threads.

use kcore_decomp::par::run_chunks;
use kcore_graph::{FxHashMap, FxHashSet, VertexId};
use kcore_order::{MinRankHeap, OrderSeq};
use kcore_traversal::UpdateStats;

use crate::order_core::OrderCore;

/// Parallel planning engages at a level only when the seed pool is at
/// least this large (after clamping by the configured
/// `sequential_cutoff`, so `with_cutoff(0)` forces the parallel path in
/// tests): below it, per-component planning overhead beats the win.
pub(crate) const PAR_PASS_SEED_CUTOFF: usize = 32;

/// One deferred `O_k` list mutation, replayed verbatim at apply time.
/// The `InsertAfter` subsequence doubles as the demotion log for the
/// Observation 6.1 treap repositionings.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PlanOp {
    /// `lists.remove(w)` — a Case-1 candidate left `O_k`.
    Remove(VertexId),
    /// `lists.insert_after(k, pred, d)` — demoted `d` rejoined `O_k`
    /// right after `pred`.
    InsertAfter(VertexId, VertexId),
}

/// The outcome of a read-only promotion pass over one component.
pub(crate) struct PromotePlan {
    /// Seed count (for `stats.merged_seeds`).
    pub(crate) seeds: usize,
    /// Frontier pops (for `stats.visited`).
    pub(crate) visited: usize,
    /// Surviving candidates `V*`, in candidate (pass) order.
    pub(crate) vstar: Vec<VertexId>,
    /// Ordered `O_k` mutations recorded during the pass.
    pub(crate) ops: Vec<PlanOp>,
    /// Final `deg⁺` of touched vertices that stayed at level `k`
    /// (demoted candidates and decremented bystanders), sorted by id.
    pub(crate) stayer_deg: Vec<(VertexId, u32)>,
}

/// The outcome of a read-only dismissal pass over one component.
pub(crate) struct DismissPlan {
    /// First-touch seed count (for `stats.merged_seeds`).
    pub(crate) merged_seeds: usize,
    /// Vertices whose `cd` working copy was touched (for
    /// `stats.visited`).
    pub(crate) visited: usize,
    /// Dismissed vertices `V*`, in dismissal order.
    pub(crate) vstar: Vec<VertexId>,
}

/// Pass-local mutable state of a promotion plan: overlays shadowing the
/// engine arrays the serial pass would have written.
#[derive(Default)]
struct PromoteOverlay {
    /// `deg⁺` shadow (read-through to `OrderCore::deg_plus`).
    deg: FxHashMap<VertexId, u32>,
    /// `deg*` shadow (`star_mark`/`deg_star`; absent = 0).
    star: FxHashMap<VertexId, u32>,
    /// Current candidates (`vc_mark == epoch`); demotion removes.
    vc_set: FxHashSet<VertexId>,
    /// Ever queued for demotion (`queue_mark == epoch`).
    queued: FxHashSet<VertexId>,
    /// Candidates in pass order (`self.vc`), demoted ones included.
    vc: Vec<VertexId>,
    ops: Vec<PlanOp>,
    visited: usize,
}

impl PromoteOverlay {
    #[inline]
    fn deg<S: OrderSeq>(&self, core: &OrderCore<S>, v: VertexId) -> u32 {
        match self.deg.get(&v) {
            Some(&d) => d,
            None => core.deg_plus[v as usize],
        }
    }

    #[inline]
    fn deg_add<S: OrderSeq>(&mut self, core: &OrderCore<S>, v: VertexId, delta: i64) {
        let cur = self.deg(core, v) as i64;
        self.deg.insert(v, (cur + delta) as u32);
    }

    #[inline]
    fn star(&self, v: VertexId) -> u32 {
        self.star.get(&v).copied().unwrap_or(0)
    }

    /// Mirrors `OrderCore::star_add`, clamp included.
    #[inline]
    fn star_add(&mut self, v: VertexId, delta: i64) -> u32 {
        let new = (self.star(v) as i64 + delta).max(0) as u32;
        self.star.insert(v, new);
        new
    }
}

/// Frozen pass-start rank of a level-`k` vertex, memoised per plan. The
/// shared rank cache is deliberately *not* touched (it is engine state);
/// a plan pays each treap walk once into its private memo instead.
#[inline]
fn frozen_rank<S: OrderSeq>(
    core: &OrderCore<S>,
    memo: &mut FxHashMap<VertexId, u64>,
    k: u32,
    v: VertexId,
) -> u64 {
    *memo
        .entry(v)
        .or_insert_with(|| core.seqs[k as usize].order_key(core.node[v as usize]))
}

impl<S: OrderSeq> OrderCore<S> {
    /// Read-only mirror of [`OrderCore::promote_pass`]'s core phase
    /// (Algorithm 2 + `RemoveCandidates`, Algorithm 3) over one
    /// component's seeds. Every decision replays the serial control flow
    /// against the pass-start snapshot; every write lands in the
    /// overlay. Requires `ensure_level(k + 1)` to have run (the caller
    /// does it once before planning).
    pub(crate) fn plan_promote(&self, seeds: &[VertexId], k: u32) -> PromotePlan {
        let mut ov = PromoteOverlay::default();
        let mut rank_memo: FxHashMap<VertexId, u64> = FxHashMap::default();
        let mut heap = MinRankHeap::new();
        for &root in seeds {
            debug_assert_eq!(self.core[root as usize], k);
            debug_assert!(self.deg_plus[root as usize] > k);
            let rank = frozen_rank(self, &mut rank_memo, k, root);
            heap.push(rank, root);
        }

        loop {
            let popped = heap
                .pop_valid(|w| !ov.vc_set.contains(&w) && (ov.star(w) > 0 || ov.deg(self, w) > k));
            let Some((_, w)) = popped else { break };
            ov.visited += 1;
            let star_w = ov.star(w);
            if star_w + ov.deg(self, w) > k {
                // Case-1: w is a potential candidate.
                ov.ops.push(PlanOp::Remove(w));
                ov.vc_set.insert(w);
                ov.vc.push(w);
                let rank_w = frozen_rank(self, &mut rank_memo, k, w);
                for i in 0..self.graph.degree(w) {
                    let z = self.graph.neighbors(w)[i];
                    if self.core[z as usize] == k {
                        let rank_z = frozen_rank(self, &mut rank_memo, k, z);
                        if rank_w < rank_z {
                            let new = ov.star_add(z, 1);
                            if new == 1 {
                                heap.push(rank_z, z);
                            }
                        }
                    }
                }
            } else {
                // Case-2b: w stays; fold deg* into deg⁺ and cascade.
                debug_assert!(star_w > 0);
                ov.deg_add(self, w, star_w as i64);
                ov.star_add(w, -(star_w as i64));
                self.plan_remove_candidates(&mut ov, &mut rank_memo, w, k);
            }
        }

        let vstar: Vec<VertexId> = ov
            .vc
            .iter()
            .copied()
            .filter(|w| ov.vc_set.contains(w))
            .collect();
        // deg⁺ of V* members is recomputed wholesale by the apply-time
        // ending scan; only stayers keep their overlay value.
        let mut stayer_deg: Vec<(VertexId, u32)> = ov
            .deg
            .iter()
            .filter(|(v, _)| !ov.vc_set.contains(v))
            .map(|(&v, &d)| (v, d))
            .collect();
        stayer_deg.sort_unstable();
        PromotePlan {
            seeds: seeds.len(),
            visited: ov.visited,
            vstar,
            ops: ov.ops,
            stayer_deg,
        }
    }

    /// Read-only mirror of `OrderCore::remove_candidates` (Algorithm 3).
    fn plan_remove_candidates(
        &self,
        ov: &mut PromoteOverlay,
        rank_memo: &mut FxHashMap<VertexId, u64>,
        w: VertexId,
        k: u32,
    ) {
        let mut queue: Vec<VertexId> = Vec::new();
        for i in 0..self.graph.degree(w) {
            let z = self.graph.neighbors(w)[i];
            if ov.vc_set.contains(&z) {
                ov.deg_add(self, z, -1);
                if ov.deg(self, z) + ov.star(z) <= k && !ov.queued.contains(&z) {
                    ov.queued.insert(z);
                    queue.push(z);
                }
            }
        }
        let rank_w = frozen_rank(self, rank_memo, k, w);
        let mut cursor = w;
        let mut qi = 0;
        while qi < queue.len() {
            let d = queue[qi];
            qi += 1;
            let star_d = ov.star(d);
            ov.deg_add(self, d, star_d as i64);
            ov.star_add(d, -(star_d as i64));
            ov.vc_set.remove(&d);
            ov.ops.push(PlanOp::InsertAfter(cursor, d));
            cursor = d;

            let rank_d = frozen_rank(self, rank_memo, k, d);
            for i in 0..self.graph.degree(d) {
                let z = self.graph.neighbors(d)[i];
                if self.core[z as usize] != k {
                    continue;
                }
                let rank_z = frozen_rank(self, rank_memo, k, z);
                if rank_w < rank_z {
                    ov.star_add(z, -1);
                } else if ov.vc_set.contains(&z) {
                    if rank_d < rank_z {
                        ov.star_add(z, -1);
                    } else {
                        ov.deg_add(self, z, -1);
                    }
                    if ov.deg(self, z) + ov.star(z) <= k && !ov.queued.contains(&z) {
                        ov.queued.insert(z);
                        queue.push(z);
                    }
                }
            }
        }
    }

    /// Commits a [`PromotePlan`]: replays the recorded `O_k` mutations
    /// and stayer `deg⁺` values, then runs the serial ending phase of
    /// [`OrderCore::promote_pass`] verbatim.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn apply_promote_plan(
        &mut self,
        plan: &PromotePlan,
        k: u32,
        stats: &mut UpdateStats,
    ) {
        stats.passes += 1;
        stats.merged_seeds += plan.seeds;
        stats.visited += plan.visited;
        let epoch = self.bump_epoch();

        let mut had_demotions = false;
        for op in &plan.ops {
            match *op {
                PlanOp::Remove(w) => self.lists.remove(w),
                PlanOp::InsertAfter(pred, d) => {
                    self.lists.insert_after(k, pred, d);
                    had_demotions = true;
                }
            }
        }
        for &(v, d) in &plan.stayer_deg {
            self.deg_plus[v as usize] = d;
        }

        // ---- ending phase (verbatim from the serial pass) ----
        let vstar = &plan.vstar;
        stats.changed += vstar.len();
        self.change_log.record_slice(vstar);
        self.level_counts[k as usize] -= vstar.len();
        self.level_counts[k as usize + 1] += vstar.len();

        for (i, &w) in vstar.iter().enumerate() {
            self.core[w as usize] = k + 1;
            self.vc_mark[w as usize] = epoch;
            self.vc_pos[w as usize] = i as u32;
        }

        for idx in 0..vstar.len() {
            let w = vstar[idx];
            let mut dp = 0u32;
            let mut m = 0u32;
            for j in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[j];
                let zi = z as usize;
                let cz = self.core[zi];
                if cz > k {
                    m += 1;
                }
                if cz > k + 1 {
                    dp += 1;
                } else if cz == k + 1 {
                    if self.vc_mark[zi] == epoch {
                        if (self.vc_pos[zi] as usize) > idx {
                            dp += 1;
                        }
                    } else {
                        dp += 1; // original O_{K+1} member: after all of V*
                        self.mcd[zi] += 1;
                        stats.refreshed += 1;
                    }
                }
            }
            self.deg_plus[w as usize] = dp;
            self.mcd[w as usize] = m;
            stats.refreshed += 1;
        }

        // A_K repairs: demotion repositionings, then the V* moves.
        for op in &plan.ops {
            if let PlanOp::InsertAfter(pred, d) = *op {
                self.seqs[k as usize].remove(self.node[d as usize]);
                self.node[d as usize] =
                    self.seqs[k as usize].insert_after(self.node[pred as usize], d);
            }
        }
        for &w in vstar.iter() {
            self.seqs[k as usize].remove(self.node[w as usize]);
        }
        for &w in vstar.iter().rev() {
            self.node[w as usize] = self.seqs[k as usize + 1].insert_first(w);
            self.lists.push_front(k + 1, w);
        }
        if had_demotions || !vstar.is_empty() {
            self.bump_seq_version(k);
        }
        if !vstar.is_empty() {
            self.bump_seq_version(k + 1);
        }
    }

    /// Read-only mirror of [`OrderCore::dismiss_pass`]'s find phase
    /// (Algorithm 4's mcd-seeded peeling) over one component's seeds.
    pub(crate) fn plan_dismiss(&self, seeds: &[VertexId], k: u32) -> DismissPlan {
        // `cd` doubles as the touch marker (`touch_mark == epoch` ⇔
        // present); `dismissed` stands in for the serial in-place
        // `core[v] = k - 1` write.
        let mut cd: FxHashMap<VertexId, u32> = FxHashMap::default();
        let mut dismissed: FxHashSet<VertexId> = FxHashSet::default();
        let mut vstar: Vec<VertexId> = Vec::new();
        let mut queue: Vec<VertexId> = Vec::new();
        let mut touched = 0usize;
        let mut merged_seeds = 0usize;

        for &root in seeds {
            if self.core[root as usize] != k || dismissed.contains(&root) {
                continue;
            }
            let cw = *cd.entry(root).or_insert_with(|| {
                touched += 1;
                merged_seeds += 1;
                self.mcd[root as usize]
            });
            if cw < k {
                dismissed.insert(root);
                vstar.push(root);
                queue.push(root);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let w = queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                if self.core[z as usize] != k || dismissed.contains(&z) {
                    continue;
                }
                let e = cd.entry(z).or_insert_with(|| {
                    touched += 1;
                    self.mcd[z as usize]
                });
                *e -= 1;
                if *e < k {
                    dismissed.insert(z);
                    vstar.push(z);
                    queue.push(z);
                }
            }
        }
        DismissPlan {
            merged_seeds,
            visited: touched,
            vstar,
        }
    }

    /// Commits a [`DismissPlan`]: writes the dismissals, then runs the
    /// serial ending phase of [`OrderCore::dismiss_pass`] verbatim.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn apply_dismiss_plan(
        &mut self,
        plan: &DismissPlan,
        k: u32,
        stats: &mut UpdateStats,
    ) {
        stats.passes += 1;
        let epoch = self.bump_epoch();
        stats.merged_seeds += plan.merged_seeds;
        stats.visited += plan.visited;
        let vstar = &plan.vstar;
        stats.changed += vstar.len();
        if vstar.is_empty() {
            stats.noop += 1;
            return;
        }
        self.change_log.record_slice(vstar);
        self.level_counts[k as usize] -= vstar.len();
        self.level_counts[k as usize - 1] += vstar.len();

        for (i, &w) in vstar.iter().enumerate() {
            self.core[w as usize] = k - 1;
            self.queue_mark[w as usize] = epoch; // marks membership of V*
            self.vc_pos[w as usize] = i as u32;
        }
        for idx in 0..vstar.len() {
            let w = vstar[idx];
            let wi = w as usize;
            let mut dp = 0u32;
            let mut m = 0u32;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                let cz = self.core[zi];
                if cz >= k - 1 {
                    m += 1;
                }
                if cz == k {
                    self.mcd[zi] -= 1;
                    if self.seqs[k as usize].precedes(self.node[zi], self.node[wi]) {
                        self.deg_plus[zi] -= 1;
                    }
                    stats.refreshed += 1;
                }
                if cz >= k || (self.queue_mark[zi] == epoch && self.vc_pos[zi] as usize > idx) {
                    dp += 1;
                }
            }
            self.deg_plus[wi] = dp;
            self.mcd[wi] = m;
            self.lists.remove(w);
            self.lists.push_back(k - 1, w);
            self.seqs[k as usize].remove(self.node[wi]);
            self.node[wi] = self.seqs[k as usize - 1].insert_last(w);
        }

        self.bump_seq_version(k);
        self.bump_seq_version(k - 1);
    }

    /// Plans every component's promotion pass on the worker team, then
    /// applies the plans serially in component order — bit-identical to
    /// the serial `for group { promote_group(group) }` loop. Cascade
    /// violators land in `dirty` in the serial order.
    pub(crate) fn promote_groups_parallel(
        &mut self,
        groups: &[Vec<VertexId>],
        k: u32,
        threads: usize,
        stats: &mut UpdateStats,
        dirty: &mut Vec<VertexId>,
    ) {
        self.ensure_level(k + 1);
        let plans: Vec<PromotePlan> = {
            let this: &Self = &*self;
            run_chunks(threads, groups, 0, |_, chunk| {
                chunk
                    .iter()
                    .map(|group| this.plan_promote(group, k))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        for plan in &plans {
            self.apply_promote_plan(plan, k, stats);
            for &w in &plan.vstar {
                if self.deg_plus[w as usize] > self.core[w as usize] {
                    dirty.push(w);
                }
            }
        }
    }

    /// Dismissal twin of [`OrderCore::promote_groups_parallel`]: plan on
    /// the team, apply serially, refill `pool` in the serial order.
    pub(crate) fn dismiss_groups_parallel(
        &mut self,
        groups: &[Vec<VertexId>],
        k: u32,
        threads: usize,
        stats: &mut UpdateStats,
        pool: &mut Vec<VertexId>,
    ) {
        let plans: Vec<DismissPlan> = {
            let this: &Self = &*self;
            run_chunks(threads, groups, 0, |_, chunk| {
                chunk
                    .iter()
                    .map(|group| this.plan_dismiss(group, k))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        for plan in &plans {
            self.apply_dismiss_plan(plan, k, stats);
            for &w in &plan.vstar {
                if self.mcd[w as usize] < self.core[w as usize] {
                    pool.push(w);
                }
            }
        }
    }
}
