//! Core-change journaling: a thin recorder around any [`CoreMaintainer`]
//! that captures, per update, exactly which vertices changed core number
//! and in which direction — the event stream a downstream consumer
//! (community tracker, alerting pipeline, materialised view) needs.
//!
//! The wrapper diffs against a shadow copy of the core numbers, bounded
//! by the engine-reported `|V*|`: updates with `V* = ∅` (the vast
//! majority, see Fig 10b) cost nothing, and changing updates stop
//! scanning after the `|V*|`-th transition is found.

use crate::maintainer::CoreMaintainer;
use kcore_graph::{EdgeListError, VertexId};
use kcore_traversal::UpdateStats;

/// What happened to the graph in one journaled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEvent {
    /// An edge was inserted.
    EdgeInserted(VertexId, VertexId),
    /// An edge was removed.
    EdgeRemoved(VertexId, VertexId),
}

/// One journal entry: the triggering event plus every core transition it
/// caused (empty when `V* = ∅`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotone sequence number (0-based).
    pub seq: u64,
    /// The graph mutation.
    pub event: GraphEvent,
    /// `(vertex, old_core, new_core)` for every vertex in `V*`.
    pub transitions: Vec<(VertexId, u32, u32)>,
}

/// A maintenance engine wrapper that records a [`JournalEntry`] per
/// update.
///
/// ```
/// use kcore_graph::fixtures;
/// use kcore_maint::journal::{GraphEvent, Journaled};
/// use kcore_maint::TreapOrderCore;
///
/// let engine = TreapOrderCore::new(fixtures::path(3), 1);
/// let mut j = Journaled::new(engine);
/// j.insert_edge(2, 0).unwrap();
/// let entry = j.entries().last().unwrap();
/// assert_eq!(entry.event, GraphEvent::EdgeInserted(2, 0));
/// assert_eq!(entry.transitions.len(), 3); // the whole cycle rose to 2
/// ```
pub struct Journaled<M: CoreMaintainer> {
    engine: M,
    shadow: Vec<u32>,
    entries: Vec<JournalEntry>,
    next_seq: u64,
}

impl<M: CoreMaintainer> Journaled<M> {
    /// Wraps an engine (snapshots its current core numbers).
    pub fn new(engine: M) -> Self {
        let shadow = engine.core_slice().to_vec();
        Journaled {
            engine,
            shadow,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Wraps an engine whose history up to `start_seq` has already been
    /// journaled elsewhere — the recovery path: a service restored from a
    /// snapshot + journal tail resumes recording where the old journal
    /// left off, so shipped sequence numbers stay globally monotone.
    pub fn with_start_seq(engine: M, start_seq: u64) -> Self {
        let mut j = Journaled::new(engine);
        j.next_seq = start_seq;
        j
    }

    /// The wrapped engine (read access).
    pub fn engine(&self) -> &M {
        &self.engine
    }

    /// The wrapped engine, mutably. Mutating the graph or cores through
    /// this reference without going through the journaled entry points
    /// desynchronises the transition shadow — it exists for operations
    /// that leave core numbers untouched (index persistence, deferred
    /// order rebuilds, scratch maintenance).
    pub fn engine_mut(&mut self) -> &mut M {
        &mut self.engine
    }

    /// Unwraps the engine, discarding any unshipped entries.
    pub fn into_inner(self) -> M {
        self.engine
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The sequence number the next recorded entry will get — the tail
    /// cursor a shipping consumer persists between
    /// [`Journaled::drain_since`] rounds.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Drops recorded entries (e.g. after a consumer flush), keeping the
    /// sequence counter monotone.
    pub fn drain(&mut self) -> Vec<JournalEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Re-bases the recorder onto the wrapped engine's **current**
    /// state: discards buffered entries, re-snapshots the core numbers
    /// into the transition shadow, and restarts the sequence at
    /// `next_seq`. The ingest supervisor calls this after swapping a
    /// panicked engine for one rebuilt by recovery — entries recorded
    /// against the poisoned engine must never ship, and the shadow must
    /// mirror the rebuilt cores or the next diff would emit phantom
    /// transitions.
    pub fn resync(&mut self, next_seq: u64) {
        self.entries.clear();
        self.shadow.clear();
        self.shadow.extend_from_slice(self.engine.core_slice());
        self.next_seq = next_seq;
    }

    /// Incremental shipping: drains the buffer and returns only the
    /// entries with `seq >= min_seq` (entries below the cursor were
    /// already shipped in an earlier round and are discarded). Calling in
    /// a loop with `min_seq = next_seq()` from the previous round yields
    /// every entry exactly once, in order, with no gaps — the contract
    /// the append-only journal sink relies on.
    pub fn drain_since(&mut self, min_seq: u64) -> Vec<JournalEntry> {
        let entries = std::mem::take(&mut self.entries);
        // Entries are pushed with strictly increasing seq, so the cutoff
        // is a partition point.
        let cut = entries.partition_point(|e| e.seq < min_seq);
        let mut tail = entries;
        tail.drain(..cut);
        tail
    }

    fn record(&mut self, event: GraphEvent, stats: &UpdateStats) {
        // The engine reports how many vertices changed; only diff against
        // the shadow when something did, and only around the touched
        // region — we walk the engine's core slice lazily: since
        // |V*| = stats.changed, scan until that many diffs are found.
        let transitions = self.diff_shadow(stats.changed);
        self.entries.push(JournalEntry {
            seq: self.next_seq,
            event,
            transitions,
        });
        self.next_seq += 1;
    }

    /// Inserts an edge, recording the resulting transitions.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let stats = self.engine.insert(u, v)?;
        self.record(GraphEvent::EdgeInserted(u, v), &stats);
        Ok(stats)
    }

    /// Removes an edge, recording the resulting transitions.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let stats = self.engine.remove(u, v)?;
        self.record(GraphEvent::EdgeRemoved(u, v), &stats);
        Ok(stats)
    }

    /// Collects the net core transitions since the last shadow sync
    /// (bounded by `changed`, see [`Journaled::record`]) and syncs the
    /// shadow.
    fn diff_shadow(&mut self, changed: usize) -> Vec<(VertexId, u32, u32)> {
        let mut transitions = Vec::with_capacity(changed.min(self.shadow.len()));
        if changed > 0 {
            let cores = self.engine.core_slice();
            if self.shadow.len() < cores.len() {
                self.shadow.resize(cores.len(), 0);
            }
            for (v, &c) in cores.iter().enumerate() {
                if c != self.shadow[v] {
                    transitions.push((v as VertexId, self.shadow[v], c));
                    self.shadow[v] = c;
                    if transitions.len() == changed {
                        break;
                    }
                }
            }
        }
        transitions
    }

    /// Journals one batch: an event per submitted edge (skipped entries
    /// included — replay through any engine's batch entry points skips
    /// them identically), with the batch's **net** core transitions
    /// attached to the last entry. Events stay per-edge so
    /// [`replay_batched`] reproduces the graph exactly; transitions are
    /// batch-granular because a multi-seed pass resolves them jointly —
    /// there is no per-edge attribution to recover.
    fn record_batch(
        &mut self,
        inserting: bool,
        edges: &[(VertexId, VertexId)],
        stats: &UpdateStats,
    ) {
        if edges.is_empty() {
            return;
        }
        let transitions = self.diff_shadow(stats.changed);
        for (i, &(u, v)) in edges.iter().enumerate() {
            let event = if inserting {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            };
            self.entries.push(JournalEntry {
                seq: self.next_seq,
                event,
                transitions: if i + 1 == edges.len() {
                    transitions.clone()
                } else {
                    Vec::new()
                },
            });
            self.next_seq += 1;
        }
    }

    /// Inserts a batch through the engine's batch entry point, journaling
    /// every submitted edge (see [`Journaled::record_batch`]).
    pub fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let stats = self.engine.insert_batch(edges);
        self.record_batch(true, edges, &stats);
        stats
    }

    /// Removes a batch through the engine's batch entry point, journaling
    /// every submitted edge (see [`Journaled::record_batch`]).
    pub fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let stats = self.engine.remove_batch(edges);
        self.record_batch(false, edges, &stats);
        stats
    }

    /// The journaled event stream (no transitions), oldest first — the
    /// input [`replay_batched`] consumes.
    pub fn events(&self) -> impl Iterator<Item = GraphEvent> + '_ {
        self.entries.iter().map(|e| e.event)
    }

    /// Vertices currently at or above core `k` that crossed the threshold
    /// within the journaled window — e.g. "who joined the 10-core today".
    pub fn threshold_crossings(&self, k: u32) -> Vec<(u64, VertexId, bool)> {
        let mut out = Vec::new();
        for e in &self.entries {
            for &(v, old, new) in &e.transitions {
                if old < k && new >= k {
                    out.push((e.seq, v, true));
                } else if old >= k && new < k {
                    out.push((e.seq, v, false));
                }
            }
        }
        out
    }
}

/// A [`Journaled`] engine is itself a [`CoreMaintainer`]: updates route
/// through the journaled entry points (batches via
/// [`Journaled::insert_batch`] / [`Journaled::remove_batch`], so the
/// wrapped engine's genuine batch path — for [`crate::PlannedCore`], the
/// planner dispatch — is preserved while every event is recorded). This
/// is what lets the streaming ingest writer treat "apply a micro-batch"
/// and "journal it for shipping" as one operation.
impl<M: CoreMaintainer> CoreMaintainer for Journaled<M> {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.insert_edge(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.remove_edge(u, v)
    }

    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        Journaled::insert_batch(self, edges)
    }

    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        Journaled::remove_batch(self, edges)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.engine.core_of(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.engine.core_slice()
    }

    fn graph_ref(&self) -> &kcore_graph::DynamicGraph {
        self.engine.graph_ref()
    }

    fn name(&self) -> String {
        format!("Journaled<{}>", self.engine.name())
    }
}

/// Replays a journaled event stream onto `engine` **in batches**:
/// consecutive same-kind events are grouped (up to `max_batch` edges per
/// group) and applied through the engine's batch entry points, which for
/// [`crate::OrderCore`] means adjacency pre-reservation, level-sorted
/// application, and rank caching instead of per-edge setup. Returns
/// aggregate stats.
///
/// Replay order across groups preserves the journal order, so the final
/// graph — and therefore every core number — matches an event-at-a-time
/// replay exactly.
pub fn replay_batched<M: CoreMaintainer>(
    engine: &mut M,
    events: impl IntoIterator<Item = GraphEvent>,
    max_batch: usize,
) -> UpdateStats {
    let max_batch = max_batch.max(1);
    let mut stats = UpdateStats::default();
    let mut run: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_batch);
    let mut inserting = true;
    let flush = |engine: &mut M, run: &mut Vec<(VertexId, VertexId)>, inserting: bool| {
        if run.is_empty() {
            return UpdateStats::default();
        }
        let s = if inserting {
            engine.insert_batch(run)
        } else {
            engine.remove_batch(run)
        };
        run.clear();
        s
    };
    for event in events {
        let (kind_insert, u, v) = match event {
            GraphEvent::EdgeInserted(u, v) => (true, u, v),
            GraphEvent::EdgeRemoved(u, v) => (false, u, v),
        };
        if kind_insert != inserting || run.len() == max_batch {
            stats.absorb(flush(engine, &mut run, inserting));
            inserting = kind_insert;
        }
        run.push((u, v));
    }
    stats.absorb(flush(engine, &mut run, inserting));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreapOrderCore;
    use kcore_graph::fixtures;

    #[test]
    fn records_promotions_and_demotions() {
        let engine = TreapOrderCore::new(fixtures::path(4), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(3, 0).unwrap();
        j.remove_edge(1, 2).unwrap();
        let es = j.entries();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].event, GraphEvent::EdgeInserted(3, 0));
        assert_eq!(es[0].transitions.len(), 4);
        assert!(es[0].transitions.iter().all(|&(_, o, n)| o == 1 && n == 2));
        assert_eq!(es[1].event, GraphEvent::EdgeRemoved(1, 2));
        assert_eq!(es[1].transitions.len(), 4);
        assert!(es[1].transitions.iter().all(|&(_, o, n)| o == 2 && n == 1));
    }

    #[test]
    fn empty_vstar_yields_empty_transitions() {
        let pg = fixtures::PaperGraph::small();
        let engine = TreapOrderCore::new(pg.graph.clone(), 1);
        let mut j = Journaled::new(engine);
        // joining the two 4-cliques changes no core number
        j.insert_edge(pg.v(6), pg.v(10)).unwrap();
        assert_eq!(j.entries()[0].transitions, Vec::new());
    }

    #[test]
    fn threshold_crossings_detect_joins_and_leaves() {
        let engine = TreapOrderCore::new(fixtures::path(4), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(3, 0).unwrap(); // everyone joins the 2-core
        j.remove_edge(0, 1).unwrap(); // everyone leaves it
        let crossings = j.threshold_crossings(2);
        let joins = crossings.iter().filter(|&&(_, _, up)| up).count();
        let leaves = crossings.iter().filter(|&&(_, _, up)| !up).count();
        assert_eq!(joins, 4);
        assert_eq!(leaves, 4);
    }

    #[test]
    fn drain_preserves_sequence_numbers() {
        let engine = TreapOrderCore::new(fixtures::path(5), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(0, 2).unwrap();
        let first = j.drain();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].seq, 0);
        j.insert_edge(0, 3).unwrap();
        assert_eq!(j.entries()[0].seq, 1);
    }

    #[test]
    fn batched_replay_reproduces_the_engine() {
        // Journal a mixed stream on one engine, replay it batched onto a
        // fresh engine: cores must agree at the end.
        let base = fixtures::two_cliques_bridge();
        let mut j = Journaled::new(TreapOrderCore::new(base.clone(), 1));
        j.insert_edge(0, 5).unwrap();
        j.insert_edge(1, 6).unwrap();
        j.insert_edge(2, 7).unwrap();
        j.remove_edge(0, 5).unwrap();
        j.insert_edge(0, 4).unwrap();
        j.remove_edge(1, 6).unwrap();

        for max_batch in [1, 2, 64] {
            let mut replayed = TreapOrderCore::new(base.clone(), 9);
            let stats = replay_batched(&mut replayed, j.events(), max_batch);
            assert_eq!(stats.skipped, 0, "journaled events are always valid");
            assert_eq!(replayed.cores(), j.engine().cores());
            replayed.validate();
        }
    }

    #[test]
    fn drain_since_ships_each_entry_exactly_once() {
        let engine = TreapOrderCore::new(fixtures::path(8), 1);
        let mut j = Journaled::new(engine);
        let mut cursor = j.next_seq();
        let mut shipped: Vec<u64> = Vec::new();
        let mut ship = |j: &mut Journaled<TreapOrderCore>, cursor: &mut u64| {
            let tail = j.drain_since(*cursor);
            for e in &tail {
                shipped.push(e.seq);
            }
            *cursor = j.next_seq();
        };
        j.insert_edge(0, 2).unwrap();
        j.insert_edge(0, 3).unwrap();
        ship(&mut j, &mut cursor);
        // Nothing new: a second round with the same cursor ships nothing.
        ship(&mut j, &mut cursor);
        j.remove_edge(0, 2).unwrap();
        j.insert_batch(&[(0, 4), (1, 5), (0, 4)]); // dup journaled too
        ship(&mut j, &mut cursor);
        // Monotone, gap-free, complete: exactly seqs 0..next_seq.
        assert_eq!(shipped, (0..j.next_seq()).collect::<Vec<u64>>());
        assert_eq!(shipped.len(), 6);
    }

    #[test]
    fn cursor_stays_monotone_across_index_snapshots() {
        // The ingest shape: ship, persist the index, keep updating, ship
        // again — and after a restore, resume the sequence where the old
        // journal left off via `with_start_seq`.
        let mut j = Journaled::new(TreapOrderCore::new(fixtures::path(6), 2));
        j.insert_edge(0, 2).unwrap();
        j.insert_edge(3, 5).unwrap();
        let mut cursor = 0u64;
        let first = j.drain_since(cursor);
        cursor = j.next_seq();
        assert_eq!(first.last().unwrap().seq, 1);

        // Persist the index mid-stream; the journal cursor is unaffected.
        let mut buf = Vec::new();
        j.engine().save(&mut buf).unwrap();
        j.insert_edge(1, 4).unwrap();
        let second = j.drain_since(cursor);
        cursor = j.next_seq();
        assert_eq!(second.iter().map(|e| e.seq).collect::<Vec<_>>(), [2]);

        // Restore from the snapshot + resume at the shipped cursor: new
        // entries continue the sequence with no overlap and no gap.
        let restored = TreapOrderCore::load(&buf[..], 2).unwrap();
        let mut resumed = Journaled::with_start_seq(restored, cursor);
        assert_eq!(resumed.next_seq(), 3);
        resumed.insert_edge(1, 3).unwrap();
        let third = resumed.drain_since(cursor);
        assert_eq!(third.iter().map(|e| e.seq).collect::<Vec<_>>(), [3]);
    }

    #[test]
    fn batch_journaling_records_events_and_net_transitions() {
        let mut j = Journaled::new(TreapOrderCore::new(fixtures::path(4), 1));
        // Closing the cycle promotes all four vertices to the 2-core.
        let stats = j.insert_batch(&[(3, 0), (0, 2), (2, 2)]);
        assert_eq!(stats.skipped, 1, "self-loop skipped by the engine");
        let es = j.entries();
        assert_eq!(es.len(), 3, "every submitted edge journaled");
        assert_eq!(es[0].event, GraphEvent::EdgeInserted(3, 0));
        assert_eq!(es[2].event, GraphEvent::EdgeInserted(2, 2));
        // Net transitions ride on the last entry of the batch.
        assert!(es[0].transitions.is_empty() && es[1].transitions.is_empty());
        assert_eq!(es[2].transitions.len(), 4);
        assert!(es[2].transitions.iter().all(|&(_, o, n)| o == 1 && n == 2));
        // And the events replay to the same engine state.
        let mut replayed = TreapOrderCore::new(fixtures::path(4), 7);
        let rs = replay_batched(&mut replayed, j.events(), 64);
        assert_eq!(rs.skipped, 1, "journaled dup skipped identically");
        assert_eq!(replayed.cores(), j.engine().cores());
    }

    #[test]
    fn planned_replay_matches_sequential_replay() {
        // ROADMAP PR-4 leftover: journal-replay batch sizes flow through
        // the planner. Replaying through a `PlannedCore` under
        // `PlanPolicy::Auto` (every batch priced, possibly recomputed)
        // must be bit-identical to an event-at-a-time sequential replay.
        use crate::{PlanPolicy, PlannedTreapCore};
        use kcore_gen::{barabasi_albert, churn_stream};

        let base = barabasi_albert(120, 3, 21);
        let mut j = Journaled::new(TreapOrderCore::new(base.clone(), 1));
        for b in churn_stream(&base, 12, 9, 6, 33) {
            j.insert_batch(&b.inserts);
            j.remove_batch(&b.removes);
        }

        // Sequential oracle: one event at a time on a plain engine.
        let mut seq_engine = TreapOrderCore::new(base.clone(), 5);
        let seq_stats = replay_batched(&mut seq_engine, j.events(), 1);

        for max_batch in [4, 64, 1024] {
            let mut planned = PlannedTreapCore::with_policy(base.clone(), 9, PlanPolicy::Auto);
            let stats = replay_batched(&mut planned, j.events(), max_batch);
            assert_eq!(stats.skipped, seq_stats.skipped);
            assert_eq!(
                planned.cores(),
                seq_engine.cores(),
                "planned replay diverged at max_batch {max_batch}"
            );
            let decided = planned.planner_stats().batched_chosen
                + planned.planner_stats().split_chosen
                + planned.planner_stats().recompute_chosen;
            assert!(decided > 0, "replay batches must route through the planner");
            planned.validate();
        }
    }

    #[test]
    fn shadow_tracks_engine_exactly_under_churn() {
        let engine = TreapOrderCore::new(fixtures::clique(6), 1);
        let mut j = Journaled::new(engine);
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
            .collect();
        for &(a, b) in &edges {
            j.remove_edge(a, b).unwrap();
        }
        for &(a, b) in edges.iter().rev() {
            j.insert_edge(a, b).unwrap();
        }
        // net effect zero: transitions must cancel per vertex
        let mut net = vec![0i64; 6];
        for e in j.entries() {
            for &(v, old, new) in &e.transitions {
                net[v as usize] += new as i64 - old as i64;
            }
        }
        assert_eq!(net, vec![0; 6]);
        assert_eq!(j.engine().core_slice(), &[5, 5, 5, 5, 5, 5]);
    }
}
