//! Core-change journaling: a thin recorder around any [`CoreMaintainer`]
//! that captures, per update, exactly which vertices changed core number
//! and in which direction — the event stream a downstream consumer
//! (community tracker, alerting pipeline, materialised view) needs.
//!
//! The wrapper diffs against a shadow copy of the core numbers, bounded
//! by the engine-reported `|V*|`: updates with `V* = ∅` (the vast
//! majority, see Fig 10b) cost nothing, and changing updates stop
//! scanning after the `|V*|`-th transition is found.

use crate::maintainer::CoreMaintainer;
use kcore_graph::{EdgeListError, VertexId};
use kcore_traversal::UpdateStats;

/// What happened to the graph in one journaled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEvent {
    /// An edge was inserted.
    EdgeInserted(VertexId, VertexId),
    /// An edge was removed.
    EdgeRemoved(VertexId, VertexId),
}

/// One journal entry: the triggering event plus every core transition it
/// caused (empty when `V* = ∅`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotone sequence number (0-based).
    pub seq: u64,
    /// The graph mutation.
    pub event: GraphEvent,
    /// `(vertex, old_core, new_core)` for every vertex in `V*`.
    pub transitions: Vec<(VertexId, u32, u32)>,
}

/// A maintenance engine wrapper that records a [`JournalEntry`] per
/// update.
///
/// ```
/// use kcore_graph::fixtures;
/// use kcore_maint::journal::{GraphEvent, Journaled};
/// use kcore_maint::TreapOrderCore;
///
/// let engine = TreapOrderCore::new(fixtures::path(3), 1);
/// let mut j = Journaled::new(engine);
/// j.insert_edge(2, 0).unwrap();
/// let entry = j.entries().last().unwrap();
/// assert_eq!(entry.event, GraphEvent::EdgeInserted(2, 0));
/// assert_eq!(entry.transitions.len(), 3); // the whole cycle rose to 2
/// ```
pub struct Journaled<M: CoreMaintainer> {
    engine: M,
    shadow: Vec<u32>,
    entries: Vec<JournalEntry>,
    next_seq: u64,
}

impl<M: CoreMaintainer> Journaled<M> {
    /// Wraps an engine (snapshots its current core numbers).
    pub fn new(engine: M) -> Self {
        let shadow = engine.core_slice().to_vec();
        Journaled {
            engine,
            shadow,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// The wrapped engine (read access).
    pub fn engine(&self) -> &M {
        &self.engine
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Drops recorded entries (e.g. after a consumer flush), keeping the
    /// sequence counter monotone.
    pub fn drain(&mut self) -> Vec<JournalEntry> {
        std::mem::take(&mut self.entries)
    }

    fn record(&mut self, event: GraphEvent, stats: &UpdateStats) {
        // The engine reports how many vertices changed; only diff against
        // the shadow when something did, and only around the touched
        // region — we walk the engine's core slice lazily: since
        // |V*| = stats.changed, scan until that many diffs are found.
        let mut transitions = Vec::with_capacity(stats.changed);
        if stats.changed > 0 {
            let cores = self.engine.core_slice();
            // grow shadow for vertices added since the last snapshot
            if self.shadow.len() < cores.len() {
                self.shadow.resize(cores.len(), 0);
            }
            for (v, &c) in cores.iter().enumerate() {
                if c != self.shadow[v] {
                    transitions.push((v as VertexId, self.shadow[v], c));
                    self.shadow[v] = c;
                    if transitions.len() == stats.changed {
                        break;
                    }
                }
            }
        }
        self.entries.push(JournalEntry {
            seq: self.next_seq,
            event,
            transitions,
        });
        self.next_seq += 1;
    }

    /// Inserts an edge, recording the resulting transitions.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let stats = self.engine.insert(u, v)?;
        self.record(GraphEvent::EdgeInserted(u, v), &stats);
        Ok(stats)
    }

    /// Removes an edge, recording the resulting transitions.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let stats = self.engine.remove(u, v)?;
        self.record(GraphEvent::EdgeRemoved(u, v), &stats);
        Ok(stats)
    }

    /// The journaled event stream (no transitions), oldest first — the
    /// input [`replay_batched`] consumes.
    pub fn events(&self) -> impl Iterator<Item = GraphEvent> + '_ {
        self.entries.iter().map(|e| e.event)
    }

    /// Vertices currently at or above core `k` that crossed the threshold
    /// within the journaled window — e.g. "who joined the 10-core today".
    pub fn threshold_crossings(&self, k: u32) -> Vec<(u64, VertexId, bool)> {
        let mut out = Vec::new();
        for e in &self.entries {
            for &(v, old, new) in &e.transitions {
                if old < k && new >= k {
                    out.push((e.seq, v, true));
                } else if old >= k && new < k {
                    out.push((e.seq, v, false));
                }
            }
        }
        out
    }
}

/// Replays a journaled event stream onto `engine` **in batches**:
/// consecutive same-kind events are grouped (up to `max_batch` edges per
/// group) and applied through the engine's batch entry points, which for
/// [`crate::OrderCore`] means adjacency pre-reservation, level-sorted
/// application, and rank caching instead of per-edge setup. Returns
/// aggregate stats.
///
/// Replay order across groups preserves the journal order, so the final
/// graph — and therefore every core number — matches an event-at-a-time
/// replay exactly.
pub fn replay_batched<M: CoreMaintainer>(
    engine: &mut M,
    events: impl IntoIterator<Item = GraphEvent>,
    max_batch: usize,
) -> UpdateStats {
    let max_batch = max_batch.max(1);
    let mut stats = UpdateStats::default();
    let mut run: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_batch);
    let mut inserting = true;
    let flush = |engine: &mut M, run: &mut Vec<(VertexId, VertexId)>, inserting: bool| {
        if run.is_empty() {
            return UpdateStats::default();
        }
        let s = if inserting {
            engine.insert_batch(run)
        } else {
            engine.remove_batch(run)
        };
        run.clear();
        s
    };
    for event in events {
        let (kind_insert, u, v) = match event {
            GraphEvent::EdgeInserted(u, v) => (true, u, v),
            GraphEvent::EdgeRemoved(u, v) => (false, u, v),
        };
        if kind_insert != inserting || run.len() == max_batch {
            stats.absorb(flush(engine, &mut run, inserting));
            inserting = kind_insert;
        }
        run.push((u, v));
    }
    stats.absorb(flush(engine, &mut run, inserting));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreapOrderCore;
    use kcore_graph::fixtures;

    #[test]
    fn records_promotions_and_demotions() {
        let engine = TreapOrderCore::new(fixtures::path(4), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(3, 0).unwrap();
        j.remove_edge(1, 2).unwrap();
        let es = j.entries();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].event, GraphEvent::EdgeInserted(3, 0));
        assert_eq!(es[0].transitions.len(), 4);
        assert!(es[0].transitions.iter().all(|&(_, o, n)| o == 1 && n == 2));
        assert_eq!(es[1].event, GraphEvent::EdgeRemoved(1, 2));
        assert_eq!(es[1].transitions.len(), 4);
        assert!(es[1].transitions.iter().all(|&(_, o, n)| o == 2 && n == 1));
    }

    #[test]
    fn empty_vstar_yields_empty_transitions() {
        let pg = fixtures::PaperGraph::small();
        let engine = TreapOrderCore::new(pg.graph.clone(), 1);
        let mut j = Journaled::new(engine);
        // joining the two 4-cliques changes no core number
        j.insert_edge(pg.v(6), pg.v(10)).unwrap();
        assert_eq!(j.entries()[0].transitions, Vec::new());
    }

    #[test]
    fn threshold_crossings_detect_joins_and_leaves() {
        let engine = TreapOrderCore::new(fixtures::path(4), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(3, 0).unwrap(); // everyone joins the 2-core
        j.remove_edge(0, 1).unwrap(); // everyone leaves it
        let crossings = j.threshold_crossings(2);
        let joins = crossings.iter().filter(|&&(_, _, up)| up).count();
        let leaves = crossings.iter().filter(|&&(_, _, up)| !up).count();
        assert_eq!(joins, 4);
        assert_eq!(leaves, 4);
    }

    #[test]
    fn drain_preserves_sequence_numbers() {
        let engine = TreapOrderCore::new(fixtures::path(5), 1);
        let mut j = Journaled::new(engine);
        j.insert_edge(0, 2).unwrap();
        let first = j.drain();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].seq, 0);
        j.insert_edge(0, 3).unwrap();
        assert_eq!(j.entries()[0].seq, 1);
    }

    #[test]
    fn batched_replay_reproduces_the_engine() {
        // Journal a mixed stream on one engine, replay it batched onto a
        // fresh engine: cores must agree at the end.
        let base = fixtures::two_cliques_bridge();
        let mut j = Journaled::new(TreapOrderCore::new(base.clone(), 1));
        j.insert_edge(0, 5).unwrap();
        j.insert_edge(1, 6).unwrap();
        j.insert_edge(2, 7).unwrap();
        j.remove_edge(0, 5).unwrap();
        j.insert_edge(0, 4).unwrap();
        j.remove_edge(1, 6).unwrap();

        for max_batch in [1, 2, 64] {
            let mut replayed = TreapOrderCore::new(base.clone(), 9);
            let stats = replay_batched(&mut replayed, j.events(), max_batch);
            assert_eq!(stats.skipped, 0, "journaled events are always valid");
            assert_eq!(replayed.cores(), j.engine().cores());
            replayed.validate();
        }
    }

    #[test]
    fn shadow_tracks_engine_exactly_under_churn() {
        let engine = TreapOrderCore::new(fixtures::clique(6), 1);
        let mut j = Journaled::new(engine);
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
            .collect();
        for &(a, b) in &edges {
            j.remove_edge(a, b).unwrap();
        }
        for &(a, b) in edges.iter().rev() {
            j.insert_edge(a, b).unwrap();
        }
        // net effect zero: transitions must cancel per vertex
        let mut net = vec![0i64; 6];
        for e in j.entries() {
            for &(v, old, new) in &e.transitions {
                net[v as usize] += new as i64 - old as i64;
            }
        }
        assert_eq!(net, vec![0; 6]);
        assert_eq!(j.engine().core_slice(), &[5, 5, 5, 5, 5, 5]);
    }
}
