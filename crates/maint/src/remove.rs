//! `OrderRemoval` — Algorithm 4 of the paper.
//!
//! `V*` is found exactly as in the traversal removal algorithm (a
//! `CoreDecomp`-style peeling of the `K` level seeded from `mcd`); the
//! k-order is then maintained by moving the dismissed vertices, in
//! dismissal order, to the **end** of `O_{K−1}` while recomputing their
//! `deg⁺` and decrementing the `deg⁺` of the level-K vertices that
//! preceded them. No `pcd` is maintained — that is the whole point.
//!
//! The pass machinery is **seed-count agnostic**: a single-edge removal
//! seeds the peel from the two endpoints, while the batched engine
//! ([`OrderCore::remove_edges`](crate::order_core::OrderCore)) hands it
//! every dismissible vertex of a level at once and runs one merged pass
//! per affected level, cascading downward.

use crate::order_core::OrderCore;
use kcore_graph::{EdgeListError, VertexId, DEFAULT_MAX_HOLE_RATIO};
use kcore_order::OrderSeq;
use kcore_traversal::UpdateStats;

impl<S: OrderSeq> OrderCore<S> {
    /// Removes the edge `(u, v)`, updating core numbers and the k-order.
    /// Errors (with no state change) when the edge is absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        if !self.graph.has_edge(u, v) {
            return Err(EdgeListError::Missing(u, v));
        }
        self.graph.remove_edge(u, v).expect("edge present");
        // Adjacency compaction is an explicit policy step now; the O(1)
        // check per update preserves the old amortised behaviour.
        self.graph.maintain_adjacency(DEFAULT_MAX_HOLE_RATIO);
        let mut stats = UpdateStats::default();

        let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
        debug_assert!(cu >= 1 && cv >= 1, "an incident edge implies core >= 1");
        // mcd loses the removed edge (Algorithm 4 lines 3–4).
        if cu <= cv {
            self.mcd[u as usize] -= 1;
        }
        if cv <= cu {
            self.mcd[v as usize] -= 1;
        }
        // The earlier endpoint counted the later one in deg⁺.
        let earlier = if cu < cv {
            u
        } else if cv < cu {
            v
        } else if self.seqs[cu as usize].precedes(self.node[u as usize], self.node[v as usize]) {
            u
        } else {
            v
        };
        self.deg_plus[earlier as usize] -= 1;

        self.dismiss_pass(&[u, v], cu.min(cv), &mut stats);
        Ok(stats)
    }

    /// `OrderRemoval`'s dismissal pass (Algorithm 4): finds `V*` at level
    /// `k` by an mcd-seeded peeling from `seeds` (roots not at level `k`,
    /// or with `mcd >= k`, contribute nothing and are skipped) and moves
    /// the dismissed vertices to the end of `O_{K−1}`, repairing `deg⁺`
    /// and `mcd` around them in one fused scan per dismissed vertex. The
    /// graph mutations, mcd decrements, and the earlier endpoints' `deg⁺`
    /// decrements have already happened.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn dismiss_pass(&mut self, seeds: &[VertexId], k: u32, stats: &mut UpdateStats) {
        stats.passes += 1;
        // ---- find V* (traversal-removal routine, mcd-seeded) ----
        let epoch = self.bump_epoch();
        let mut vstar = std::mem::take(&mut self.vstar);
        vstar.clear();
        self.queue.clear();
        let mut touched = 0usize;
        for i in 0..seeds.len() {
            let root = seeds[i];
            let ri = root as usize;
            if self.core[ri] != k {
                continue;
            }
            if self.touch_mark[ri] != epoch {
                self.touch_mark[ri] = epoch;
                self.cd_work[ri] = self.mcd[ri];
                touched += 1;
                stats.merged_seeds += 1;
            }
            if self.cd_work[ri] < k {
                self.core[ri] = k - 1; // dismiss
                self.queue_mark[ri] = epoch; // marks membership of V*
                vstar.push(root);
                self.queue.push(root);
            }
        }
        let mut qi = 0;
        while qi < self.queue.len() {
            let w = self.queue[qi];
            qi += 1;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                if self.core[zi] != k {
                    continue;
                }
                if self.touch_mark[zi] != epoch {
                    self.touch_mark[zi] = epoch;
                    self.cd_work[zi] = self.mcd[zi];
                    touched += 1;
                }
                self.cd_work[zi] -= 1;
                if self.cd_work[zi] < k {
                    self.core[zi] = k - 1; // dismiss
                    self.queue_mark[zi] = epoch;
                    vstar.push(z);
                    self.queue.push(z);
                }
            }
        }
        stats.visited += touched;
        stats.changed += vstar.len();
        if vstar.is_empty() {
            stats.noop += 1;
            self.vstar = vstar;
            return;
        }
        self.change_log.record_slice(&vstar);
        self.level_counts[k as usize] -= vstar.len();
        self.level_counts[k as usize - 1] += vstar.len();

        // ---- maintain the k-order (Algorithm 4 lines 6–14) ----
        // Process in dismissal order; vc_pos[w] = index lets the deg⁺
        // recomputation see which V* members are still "remaining". One
        // scan per dismissed vertex repairs the stayers' deg⁺ *and* mcd
        // plus w's own deg⁺ and mcd: the mcd terms only read core values
        // and V* membership, both fixed before this loop, so fusing them
        // into the order-repair scan is safe.
        for (i, &w) in vstar.iter().enumerate() {
            self.vc_pos[w as usize] = i as u32;
        }
        for idx in 0..vstar.len() {
            let w = vstar[idx];
            let wi = w as usize;
            let mut dp = 0u32;
            let mut m = 0u32;
            for i in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[i];
                let zi = z as usize;
                let cz = self.core[zi];
                // w's mcd at its new level counts neighbours with
                // core >= k − 1.
                if cz >= k - 1 {
                    m += 1;
                }
                // Level-K stayers: they lose w from mcd (it drops below
                // their level), and those that preceded w lose it from
                // deg⁺ too (w moves to O_{K−1}, i.e. in front of them).
                if cz == k {
                    self.mcd[zi] -= 1;
                    if self.seqs[k as usize].precedes(self.node[zi], self.node[wi]) {
                        self.deg_plus[zi] -= 1;
                    }
                    stats.refreshed += 1;
                }
                // w's own deg⁺: stayers at level >= K are all after the
                // end of O_{K−1}; so are the V* members not yet moved
                // (they will be appended after w).
                if cz >= k || (self.queue_mark[zi] == epoch && self.vc_pos[zi] as usize > idx) {
                    dp += 1;
                }
            }
            self.deg_plus[wi] = dp;
            self.mcd[wi] = m;
            // Move w: out of O_K, to the end of O_{K−1}.
            self.lists.remove(w);
            self.lists.push_back(k - 1, w);
            self.seqs[k as usize].remove(self.node[wi]);
            self.node[wi] = self.seqs[k as usize - 1].insert_last(w);
        }

        self.bump_seq_version(k);
        self.bump_seq_version(k - 1);
        self.vstar = vstar;
    }
}
