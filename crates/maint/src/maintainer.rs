//! [`CoreMaintainer`]: one interface over the three maintenance engines —
//! order-based ([`OrderCore`]), traversal ([`TraversalCore`]) and the
//! naive full-recompute baseline ([`RecomputeCore`]) — so the experiment
//! harness and the integration tests can drive them uniformly.

use crate::order_core::OrderCore;
use crate::planner::PlannedCore;
use kcore_decomp::core_decomposition;
use kcore_graph::{DynamicGraph, EdgeListError, VertexId};
use kcore_order::OrderSeq;
use kcore_traversal::{SubCoreAlgo, TraversalCore, UpdateStats};

/// A dynamic-graph engine that maintains core numbers under edge updates.
pub trait CoreMaintainer {
    /// Inserts an edge; errors leave the state unchanged.
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError>;

    /// Removes an edge; errors leave the state unchanged.
    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError>;

    /// Inserts a batch of edges, skipping invalid entries (counted in
    /// [`UpdateStats::skipped`]). The default loops over
    /// [`CoreMaintainer::insert`]; engines with a genuine batch path
    /// override it.
    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        for &(u, v) in edges {
            match self.insert(u, v) {
                Ok(s) => stats.absorb(s),
                Err(_) => stats.skipped += 1,
            }
        }
        stats
    }

    /// Removes a batch of edges, skipping invalid entries (counted in
    /// [`UpdateStats::skipped`]). Default loops over
    /// [`CoreMaintainer::remove`].
    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        for &(u, v) in edges {
            match self.remove(u, v) {
                Ok(s) => stats.absorb(s),
                Err(_) => stats.skipped += 1,
            }
        }
        stats
    }

    /// Core number of one vertex.
    fn core_of(&self, v: VertexId) -> u32;

    /// All core numbers.
    fn core_slice(&self) -> &[u32];

    /// The underlying graph.
    fn graph_ref(&self) -> &DynamicGraph;

    /// Short display name for reports.
    fn name(&self) -> String;
}

impl<S: OrderSeq> CoreMaintainer for OrderCore<S> {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.insert_edge(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.remove_edge(u, v)
    }

    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.insert_edges(edges)
    }

    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.remove_edges(edges)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.core(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.cores()
    }

    fn graph_ref(&self) -> &DynamicGraph {
        self.graph()
    }

    fn name(&self) -> String {
        "Order".to_string()
    }
}

/// The adaptive engine: batch entry points dispatch through the planner
/// (order-based passes vs recompute with a deferred k-order rebuild);
/// single-edge updates run the order-based algorithms, re-freshening the
/// order index first when a recompute left it stale.
impl<S: OrderSeq> CoreMaintainer for PlannedCore<S> {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.insert_edge(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.remove_edge(u, v)
    }

    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.insert_edges(edges)
    }

    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.remove_edges(edges)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.core(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.cores()
    }

    fn graph_ref(&self) -> &DynamicGraph {
        self.graph()
    }

    fn name(&self) -> String {
        "Planned".to_string()
    }
}

impl CoreMaintainer for TraversalCore {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.insert_edge(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.remove_edge(u, v)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.core(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.cores()
    }

    fn graph_ref(&self) -> &DynamicGraph {
        self.graph()
    }

    fn name(&self) -> String {
        format!("Trav-{}", self.hops())
    }
}

impl CoreMaintainer for SubCoreAlgo {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.insert_edge(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.remove_edge(u, v)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.core(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.cores()
    }

    fn graph_ref(&self) -> &DynamicGraph {
        self.graph()
    }

    fn name(&self) -> String {
        "SubCore".to_string()
    }
}

/// The naive baseline: rerun the `O(m + n)` decomposition after every
/// update. Correct by construction; used as the ground-truth oracle and as
/// the "no index" row in benchmarks.
///
/// With [`RecomputeCore::new_parallel`] the recomputation runs the
/// level-synchronous parallel peel — the multi-core fallback the batch
/// benchmarks show overtaking the maintenance path once batches approach
/// the graph size (`BENCH_batch.json` `ratio_vs_recompute`).
pub struct RecomputeCore {
    graph: DynamicGraph,
    core: Vec<u32>,
    par: Option<kcore_decomp::Parallelism>,
}

impl RecomputeCore {
    /// Builds the baseline (one decomposition).
    pub fn new(graph: DynamicGraph) -> Self {
        let core = core_decomposition(&graph);
        RecomputeCore {
            graph,
            core,
            par: None,
        }
    }

    /// Builds the baseline with every recomputation running the parallel
    /// peel under `par` (identical core numbers, more cores).
    pub fn new_parallel(graph: DynamicGraph, par: kcore_decomp::Parallelism) -> Self {
        let core = kcore_decomp::par_core_decomposition(&graph, &par);
        RecomputeCore {
            graph,
            core,
            par: Some(par),
        }
    }

    fn recompute(&mut self) -> UpdateStats {
        let new = match &self.par {
            Some(par) => kcore_decomp::par_core_decomposition(&self.graph, par),
            None => core_decomposition(&self.graph),
        };
        let changed = new
            .iter()
            .zip(self.core.iter())
            .filter(|(a, b)| a != b)
            .count();
        self.core = new;
        UpdateStats {
            visited: self.graph.num_vertices(),
            changed,
            ..UpdateStats::default()
        }
    }
}

impl CoreMaintainer for RecomputeCore {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.graph.insert_edge(u, v)?;
        Ok(self.recompute())
    }

    /// The genuine recompute batch path: apply every valid edge, then
    /// decompose **once** — the fallback the batch benchmarks compare
    /// the maintenance engines against.
    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let mut applied = false;
        for &(u, v) in edges {
            match self.graph.insert_edge(u, v) {
                Ok(()) => applied = true,
                Err(_) => stats.skipped += 1,
            }
        }
        if applied {
            stats.absorb(self.recompute());
        }
        stats
    }

    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let mut applied = false;
        for &(u, v) in edges {
            match self.graph.remove_edge(u, v) {
                Ok(()) => applied = true,
                Err(_) => stats.skipped += 1,
            }
        }
        if applied {
            self.graph
                .maintain_adjacency(kcore_graph::DEFAULT_MAX_HOLE_RATIO);
            stats.absorb(self.recompute());
        }
        stats
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.graph.remove_edge(u, v)?;
        self.graph
            .maintain_adjacency(kcore_graph::DEFAULT_MAX_HOLE_RATIO);
        Ok(self.recompute())
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    fn core_slice(&self) -> &[u32] {
        &self.core
    }

    fn graph_ref(&self) -> &DynamicGraph {
        &self.graph
    }

    fn name(&self) -> String {
        "Recompute".to_string()
    }
}
