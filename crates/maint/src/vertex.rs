//! Vertex-level updates and batch application.
//!
//! The paper treats vertex insertion/removal as a sequence of edge updates
//! (Section I); these helpers package that, plus an adaptive batch
//! applicator that falls back to a full index rebuild when a batch is so
//! large that incremental maintenance would lose to the `O(m + n)`
//! decomposition.

use crate::journal::GraphEvent;
use crate::order_core::OrderCore;
use kcore_decomp::Heuristic;
use kcore_graph::{EdgeListError, VertexId};
use kcore_order::OrderSeq;
use kcore_traversal::UpdateStats;

/// One edge-level operation for [`OrderCore::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert an edge.
    Insert(VertexId, VertexId),
    /// Remove an edge.
    Remove(VertexId, VertexId),
}

impl<S: OrderSeq> OrderCore<S> {
    /// Adds a vertex along with its initial edges — the paper's "vertex
    /// insertion as an edge sequence". Returns the new id and accumulated
    /// stats. Duplicate neighbours are an error (the vertex still exists
    /// afterwards, with the edges inserted so far).
    pub fn insert_vertex_with_edges(
        &mut self,
        neighbors: &[VertexId],
    ) -> Result<(VertexId, UpdateStats), EdgeListError> {
        let v = self.add_vertex();
        let mut total = UpdateStats::default();
        for &w in neighbors {
            total.absorb(self.insert_edge(v, w)?);
        }
        Ok((v, total))
    }

    /// Removes every incident edge of `v` (the paper's "vertex removal as
    /// an edge sequence") and detaches it from the order index. The id
    /// remains allocated (ids are dense); its core number is 0 afterwards.
    pub fn remove_vertex(&mut self, v: VertexId) -> UpdateStats {
        let mut total = UpdateStats::default();
        while self.graph.degree(v) > 0 {
            let w = self.graph.neighbors(v)[0];
            total.absorb(self.remove_edge(v, w).expect("incident edge present"));
        }
        total
    }

    /// Rebuilds the whole index from the current graph (fresh k-order,
    /// treaps, `deg⁺`, `mcd`). `O((m + n) log n)` — the Table III cost.
    pub fn rebuild(&mut self) {
        let graph = std::mem::take(&mut self.graph);
        let seed = self.seed;
        *self = OrderCore::with_heuristic(graph, Heuristic::SmallDegFirst, seed);
    }

    /// Applies a batch of updates. When the batch is large relative to the
    /// graph (more than `rebuild_fraction` of the current edge count), the
    /// graph is mutated directly and the index rebuilt once — cheaper than
    /// maintaining through every update. Otherwise each update is
    /// maintained incrementally.
    ///
    /// All edges are validated first; an invalid op aborts with no state
    /// change.
    pub fn apply_batch(
        &mut self,
        ops: &[BatchOp],
        rebuild_fraction: f64,
    ) -> Result<UpdateStats, EdgeListError> {
        // Validate against a simulated edge set.
        let mut delta: kcore_graph::FxHashMap<u64, bool> = Default::default();
        for &op in ops {
            let (u, v, present_after) = match op {
                BatchOp::Insert(u, v) => (u, v, true),
                BatchOp::Remove(u, v) => (u, v, false),
            };
            if u == v {
                return Err(EdgeListError::SelfLoop(u));
            }
            let n = self.graph.num_vertices() as VertexId;
            if u >= n {
                return Err(EdgeListError::UnknownVertex(u));
            }
            if v >= n {
                return Err(EdgeListError::UnknownVertex(v));
            }
            let key = kcore_graph::edge_key(u, v);
            let currently = *delta.get(&key).unwrap_or(&self.graph.has_edge(u, v));
            match (currently, present_after) {
                (true, true) => return Err(EdgeListError::Duplicate(u, v)),
                (false, false) => return Err(EdgeListError::Missing(u, v)),
                _ => {}
            }
            delta.insert(key, present_after);
        }

        let threshold = (self.graph.num_edges() as f64 * rebuild_fraction) as usize;
        if ops.len() > threshold.max(1) {
            // Bulk path: mutate the graph, rebuild once. Removals leave
            // arena holes; one compaction check per batch before the
            // rebuild's decomposition scans the adjacency heavily.
            let before = self.core.clone();
            for &op in ops {
                match op {
                    BatchOp::Insert(u, v) => self.graph.insert_edge_unchecked(u, v),
                    BatchOp::Remove(u, v) => self.graph.remove_edge(u, v).expect("validated above"),
                }
            }
            self.graph
                .maintain_adjacency(kcore_graph::DEFAULT_MAX_HOLE_RATIO);
            // Recompute + k-order bridge: cheaper than the full
            // heuristic-peel rebuild, identical observable state.
            self.rebuild_via_decomposition();
            let changed = before
                .iter()
                .zip(self.core.iter())
                .filter(|(a, b)| a != b)
                .count();
            Ok(UpdateStats {
                visited: self.graph.num_vertices(),
                changed,
                ..UpdateStats::default()
            })
        } else {
            // Incremental path: run the ops through the batch engine
            // (pre-reservation, level sort, rank cache), reusing the
            // journal replayer's grouping of consecutive same-kind runs.
            // Everything was validated above, so the batch entry points'
            // skip-counting never triggers.
            let events = ops.iter().map(|&op| match op {
                BatchOp::Insert(u, v) => GraphEvent::EdgeInserted(u, v),
                BatchOp::Remove(u, v) => GraphEvent::EdgeRemoved(u, v),
            });
            let total = crate::journal::replay_batched(self, events, ops.len());
            debug_assert_eq!(total.skipped, 0, "apply_batch pre-validated every op");
            Ok(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreapOrderCore;
    use kcore_graph::fixtures;

    #[test]
    fn vertex_insertion_with_edges() {
        let mut oc = TreapOrderCore::new(fixtures::clique(4), 1);
        let (v, stats) = oc.insert_vertex_with_edges(&[0, 1, 2, 3]).unwrap();
        assert_eq!(oc.core(v), 4); // K5 now
        assert!(stats.changed >= 4);
        oc.validate();
    }

    #[test]
    fn vertex_removal_unwires_everything() {
        let mut oc = TreapOrderCore::new(fixtures::clique(5), 1);
        let stats = oc.remove_vertex(2);
        assert!(stats.changed > 0);
        assert_eq!(oc.core(2), 0);
        assert_eq!(oc.graph().degree(2), 0);
        // remaining K4
        for v in [0u32, 1, 3, 4] {
            assert_eq!(oc.core(v), 3);
        }
        oc.validate();
        assert!(oc.detach_isolated(2));
    }

    #[test]
    fn vertex_insert_rolls_back_nothing_on_error() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        // duplicate neighbour -> error after first two edges applied
        let err = oc.insert_vertex_with_edges(&[0, 1, 0]).unwrap_err();
        assert!(matches!(err, EdgeListError::Duplicate(..)));
        oc.validate(); // index still coherent
    }

    #[test]
    fn batch_incremental_path() {
        let mut oc = TreapOrderCore::new(fixtures::path(30), 1);
        let ops = vec![BatchOp::Insert(0, 29), BatchOp::Remove(5, 6)];
        let stats = oc.apply_batch(&ops, 0.5).unwrap();
        assert!(stats.changed > 0);
        oc.validate();
        assert!(oc.graph().has_edge(0, 29));
        assert!(!oc.graph().has_edge(5, 6));
    }

    #[test]
    fn batch_rebuild_path() {
        let mut oc = TreapOrderCore::new(fixtures::path(10), 1);
        // a batch bigger than half the edges triggers the rebuild path
        let ops: Vec<BatchOp> = (0..8).map(|i| BatchOp::Insert(i, i + 2)).collect();
        let stats = oc.apply_batch(&ops, 0.5).unwrap();
        assert_eq!(stats.visited, oc.graph().num_vertices());
        oc.validate();
        for i in 0..8u32 {
            assert!(oc.graph().has_edge(i, i + 2));
        }
    }

    #[test]
    fn batch_validation_catches_conflicts() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        let before = oc.cores().to_vec();
        // insert then insert again within one batch
        let err = oc
            .apply_batch(&[BatchOp::Insert(0, 3), BatchOp::Insert(3, 0)], 10.0)
            .unwrap_err();
        assert!(matches!(err, EdgeListError::UnknownVertex(3)));
        // remove then remove again
        let err = oc
            .apply_batch(&[BatchOp::Remove(0, 1), BatchOp::Remove(1, 0)], 10.0)
            .unwrap_err();
        assert!(matches!(err, EdgeListError::Missing(1, 0)));
        // nothing changed
        assert_eq!(oc.cores(), &before[..]);
        oc.validate();
    }

    #[test]
    fn rebuild_preserves_semantics() {
        let mut oc = TreapOrderCore::new(fixtures::two_cliques_bridge(), 1);
        let cores = oc.cores().to_vec();
        oc.rebuild();
        assert_eq!(oc.cores(), &cores[..]);
        oc.validate();
        // engine still fully usable
        oc.insert_edge(0, 5).unwrap();
        oc.validate();
    }
}
