//! Component splitting of per-level seed pools for the batch engine.
//!
//! A promotion or dismissal pass at level `k` propagates exclusively
//! through level-`k` vertices: candidates grant `deg*` to same-core
//! neighbours, demotion cascades walk same-core neighbours, and the
//! dismissal peel expands only into `core = k` vertices. Two seeds that
//! are not connected inside the level-`k` induced subgraph therefore
//! drive passes over **disjoint** state — independent units of work.
//!
//! [`OrderCore::split_level_seeds`] discovers that independence with a
//! union-find over the seed-touched subgraph (path-compressed, grown
//! lazily from a BFS that never leaves level `k`), and the
//! `*_edges_with` batch entry points run one pass per component,
//! merging each pass's [`UpdateStats`](kcore_traversal::UpdateStats)
//! counters exactly (`absorb` is a plain sum, so totals are identical
//! whatever order — or worker — executes the component passes).
//!
//! Component passes currently execute sequentially in deterministic
//! component order on the calling thread: the per-level order structures
//! `A_k` are shared across components, so handing the passes to the
//! `kcore-decomp` worker team needs the order layer sharded first (see
//! the ROADMAP sharding item). The split already buys determinism,
//! bounded pass state, and the seam that sharded execution will plug
//! into.

use crate::order_core::OrderCore;
use kcore_graph::{FxHashMap, VertexId};
use kcore_order::OrderSeq;

/// Options for the batched update entry points
/// ([`OrderCore::insert_edges_with`], [`OrderCore::remove_edges_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOptions {
    /// Split each level's seed pool by connected component of the
    /// level-induced subgraph and run one (independent) pass per
    /// component instead of one merged pass per level.
    pub split_components: bool,
}

impl BatchOptions {
    /// The component-splitting configuration.
    pub fn component_split() -> Self {
        BatchOptions {
            split_components: true,
        }
    }
}

/// Lazily-indexed union-find over the vertices a BFS touches (the full
/// vertex range never materialises — seed-touched subgraphs are usually
/// tiny compared to `n`).
struct SeedUnionFind {
    index: FxHashMap<VertexId, u32>,
    parent: Vec<u32>,
}

impl SeedUnionFind {
    fn new() -> Self {
        SeedUnionFind {
            index: FxHashMap::default(),
            parent: Vec::new(),
        }
    }

    /// Slot of `v`, allocating a fresh singleton on first sight. Returns
    /// `(slot, first_sight)`.
    fn slot(&mut self, v: VertexId) -> (u32, bool) {
        if let Some(&i) = self.index.get(&v) {
            return (i, false);
        }
        let i = self.parent.len() as u32;
        self.index.insert(v, i);
        self.parent.push(i);
        (i, true)
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let up = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = up;
            x = up;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

impl<S: OrderSeq> OrderCore<S> {
    /// Partitions `seeds` (all at level `k`) into groups whose promotion /
    /// dismissal passes cannot interact: two seeds share a group iff they
    /// are connected in the subgraph induced by `core = k` vertices,
    /// discovered by BFS from the seeds (the "seed-touched subgraph" —
    /// vertices of other levels are never entered). Groups preserve the
    /// seeds' input order and groups are ordered by first seed occurrence,
    /// so the partition — and every downstream counter — is deterministic.
    pub(crate) fn split_level_seeds(&self, seeds: &[VertexId], k: u32) -> Vec<Vec<VertexId>> {
        debug_assert!(seeds.iter().all(|&s| self.core[s as usize] == k));
        if seeds.len() <= 1 {
            return vec![seeds.to_vec()];
        }
        let mut uf = SeedUnionFind::new();
        let mut queue: Vec<VertexId> = Vec::new();
        for &s in seeds {
            let (_, fresh) = uf.slot(s);
            if !fresh {
                continue; // already reached from an earlier seed's BFS
            }
            // BFS over the level-k subgraph, unioning as we go. Vertices
            // first seen here are enqueued exactly once.
            queue.clear();
            queue.push(s);
            let mut qi = 0;
            while qi < queue.len() {
                let w = queue[qi];
                qi += 1;
                let (ws, _) = uf.slot(w);
                for &z in self.graph.neighbors(w) {
                    if self.core[z as usize] != k {
                        continue;
                    }
                    let (zs, fresh_z) = uf.slot(z);
                    uf.union(ws, zs);
                    if fresh_z {
                        queue.push(z);
                    }
                }
            }
        }
        // Bucket seeds by root, keeping first-occurrence order.
        let mut root_group: FxHashMap<u32, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<VertexId>> = Vec::new();
        for &s in seeds {
            let (slot, _) = uf.slot(s);
            let root = uf.find(slot);
            let gi = *root_group.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(s);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use crate::TreapOrderCore;
    use kcore_graph::DynamicGraph;

    /// Two disjoint cliques with an extra path dangling off the first.
    fn two_islands() -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(12);
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.insert_edge(a, b).unwrap();
            }
        }
        for a in 6..10u32 {
            for b in (a + 1)..10 {
                g.insert_edge(a, b).unwrap();
            }
        }
        g.insert_edge(3, 10).unwrap();
        g.insert_edge(10, 11).unwrap();
        g
    }

    #[test]
    fn seeds_split_by_level_component() {
        let oc = TreapOrderCore::new(two_islands(), 3);
        // Both cliques sit at core 3; they are disconnected within the
        // level-3 subgraph (the bridge path has core 1).
        assert_eq!(oc.core(0), 3);
        assert_eq!(oc.core(6), 3);
        let groups = oc.split_level_seeds(&[0, 6, 2], 3);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 2]); // first-occurrence order kept
        assert_eq!(groups[1], vec![6]);
    }

    #[test]
    fn connected_seeds_stay_merged() {
        let oc = TreapOrderCore::new(two_islands(), 3);
        let groups = oc.split_level_seeds(&[0, 3], 3);
        assert_eq!(groups, vec![vec![0, 3]]);
        let single = oc.split_level_seeds(&[6], 3);
        assert_eq!(single, vec![vec![6]]);
    }
}
