//! Component splitting of per-level seed pools for the batch engine.
//!
//! A promotion or dismissal pass at level `k` propagates exclusively
//! through level-`k` vertices: candidates grant `deg*` to same-core
//! neighbours, demotion cascades walk same-core neighbours, and the
//! dismissal peel expands only into `core = k` vertices. Two seeds that
//! are not connected inside the level-`k` induced subgraph therefore
//! drive passes over **disjoint** state — independent units of work.
//!
//! [`OrderCore::split_level_seeds`] discovers that independence with a
//! union-find over the seed-touched subgraph (path-compressed, grown
//! lazily from a BFS that never leaves level `k`), and the
//! `*_edges_with` batch entry points run one pass per component,
//! merging each pass's [`UpdateStats`](kcore_traversal::UpdateStats)
//! counters exactly (`absorb` is a plain sum, so totals are identical
//! whatever order — or worker — executes the component passes).
//!
//! With a [`BatchOptions::parallelism`] knob set, the component passes
//! run **thread-parallel** through the plan/apply machinery of
//! [`crate::par_pass`]: every component's pass is *planned* read-only on
//! the shared `kcore-decomp` worker team, then the plans are *applied*
//! serially in deterministic component order — bit-identical to the
//! serial loop (the equivalence proptests pin this at 1/2/4 threads).
//! Without the knob the passes execute sequentially on the calling
//! thread, exactly as before.

use crate::order_core::OrderCore;
use kcore_decomp::Parallelism;
use kcore_graph::{FxHashMap, VertexId};
use kcore_order::OrderSeq;

/// Options for the batched update entry points
/// ([`OrderCore::insert_edges_with`], [`OrderCore::remove_edges_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOptions {
    /// Split each level's seed pool by connected component of the
    /// level-induced subgraph and run one (independent) pass per
    /// component instead of one merged pass per level.
    pub split_components: bool,
    /// Run the per-component passes thread-parallel (plan on the shared
    /// worker team, apply serially in component order). Implies nothing
    /// without `split_components`; `None` (default) and configs that
    /// resolve to one thread keep the fully serial path. The config's
    /// `sequential_cutoff` bounds the per-level seed count below which
    /// planning stays on the calling thread (clamped to a small
    /// pass-specific ceiling, so the default cutoff still engages).
    pub parallelism: Option<Parallelism>,
}

impl BatchOptions {
    /// The component-splitting configuration.
    pub fn component_split() -> Self {
        BatchOptions {
            split_components: true,
            parallelism: None,
        }
    }

    /// Component splitting with thread-parallel component passes.
    pub fn parallel(par: Parallelism) -> Self {
        BatchOptions {
            split_components: true,
            parallelism: Some(par),
        }
    }

    /// Worker count the options resolve to on this host (1 = serial).
    pub(crate) fn pass_threads(&self) -> usize {
        match self.parallelism {
            Some(par) if self.split_components => par.resolved_threads(),
            _ => 1,
        }
    }

    /// Minimum per-level seed-pool size for parallel planning.
    pub(crate) fn pass_seed_cutoff(&self) -> usize {
        self.parallelism.map_or(usize::MAX, |par| {
            par.sequential_cutoff
                .min(crate::par_pass::PAR_PASS_SEED_CUTOFF)
        })
    }
}

/// Lazily-indexed union-find over the vertices a BFS touches (the full
/// vertex range never materialises — seed-touched subgraphs are usually
/// tiny compared to `n`).
struct SeedUnionFind {
    index: FxHashMap<VertexId, u32>,
    parent: Vec<u32>,
}

impl SeedUnionFind {
    fn new() -> Self {
        SeedUnionFind {
            index: FxHashMap::default(),
            parent: Vec::new(),
        }
    }

    /// Slot of `v`, allocating a fresh singleton on first sight. Returns
    /// `(slot, first_sight)`.
    fn slot(&mut self, v: VertexId) -> (u32, bool) {
        if let Some(&i) = self.index.get(&v) {
            return (i, false);
        }
        let i = self.parent.len() as u32;
        self.index.insert(v, i);
        self.parent.push(i);
        (i, true)
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let up = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = up;
            x = up;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

impl<S: OrderSeq> OrderCore<S> {
    /// Partitions `seeds` (all at level `k`) into groups whose promotion /
    /// dismissal passes cannot interact: two seeds share a group iff they
    /// are connected in the subgraph induced by `core = k` vertices,
    /// discovered by BFS from the seeds (the "seed-touched subgraph" —
    /// vertices of other levels are never entered). Groups preserve the
    /// seeds' input order and groups are ordered by first seed occurrence,
    /// so the partition — and every downstream counter — is deterministic.
    pub(crate) fn split_level_seeds(&self, seeds: &[VertexId], k: u32) -> Vec<Vec<VertexId>> {
        debug_assert!(seeds.iter().all(|&s| self.core[s as usize] == k));
        if seeds.len() <= 1 {
            return vec![seeds.to_vec()];
        }
        let mut uf = SeedUnionFind::new();
        let mut queue: Vec<VertexId> = Vec::new();
        for &s in seeds {
            let (_, fresh) = uf.slot(s);
            if !fresh {
                continue; // already reached from an earlier seed's BFS
            }
            // BFS over the level-k subgraph, unioning as we go. Vertices
            // first seen here are enqueued exactly once.
            queue.clear();
            queue.push(s);
            let mut qi = 0;
            while qi < queue.len() {
                let w = queue[qi];
                qi += 1;
                let (ws, _) = uf.slot(w);
                for &z in self.graph.neighbors(w) {
                    if self.core[z as usize] != k {
                        continue;
                    }
                    let (zs, fresh_z) = uf.slot(z);
                    uf.union(ws, zs);
                    if fresh_z {
                        queue.push(z);
                    }
                }
            }
        }
        // Bucket seeds by root, keeping first-occurrence order.
        let mut root_group: FxHashMap<u32, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<VertexId>> = Vec::new();
        for &s in seeds {
            let (slot, _) = uf.slot(s);
            let root = uf.find(slot);
            let gi = *root_group.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(s);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use crate::TreapOrderCore;
    use kcore_graph::DynamicGraph;

    /// Two disjoint cliques with an extra path dangling off the first.
    fn two_islands() -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(12);
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.insert_edge(a, b).unwrap();
            }
        }
        for a in 6..10u32 {
            for b in (a + 1)..10 {
                g.insert_edge(a, b).unwrap();
            }
        }
        g.insert_edge(3, 10).unwrap();
        g.insert_edge(10, 11).unwrap();
        g
    }

    #[test]
    fn seeds_split_by_level_component() {
        let oc = TreapOrderCore::new(two_islands(), 3);
        // Both cliques sit at core 3; they are disconnected within the
        // level-3 subgraph (the bridge path has core 1).
        assert_eq!(oc.core(0), 3);
        assert_eq!(oc.core(6), 3);
        let groups = oc.split_level_seeds(&[0, 6, 2], 3);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 2]); // first-occurrence order kept
        assert_eq!(groups[1], vec![6]);
    }

    #[test]
    fn connected_seeds_stay_merged() {
        let oc = TreapOrderCore::new(two_islands(), 3);
        let groups = oc.split_level_seeds(&[0, 3], 3);
        assert_eq!(groups, vec![vec![0, 3]]);
        let single = oc.split_level_seeds(&[6], 3);
        assert_eq!(single, vec![vec![6]]);
    }

    // -----------------------------------------------------------------
    // PR 8 satellite: the split is a true partition under adversarial
    // shapes, and its ordering is deterministic (hence independent of
    // the thread count that later consumes the groups).
    // -----------------------------------------------------------------

    use kcore_graph::VertexId;
    use proptest::prelude::*;

    /// Oracle: component id per level-`k` vertex by plain BFS over the
    /// level-induced subgraph.
    fn level_component_oracle(oc: &TreapOrderCore, k: u32) -> Vec<Option<u32>> {
        let n = oc.cores().len();
        let mut comp: Vec<Option<u32>> = vec![None; n];
        let mut next = 0u32;
        for s in 0..n as u32 {
            if oc.core(s) != k || comp[s as usize].is_some() {
                continue;
            }
            comp[s as usize] = Some(next);
            let mut queue = vec![s];
            let mut qi = 0;
            while qi < queue.len() {
                let w = queue[qi];
                qi += 1;
                for &z in oc.graph.neighbors(w) {
                    if oc.core(z) == k && comp[z as usize].is_none() {
                        comp[z as usize] = Some(next);
                        queue.push(z);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On arbitrary edge soups — which produce both shattered
        /// multi-component levels and single giant components — the
        /// split is a true partition of the seed pool that agrees with
        /// the BFS oracle, keeps first-occurrence ordering, and is
        /// deterministic across invocations.
        #[test]
        fn split_is_a_true_partition(
            pairs in prop::collection::vec((0u32..32, 0u32..32), 0..140),
            seed_sel in prop::collection::vec(any::<bool>(), 32),
        ) {
            let mut g = DynamicGraph::with_vertices(32);
            for (a, b) in pairs {
                if a != b && !g.has_edge(a, b) {
                    g.insert_edge_unchecked(a, b);
                }
            }
            let oc = TreapOrderCore::new(g, 11);
            // Exercise every populated level, not just one.
            let levels: std::collections::BTreeSet<u32> =
                oc.cores().iter().copied().collect();
            for k in levels {
                let seeds: Vec<VertexId> = (0..32u32)
                    .filter(|&v| oc.core(v) == k && seed_sel[v as usize])
                    .collect();
                if seeds.is_empty() {
                    continue;
                }
                let groups = oc.split_level_seeds(&seeds, k);

                // True partition: no seed in two groups, union == pool.
                let mut flat: Vec<VertexId> = groups.iter().flatten().copied().collect();
                prop_assert_eq!(flat.len(), seeds.len(), "partition size mismatch");
                flat.sort_unstable();
                let mut pool = seeds.clone();
                pool.sort_unstable();
                prop_assert_eq!(&flat, &pool, "union of groups must cover the pool exactly");
                prop_assert!(flat.windows(2).all(|w| w[0] != w[1]), "a seed landed in two groups");
                // Within each group, seeds keep their input order.
                for group in &groups {
                    let positions: Vec<usize> = group
                        .iter()
                        .map(|s| seeds.iter().position(|x| x == s).unwrap())
                        .collect();
                    prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
                }

                // Agreement with the BFS oracle: same group iff same
                // level-k component.
                let oracle = level_component_oracle(&oc, k);
                for (gi, group) in groups.iter().enumerate() {
                    let c0 = oracle[group[0] as usize];
                    prop_assert!(c0.is_some());
                    for &s in group {
                        prop_assert_eq!(oracle[s as usize], c0, "split merged two components");
                    }
                    for other in groups.iter().skip(gi + 1) {
                        prop_assert!(
                            oracle[other[0] as usize] != c0,
                            "split separated one component"
                        );
                    }
                }

                // Deterministic: identical output on a second call.
                prop_assert_eq!(groups, oc.split_level_seeds(&seeds, k));
            }
        }

        /// A single giant component never splits: clique levels produce
        /// exactly one group whatever the seed order.
        #[test]
        fn giant_component_stays_whole(
            keys in prop::collection::vec(any::<u32>(), 8),
        ) {
            let mut perm: Vec<u32> = (0..8).collect();
            perm.sort_by_key(|&v| (keys[v as usize], v));
            let mut g = DynamicGraph::with_vertices(8);
            for a in 0..8u32 {
                for b in (a + 1)..8 {
                    g.insert_edge_unchecked(a, b);
                }
            }
            let oc = TreapOrderCore::new(g, 5);
            let k = oc.core(0);
            let groups = oc.split_level_seeds(&perm, k);
            prop_assert_eq!(groups.len(), 1);
            prop_assert_eq!(&groups[0], &perm);
        }
    }
}
