//! Cross-shard boundary repair: the pass that keeps a sharded
//! deployment's *merged* core numbers exact when a promotion/dismissal
//! seed component spans shards.
//!
//! Per-shard engines run the order-based passes of the source paper on
//! their own subgraph, which makes their local cores exact *for that
//! subgraph* — but a shard subgraph's core numbers are only lower bounds
//! on the global ones (a cycle split across two shards is two paths
//! locally: local core 1, global core 2). The merge layer therefore
//! maintains the global core array itself, repairing it per epoch cut
//! with a decrease-only h-operator fixpoint seeded from the cut's event
//! window.
//!
//! ## The operator
//!
//! For an estimate array `est`, define `H(v)` = the largest `k` such
//! that at least `k` neighbours of `v` have `est >= k` (computed capped
//! at `est[v]`, so one `O(deg(v))` counting pass suffices). Two facts
//! drive the pass:
//!
//! 1. any fixpoint of `H` reached from above is a *valid labelling* and
//!    hence `<= core` pointwise (each vertex with label `k` has `k`
//!    neighbours labelled `>= k`, so the sub-labelling supports itself —
//!    Montresor et al.'s locality of k-cores);
//! 2. if `est >= core` pointwise at the start and updates only ever
//!    lower `est[v]` to `H(v) (>= core(v))`, the invariant `est >= core`
//!    holds throughout. Together: at the fixpoint `est == core` exactly.
//!
//! ## Seeding from an event window
//!
//! Let `prev` be the exact cores before the window, `G'` the graph after
//! it, and split the window's *net* effect into `E+` (edges in `G'` but
//! not before) and `E-` (edges before but not in `G'`), `b = |E+|`,
//! `r = |E-|`. Conceptually apply `E-` first (cores only fall, each by
//! at most `r`: `mid >= prev - r`), then `E+` one edge at a time (cores
//! only rise). Every vertex that ends above `mid` is connected *in `G'`*
//! to an `E+` endpoint through vertices that also rise above `mid`, and
//! any such vertex `y` satisfies `deg_{G'}(y) > mid(y) >= prev(y) - r`.
//! So the closure `W`: BFS in `G'` from `E+` endpoints, expanding only
//! through vertices with `deg(y) + r > prev(y)`, covers every vertex
//! whose core may exceed `prev`. Raising `est[w] = max(prev(w),
//! min(deg(w), prev(w) + b))` for `w ∈ W` (both terms are upper bounds
//! on `core'`) restores `est >= core'` everywhere; seeding the queues
//! with `W` and the `E-` endpoints then lets the decrease-only fixpoint
//! finish the job.
//!
//! ## Sharding
//!
//! The pass keeps one FIFO frontier per shard and sweeps them in shard
//! order: each round, every shard drains its queue to a local fixpoint;
//! a lowered vertex re-queues each neighbour still estimated above the
//! new value — into the *current* round if the neighbour is owned by the
//! same shard, into the *next* round otherwise. Those deferred handoffs
//! are exactly the frontier vertices shards exchange; the pass counts
//! them ([`BoundaryPassStats::boundary_exchanges`]) and the rounds until
//! global fixpoint ([`BoundaryPassStats::rounds`]). Update order never
//! affects the result (the decrease-only iteration converges to the
//! unique greatest fixpoint below the seed), so the sharded sweep is
//! provably equivalent to the single-engine pass — the property the
//! sharded ingest proptests check against the decomposition oracle.

use kcore_graph::{DynamicGraph, ShardMap, VertexId};
use std::collections::VecDeque;

/// Counters from one boundary repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryPassStats {
    /// Sweep rounds until global fixpoint (one round = every shard
    /// drained to a local fixpoint once).
    pub rounds: u64,
    /// Frontier vertices handed across shards between rounds — the
    /// cross-shard seed-component traffic. Zero iff every seed component
    /// settled inside its own shard.
    pub boundary_exchanges: u64,
    /// Vertices raised by the window closure before the fixpoint ran.
    pub raised: u64,
    /// Vertex pops across all queues (work measure).
    pub examined: u64,
    /// Vertices whose final core differs from `prev`.
    pub changed: u64,
}

impl BoundaryPassStats {
    /// Accumulates another pass's counters (rounds take the max — they
    /// measure depth, not volume).
    pub fn absorb(&mut self, other: BoundaryPassStats) {
        self.rounds = self.rounds.max(other.rounds);
        self.boundary_exchanges += other.boundary_exchanges;
        self.raised += other.raised;
        self.examined += other.examined;
        self.changed += other.changed;
    }

    /// One-line JSON for ops logs and bench embedding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rounds\":{},\"boundary_exchanges\":{},\"raised\":{},\
             \"examined\":{},\"changed\":{}}}",
            self.rounds, self.boundary_exchanges, self.raised, self.examined, self.changed
        )
    }
}

impl std::fmt::Display for BoundaryPassStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} frontier exchanges, {} raised, {} examined, {} changed",
            self.rounds, self.boundary_exchanges, self.raised, self.examined, self.changed
        )
    }
}

/// Reusable scratch for boundary repair passes.
///
/// All per-vertex scratch is generation-stamped, so a pass touching `m`
/// vertices costs `O(m + frontier)` regardless of graph size.
#[derive(Debug, Default)]
pub struct BoundaryRepair {
    /// Generation stamp per vertex: `== gen` means "in some queue".
    queued: Vec<u64>,
    /// Generation stamp per vertex: `== gen` means "old value recorded".
    touched: Vec<u64>,
    /// `est` value at pass entry for touched vertices.
    old_val: Vec<u32>,
    /// Touched vertices in first-touch order (for the change list).
    touch_list: Vec<VertexId>,
    /// Current generation.
    gen: u64,
    /// Histogram scratch for the h-operator.
    cnt: Vec<u32>,
    /// Per-shard FIFO frontiers for the current round.
    queues: Vec<VecDeque<VertexId>>,
    /// Per-shard frontiers deferred to the next round (cross-shard).
    next: Vec<Vec<VertexId>>,
}

impl BoundaryRepair {
    /// Scratch sized lazily on first use.
    pub fn new() -> Self {
        BoundaryRepair::default()
    }

    fn ensure(&mut self, n: usize, shards: usize) {
        if self.queued.len() < n {
            self.queued.resize(n, 0);
            self.touched.resize(n, 0);
            self.old_val.resize(n, 0);
        }
        if self.queues.len() < shards {
            self.queues.resize_with(shards, VecDeque::new);
            self.next.resize_with(shards, Vec::new);
        }
        self.touch_list.clear();
        self.gen += 1;
    }

    #[inline]
    fn touch(&mut self, v: VertexId, cur: u32) {
        if self.touched[v as usize] != self.gen {
            self.touched[v as usize] = self.gen;
            self.old_val[v as usize] = cur;
            self.touch_list.push(v);
        }
    }

    /// `H(v)` capped at `cap`: the largest `k <= cap` with at least `k`
    /// neighbours estimated `>= k`.
    fn h_of(cnt: &mut Vec<u32>, est: &[u32], nbrs: &[VertexId], cap: u32) -> u32 {
        if cap == 0 {
            return 0;
        }
        let cap_us = cap as usize;
        cnt.clear();
        cnt.resize(cap_us + 1, 0);
        for &w in nbrs {
            cnt[(est[w as usize].min(cap)) as usize] += 1;
        }
        let mut cum = 0u32;
        for k in (1..=cap_us).rev() {
            cum += cnt[k];
            if cum >= k as u32 {
                return k as u32;
            }
        }
        0
    }

    /// Repairs `est` (exact cores before the window) into the exact
    /// cores of `graph` (the post-window union graph), returning the
    /// per-vertex changes as `(vertex, old, new)` in deterministic
    /// first-touch order via `changes`.
    ///
    /// `inserts` / `removes` are the window's **net** edge delta — edges
    /// present after but not before, and vice versa — as applied (no
    /// skipped duplicates, no self-loops, endpoints in range).
    pub fn repair(
        &mut self,
        graph: &DynamicGraph,
        map: &dyn ShardMap,
        est: &mut [u32],
        inserts: &[(VertexId, VertexId)],
        removes: &[(VertexId, VertexId)],
        changes: &mut Vec<(VertexId, u32, u32)>,
    ) -> BoundaryPassStats {
        let shards = map.shards();
        self.ensure(est.len(), shards);
        let mut stats = BoundaryPassStats::default();
        changes.clear();

        let b = inserts.len() as u32;
        let r = removes.len() as u32;

        // Window closure W: BFS in the post-window graph from applied
        // insert endpoints, expanding through vertices whose degree still
        // clears the (removal-slack adjusted) previous core — a superset
        // of every vertex whose core can have risen. Raise each to the
        // cheapest sound upper bound and seed the frontier with it.
        let mut bfs: VecDeque<VertexId> = VecDeque::new();
        let seed = |this: &mut Self,
                    bfs: &mut VecDeque<VertexId>,
                    est: &mut [u32],
                    stats: &mut BoundaryPassStats,
                    v: VertexId| {
            if this.queued[v as usize] == this.gen {
                return;
            }
            this.queued[v as usize] = this.gen;
            let cur = est[v as usize];
            this.touch(v, cur);
            let raised = cur.max((graph.degree(v) as u32).min(cur + b));
            if raised > cur {
                est[v as usize] = raised;
                stats.raised += 1;
            }
            bfs.push_back(v);
        };
        for &(u, v) in inserts {
            seed(self, &mut bfs, est, &mut stats, u);
            seed(self, &mut bfs, est, &mut stats, v);
        }
        while let Some(v) = bfs.pop_front() {
            // Expansion predicate uses the *entry* value, recorded at
            // first touch — raises must not widen the closure.
            for &w in graph.neighbors(v) {
                if self.queued[w as usize] == self.gen {
                    continue;
                }
                let prev_w = if self.touched[w as usize] == self.gen {
                    self.old_val[w as usize]
                } else {
                    est[w as usize]
                };
                if graph.degree(w) as u32 + r > prev_w {
                    seed(self, &mut bfs, est, &mut stats, w);
                }
            }
        }
        // Everything raised or adjacent to a removal might now violate
        // the h-condition: queue W plus the removal endpoints, each into
        // its owner's frontier.
        let enqueue = |this: &mut Self, v: VertexId| {
            if this.queued[v as usize] != this.gen {
                this.queued[v as usize] = this.gen;
                this.queues[map.owner(v)].push_back(v);
            }
        };
        // W is already stamped; move it into the per-shard queues.
        let w_closure: Vec<VertexId> = self.touch_list.clone();
        for &v in &w_closure {
            self.queues[map.owner(v)].push_back(v);
        }
        for &(u, v) in removes {
            enqueue(self, u);
            enqueue(self, v);
        }

        // Sharded decrease-only fixpoint: rounds of per-shard local
        // fixpoints, cross-shard frontier handoffs deferred one round.
        let mut cnt = std::mem::take(&mut self.cnt);
        loop {
            if self.queues.iter().all(|q| q.is_empty()) {
                break;
            }
            stats.rounds += 1;
            for s in 0..shards {
                while let Some(v) = self.queues[s].pop_front() {
                    self.queued[v as usize] = 0;
                    stats.examined += 1;
                    let cur = est[v as usize];
                    let h = Self::h_of(&mut cnt, est, graph.neighbors(v), cur);
                    if h >= cur {
                        continue;
                    }
                    self.touch(v, cur);
                    est[v as usize] = h;
                    for &w in graph.neighbors(v) {
                        if est[w as usize] > h && self.queued[w as usize] != self.gen {
                            self.queued[w as usize] = self.gen;
                            let ow = map.owner(w);
                            if ow == s {
                                self.queues[s].push_back(w);
                            } else {
                                stats.boundary_exchanges += 1;
                                self.next[ow].push(w);
                            }
                        }
                    }
                }
            }
            for s in 0..shards {
                let deferred = &mut self.next[s];
                self.queues[s].extend(deferred.drain(..));
            }
        }
        self.cnt = cnt;

        for &v in &self.touch_list {
            let (old, new) = (self.old_val[v as usize], est[v as usize]);
            if old != new {
                changes.push((v, old, new));
            }
        }
        stats.changed = changes.len() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_decomp::core_decomposition;
    use kcore_graph::{HashShardMap, RangeShardMap};

    fn run(
        before: &DynamicGraph,
        after: &DynamicGraph,
        inserts: &[(u32, u32)],
        removes: &[(u32, u32)],
        shards: usize,
    ) -> (Vec<u32>, BoundaryPassStats, Vec<(u32, u32, u32)>) {
        let mut est = core_decomposition(before);
        let mut repair = BoundaryRepair::new();
        let mut changes = Vec::new();
        let stats = repair.repair(
            after,
            &HashShardMap::new(shards),
            &mut est,
            inserts,
            removes,
            &mut changes,
        );
        (est, stats, changes)
    }

    #[test]
    fn insert_only_window_matches_oracle() {
        let mut g = DynamicGraph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            g.insert_edge(u, v).unwrap();
        }
        let mut after = g.clone();
        let ins = [(3, 0), (0, 2), (1, 3)];
        for &(u, v) in &ins {
            after.insert_edge(u, v).unwrap();
        }
        for shards in [1, 2, 4] {
            let (est, stats, changes) = run(&g, &after, &ins, &[], shards);
            assert_eq!(est, core_decomposition(&after));
            assert!(stats.raised > 0);
            assert!(!changes.is_empty());
        }
    }

    #[test]
    fn removal_only_window_matches_oracle() {
        let mut g = DynamicGraph::with_vertices(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)] {
            g.insert_edge(u, v).unwrap();
        }
        let mut after = g.clone();
        after.remove_edge(2, 0).unwrap();
        for shards in [1, 2, 4] {
            let (est, stats, _) = run(&g, &after, &[], &[(2, 0)], shards);
            assert_eq!(est, core_decomposition(&after));
            assert!(stats.changed > 0);
        }
    }

    #[test]
    fn split_cycle_spanning_shards_is_exact() {
        // A 4-cycle split across two shards by a range map: each shard's
        // subgraph is a path (local core 1), while the union's core is 2
        // — the canonical case where per-shard cores are only lower
        // bounds and the merge-side repair must produce the global
        // answer.
        let before = DynamicGraph::with_vertices(4);
        let mut after = DynamicGraph::with_vertices(4);
        let ins = [(0, 1), (1, 2), (2, 3), (3, 0)];
        for &(u, v) in &ins {
            after.insert_edge(u, v).unwrap();
        }
        let map = RangeShardMap::for_universe(4, 2); // {0,1} | {2,3}
        let mut est = core_decomposition(&before);
        let mut repair = BoundaryRepair::new();
        let mut changes = Vec::new();
        let stats = repair.repair(&after, &map, &mut est, &ins, &[], &mut changes);
        assert_eq!(est, core_decomposition(&after));
        assert_eq!(est, vec![2, 2, 2, 2]);
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn removal_deflation_crosses_the_shard_boundary() {
        // Break a 4-cycle split across two shards: the dismissal seed is
        // entirely in shard 0, but the core drop cascades to shard 1's
        // vertices, which are nobody's seeds — the pass must hand them
        // across as frontier vertices, deferred one round.
        let mut before = DynamicGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            before.insert_edge(u, v).unwrap();
        }
        let mut after = before.clone();
        after.remove_edge(0, 1).unwrap();
        let map = RangeShardMap::for_universe(4, 2); // {0,1} | {2,3}
        let mut est = core_decomposition(&before);
        let mut repair = BoundaryRepair::new();
        let mut changes = Vec::new();
        let stats = repair.repair(&after, &map, &mut est, &[], &[(0, 1)], &mut changes);
        assert_eq!(est, core_decomposition(&after));
        assert_eq!(est, vec![1, 1, 1, 1]);
        assert!(
            stats.boundary_exchanges >= 1,
            "deflation must cross the shard boundary: {stats:?}"
        );
        assert!(stats.rounds >= 2, "handoff defers one round: {stats:?}");
    }

    #[test]
    fn mixed_window_with_removal_slack_matches_oracle() {
        // Removals can lower the degree of a vertex on a rising path
        // below its previous core; the +r slack in the closure predicate
        // must keep the path traversable.
        let mut before = DynamicGraph::with_vertices(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)] {
            before.insert_edge(u, v).unwrap();
        }
        let mut after = before.clone();
        let ins = [(0, 2), (1, 3), (4, 6), (5, 7)];
        let rem = [(3, 4)];
        for &(u, v) in &ins {
            after.insert_edge(u, v).unwrap();
        }
        for &(u, v) in &rem {
            after.remove_edge(u, v).unwrap();
        }
        for shards in [1, 2, 3, 4] {
            let (est, _, _) = run(&before, &after, &ins, &rem, shards);
            assert_eq!(est, core_decomposition(&after), "{shards} shards");
        }
    }

    #[test]
    fn empty_window_is_a_noop() {
        let mut g = DynamicGraph::with_vertices(4);
        g.insert_edge(0, 1).unwrap();
        let (est, stats, changes) = run(&g, &g.clone(), &[], &[], 2);
        assert_eq!(est, core_decomposition(&g));
        assert_eq!(stats, BoundaryPassStats::default());
        assert!(changes.is_empty());
    }

    #[test]
    fn scratch_reuse_across_windows_stays_exact() {
        let mut repair = BoundaryRepair::new();
        let mut g = DynamicGraph::with_vertices(10);
        let mut est = core_decomposition(&g);
        let map = HashShardMap::new(3);
        let mut changes = Vec::new();
        // Grow a clique edge by edge, one window per edge.
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                let before_cores = est.clone();
                g.insert_edge(u, v).unwrap();
                repair.repair(&g, &map, &mut est, &[(u, v)], &[], &mut changes);
                assert_eq!(est, core_decomposition(&g));
                for &(cv, old, new) in &changes {
                    assert_eq!(before_cores[cv as usize], old);
                    assert_eq!(est[cv as usize], new);
                    assert_ne!(old, new);
                }
            }
        }
        // Then peel it back down.
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                if u % 2 == 0 {
                    g.remove_edge(u, v).unwrap();
                    repair.repair(&g, &map, &mut est, &[], &[(u, v)], &mut changes);
                    assert_eq!(est, core_decomposition(&g));
                }
            }
        }
    }
}
