//! # kcore-maint
//!
//! The paper's contribution: **order-based core maintenance**.
//!
//! [`OrderCore`] owns a dynamic graph plus the *k-order index*:
//!
//! * per core value `k`, the sequence `O_k` as an intrusive doubly-linked
//!   list and an order-statistics structure `A_k` (treap by default,
//!   tag-list for the ablation) answering `u ⪯ v` and rank queries;
//! * per vertex, `core`, `deg⁺` (remaining degree, Definition 5.2) and
//!   `mcd` (needed by removals).
//!
//! [`OrderCore::insert_edge`] implements `OrderInsert` (Algorithm 2 with
//! `RemoveCandidates`, Algorithm 3); [`OrderCore::remove_edge`] implements
//! `OrderRemoval` (Algorithm 4). Both maintain the k-order so that
//! Lemma 5.1 (`deg⁺(v) <= k` for all `v ∈ O_k`) holds after every update —
//! [`OrderCore::validate`] asserts exactly that, plus agreement with a
//! from-scratch decomposition.
//!
//! One deliberate deviation from a literal reading of the pseudocode, with
//! no semantic effect: the `A_K` structure is **frozen during a pass** and
//! repaired in the ending phase. All order tests during a pass compare
//! positions in the pass-start snapshot (which is what Algorithms 2 and 3
//! mean by `⪯`), so deferring the `A_K` edits — moving `V*` into
//! `A_{K+1}`, repositioning the Observation 6.1 vertices — keeps the jump
//! heap's rank keys mutually consistent without changing any decision the
//! algorithm takes.
//!
//! [`maintainer::CoreMaintainer`] unifies this engine with the traversal
//! baseline and a naive recompute baseline for the benchmark harness.

pub mod batch;
pub mod boundary;
pub mod components;
pub mod journal;
pub mod maintainer;
pub mod order_core;
pub mod persist;
pub mod planner;
pub mod query;
pub mod vertex;

mod insert;
mod par_pass;
mod remove;

pub use boundary::{BoundaryPassStats, BoundaryRepair};
pub use components::BatchOptions;
pub use kcore_traversal::UpdateStats;
pub use maintainer::{CoreMaintainer, RecomputeCore};
pub use order_core::OrderCore;
pub use persist::PersistError;
pub use planner::{PlanPolicy, PlannedCore, Planner, PlannerConfig, PlannerStats, Strategy};
pub use vertex::BatchOp;

/// `OrderCore` instantiated with the paper's treap-backed `A_k`.
pub type TreapOrderCore = OrderCore<kcore_order::OrderTreap>;

/// `OrderCore` instantiated with the tag-list `A_k` (ablation variant).
pub type TagOrderCore = OrderCore<kcore_order::TagList>;

/// `OrderCore` instantiated with the skip-list `A_k` (ablation variant).
pub type SkipOrderCore = OrderCore<kcore_order::SkipList>;

/// [`PlannedCore`] over the paper's treap-backed `A_k` — the adaptive
/// engine the batch benchmarks drive.
pub type PlannedTreapCore = PlannedCore<kcore_order::OrderTreap>;

#[cfg(test)]
mod tests;
