//! Read-side queries over the maintained index: k-core membership and
//! extraction, degeneracy, histograms, subcores, and k-order inspection.
//!
//! Everything here works off the *maintained* state — no recomputation —
//! which is the point of core maintenance: after any update stream the
//! queries are immediately consistent.

use crate::order_core::OrderCore;
use kcore_graph::{DynamicGraph, VertexId};
use kcore_order::OrderSeq;

impl<S: OrderSeq> OrderCore<S> {
    /// `true` iff `v` belongs to the `k`-core.
    #[inline]
    pub fn in_kcore(&self, v: VertexId, k: u32) -> bool {
        self.core(v) >= k
    }

    /// All vertices of the `k`-core. The maintained per-level counts give
    /// the exact member count up front, so the result vector is allocated
    /// once at its final size (and an empty `k`-core allocates nothing).
    pub fn kcore_members(&self, k: u32) -> Vec<VertexId> {
        let total: usize = self.level_counts.iter().skip(k as usize).copied().sum();
        let mut out = Vec::with_capacity(total);
        if total == 0 {
            return out;
        }
        out.extend(
            self.cores()
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c >= k)
                .map(|(v, _)| v as VertexId),
        );
        debug_assert_eq!(out.len(), total);
        out
    }

    /// The `k`-core as a subgraph (original ids; outside vertices are
    /// isolated).
    pub fn kcore_subgraph(&self, k: u32) -> DynamicGraph {
        let mut sub = DynamicGraph::with_vertices(self.graph().num_vertices());
        for (u, v) in self.graph().edges() {
            if self.core(u) >= k && self.core(v) >= k {
                sub.insert_edge_unchecked(u, v);
            }
        }
        sub
    }

    /// The degeneracy of the graph: the largest `k` with a non-empty
    /// `k`-core. Served from the incrementally maintained per-level
    /// counts in `O(levels)` — no `O(n)` rescan of the core numbers.
    pub fn degeneracy(&self) -> u32 {
        self.level_counts.iter().rposition(|&c| c > 0).unwrap_or(0) as u32
    }

    /// `hist[k]` = number of vertices with core number exactly `k`.
    /// `O(levels)`: a copy of the maintained per-level counts, truncated
    /// at the degeneracy (promotion passes may leave empty trailing
    /// levels behind).
    pub fn core_histogram(&self) -> Vec<usize> {
        self.level_counts[..=self.degeneracy() as usize].to_vec()
    }

    /// The subcore `sc(v)`: the maximal connected set of vertices sharing
    /// `v`'s core number (Section III) — by Theorem 3.2, the region any
    /// single update around `v` can possibly affect.
    pub fn subcore(&self, v: VertexId) -> Vec<VertexId> {
        let k = self.core(v);
        let mut seen = vec![false; self.graph().num_vertices()];
        let mut out = vec![v];
        let mut stack = vec![v];
        seen[v as usize] = true;
        while let Some(x) = stack.pop() {
            for &w in self.graph().neighbors(x) {
                if !seen[w as usize] && self.core(w) == k {
                    seen[w as usize] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out
    }

    /// The global k-order as one sequence `O_0 O_1 O_2 …` (diagnostics;
    /// `O(n)`).
    pub fn global_order(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.graph().num_vertices());
        for k in 0..self.lists.num_lists() as u32 {
            out.extend(self.level_order(k));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::TreapOrderCore;
    use kcore_graph::fixtures;

    #[test]
    fn kcore_queries_on_paper_graph() {
        let pg = fixtures::PaperGraph::small();
        let oc = TreapOrderCore::new(pg.graph.clone(), 1);
        assert_eq!(oc.degeneracy(), 3);
        assert_eq!(oc.kcore_members(3).len(), 8);
        assert_eq!(oc.kcore_members(2).len(), 13);
        assert!(oc.in_kcore(pg.v(7), 3));
        assert!(!oc.in_kcore(pg.v(1), 3));
        let sub = oc.kcore_subgraph(3);
        assert_eq!(sub.num_edges(), 12);
        let hist = oc.core_histogram();
        assert_eq!(hist[1], 21);
        assert_eq!(hist[2], 5);
        assert_eq!(hist[3], 8);
    }

    #[test]
    fn queries_track_updates() {
        let mut oc = TreapOrderCore::new(fixtures::path(4), 1);
        assert_eq!(oc.degeneracy(), 1);
        oc.insert_edge(3, 0).unwrap();
        assert_eq!(oc.degeneracy(), 2);
        assert_eq!(oc.kcore_members(2).len(), 4);
        oc.remove_edge(1, 2).unwrap();
        assert_eq!(oc.degeneracy(), 1);
        assert!(oc.kcore_members(2).is_empty());
    }

    #[test]
    fn subcore_matches_example_3_1() {
        let pg = fixtures::PaperGraph::full();
        let oc = TreapOrderCore::new(pg.graph.clone(), 1);
        let mut sc2 = oc.subcore(pg.v(3));
        sc2.sort_unstable();
        let mut expected: Vec<u32> = (1..=5).map(|j| pg.v(j)).collect();
        expected.sort_unstable();
        assert_eq!(sc2, expected);
        assert_eq!(oc.subcore(pg.u(77)).len(), 2001);
        assert_eq!(oc.subcore(pg.v(11)).len(), 4);
    }

    #[test]
    fn global_order_is_a_permutation_grouped_by_core() {
        let pg = fixtures::PaperGraph::small();
        let oc = TreapOrderCore::new(pg.graph.clone(), 1);
        let order = oc.global_order();
        assert_eq!(order.len(), pg.graph.num_vertices());
        let cores: Vec<u32> = order.iter().map(|&v| oc.core(v)).collect();
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        assert_eq!(cores, sorted);
    }
}
