//! The batched update engine.
//!
//! Real update traffic (streaming graphs, temporal edge logs, journal
//! replay) arrives in batches, and a batch admits optimisations a
//! single-edge API cannot express:
//!
//! * **adjacency pre-reservation** — per-vertex degree deltas are counted
//!   up front and every touched [`AdjArena`](kcore_graph::AdjArena) slot
//!   is sized once, so the steady-state per-edge path performs zero heap
//!   allocation and zero slot relocation;
//! * **level-sorted application** — edges are grouped by the (lower)
//!   core level of their endpoints, so consecutive updates touch the
//!   same `O_k`/`A_k` structures while they are cache-hot;
//! * **rank caching** — between promotion/dismissal passes the k-order
//!   is frozen, so the `O(log n)` `A_k` rank walk behind every
//!   same-level root test is computed once per vertex per frozen window
//!   ([`OrderCore::cached_rank`]) instead of once per edge — hubs in
//!   power-law batches hit this constantly;
//! * **Lemma 5.2 short-circuit** — no-op edges (the vast majority, see
//!   Fig 10b of the paper) are counted and dropped before any order
//!   structure is touched;
//! * **shared scratch** — the min-heap `B`, candidate set `VC`, and the
//!   epoch-stamped scratch arrays live on the engine and are reused
//!   across the whole batch (no per-edge setup beyond an epoch bump).
//!
//! Unlike the single-edge API, the batch entry points **skip** invalid
//! entries (self loops, duplicates — also within the batch —, missing
//! edges, out-of-range endpoints) instead of erroring, counting them in
//! [`UpdateStats::skipped`]: a stream replayer wants throughput, not a
//! transaction abort on the first dirty record. Use
//! [`OrderCore::apply_batch`] for all-or-nothing semantics.
//!
//! Core numbers of the final graph are order-independent, so the
//! level-sorted application order changes no observable core value —
//! property-tested in `tests/proptest_maint.rs` against both
//! edge-at-a-time insertion and a from-scratch decomposition.

use crate::order_core::OrderCore;
use kcore_graph::VertexId;
use kcore_order::OrderSeq;
use kcore_traversal::UpdateStats;

impl<S: OrderSeq> OrderCore<S> {
    /// Inserts a batch of edges, updating core numbers and the k-order.
    /// Invalid entries (self loops, duplicate edges — including
    /// duplicates within `edges` —, unknown endpoints) are skipped and
    /// counted in [`UpdateStats::skipped`]. Returns aggregate stats for
    /// the whole batch.
    ///
    /// Works in two phases. The **apply phase** admits every edge into
    /// the (pre-reserved) adjacency arena, updates `mcd`, and bumps the
    /// root's `deg⁺` — all against the *frozen* k-order, so every
    /// same-level root test is answered by the rank cache. Roots left
    /// violating Lemma 5.1 (`deg⁺ > core`) are collected as dirty. The
    /// **pass phase** then runs one multi-seed promotion pass per dirty
    /// level, ascending, instead of one pass per edge: seeds at the
    /// lowest dirty level are resolved together, and promoted vertices
    /// that still violate at the next level (a batch can raise a core by
    /// more than one) cascade upward until Lemma 5.1 holds everywhere.
    pub fn insert_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        let n = self.graph.num_vertices() as VertexId;

        // Range/self-loop filter.
        let mut batch: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u == v || u >= n || v >= n {
                stats.skipped += 1;
                continue;
            }
            batch.push((u, v));
        }

        // Pre-reserve adjacency slots from the batch's per-vertex degree
        // deltas (duplicates overcount slightly — harmless headroom).
        let mut endpoints: Vec<VertexId> = Vec::with_capacity(batch.len() * 2);
        for &(u, v) in &batch {
            endpoints.push(u);
            endpoints.push(v);
        }
        endpoints.sort_unstable();
        let mut i = 0;
        while i < endpoints.len() {
            let v = endpoints[i];
            let mut j = i + 1;
            while j < endpoints.len() && endpoints[j] == v {
                j += 1;
            }
            self.graph.reserve_neighbors(v, j - i);
            i = j;
        }

        // ---- apply phase (k-order frozen; rank cache fully valid) ----
        let dirty_epoch = self.bump_epoch();
        let mut dirty: Vec<VertexId> = Vec::new();
        for &(u, v) in &batch {
            if self.graph.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            self.graph.insert_edge_unchecked(u, v);

            // mcd reflects the new edge immediately (old core numbers).
            let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
            if cv >= cu {
                self.mcd[u as usize] += 1;
            }
            if cu >= cv {
                self.mcd[v as usize] += 1;
            }

            // Root = earlier endpoint in k-order; same-level ties resolve
            // through the rank cache instead of a fresh A_k walk.
            let root = if cu < cv {
                u
            } else if cv < cu {
                v
            } else if self.cached_rank(u) < self.cached_rank(v) {
                u
            } else {
                v
            };
            let ri = root as usize;
            self.deg_plus[ri] += 1;
            if self.deg_plus[ri] <= self.core[ri] {
                // Lemma 5.2: the k-order absorbs this edge unchanged.
                stats.noop += 1;
            } else if self.touch_mark[ri] != dirty_epoch {
                self.touch_mark[ri] = dirty_epoch;
                dirty.push(root);
            }
        }

        // ---- pass phase: one multi-seed pass per dirty level, ascending ----
        let mut seeds: Vec<VertexId> = Vec::new();
        while !dirty.is_empty() {
            // Drop roots a previous pass already resolved (demoted back
            // under the Lemma 5.1 budget, or promoted past the violation).
            dirty.retain(|&v| self.deg_plus[v as usize] > self.core[v as usize]);
            let Some(k) = dirty.iter().map(|&v| self.core[v as usize]).min() else {
                break;
            };
            seeds.clear();
            seeds.extend(
                dirty
                    .iter()
                    .copied()
                    .filter(|&v| self.core[v as usize] == k),
            );
            dirty.retain(|&v| self.core[v as usize] != k);
            let seed_batch = std::mem::take(&mut seeds);
            self.promote_pass(&seed_batch, k, &mut stats);
            seeds = seed_batch;
            // A multi-seed pass can promote vertices that still violate
            // at level k + 1: cascade them.
            for i in 0..self.vstar.len() {
                let w = self.vstar[i];
                if self.deg_plus[w as usize] > self.core[w as usize] {
                    dirty.push(w);
                }
            }
        }
        stats
    }

    /// Removes a batch of edges, updating core numbers and the k-order
    /// after each admitted edge. Invalid entries (self loops, absent
    /// edges — including edges already removed earlier in the batch —,
    /// unknown endpoints) are skipped and counted in
    /// [`UpdateStats::skipped`]. Returns aggregate stats.
    pub fn remove_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        let n = self.graph.num_vertices() as VertexId;

        let mut batch: Vec<(u32, VertexId, VertexId)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u == v || u >= n || v >= n {
                stats.skipped += 1;
                continue;
            }
            let k = self.core[u as usize].min(self.core[v as usize]);
            batch.push((k, u, v));
        }
        // Dismissals cascade downward; processing high levels first keeps
        // each level's structures hot while they are still being hit.
        batch.sort_by_key(|&(k, _, _)| std::cmp::Reverse(k));

        for &(_, u, v) in &batch {
            if !self.graph.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            self.graph.remove_edge(u, v).expect("edge present");

            let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
            debug_assert!(cu >= 1 && cv >= 1, "an incident edge implies core >= 1");
            if cu <= cv {
                self.mcd[u as usize] -= 1;
            }
            if cv <= cu {
                self.mcd[v as usize] -= 1;
            }
            let earlier = if cu < cv {
                u
            } else if cv < cu {
                v
            } else if self.cached_rank(u) < self.cached_rank(v) {
                u
            } else {
                v
            };
            self.deg_plus[earlier as usize] -= 1;

            self.dismiss_pass(u, v, cu.min(cv), &mut stats);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use crate::TreapOrderCore;
    use kcore_decomp::core_decomposition;
    use kcore_graph::fixtures;

    #[test]
    fn batch_insert_matches_sequential() {
        let g = fixtures::path(12);
        let edges: Vec<(u32, u32)> = vec![(0, 11), (2, 9), (3, 8), (1, 10), (4, 7)];
        let mut batched = TreapOrderCore::new(g.clone(), 1);
        let stats = batched.insert_edges(&edges);
        assert_eq!(stats.skipped, 0);
        let mut seq = TreapOrderCore::new(g, 1);
        for &(u, v) in &edges {
            seq.insert_edge(u, v).unwrap();
        }
        assert_eq!(batched.cores(), seq.cores());
        batched.validate();
    }

    #[test]
    fn batch_insert_skips_invalid_entries() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        // self loop, duplicate of an existing edge, in-batch duplicate,
        // out-of-range endpoint — all skipped, the one good edge lands.
        let stats = oc.insert_edges(&[(0, 0), (0, 1), (99, 1), (2, 2)]);
        assert_eq!(stats.skipped, 4);
        let before = oc.graph().num_edges();
        let stats = oc.insert_edges(&[(1, 2), (2, 1)]);
        // (1,2) already exists; (2,1) is its duplicate too
        assert_eq!(stats.skipped, 2);
        assert_eq!(oc.graph().num_edges(), before);
        oc.validate();
    }

    #[test]
    fn batch_insert_promotes_like_decomposition() {
        // Close a long cycle and add chords: multiple promotions in one
        // batch, compared against a from-scratch decomposition.
        let g = fixtures::path(30);
        let mut oc = TreapOrderCore::new(g, 7);
        let mut batch = vec![(0u32, 29u32)];
        for i in 0..28 {
            batch.push((i, i + 2));
        }
        let stats = oc.insert_edges(&batch);
        assert_eq!(stats.skipped, 0);
        assert!(stats.changed > 0);
        assert_eq!(oc.cores(), &core_decomposition(oc.graph())[..]);
        oc.validate();
    }

    #[test]
    fn batch_remove_matches_sequential() {
        let mut g = fixtures::clique(8);
        for i in 0..7u32 {
            let _ = g.insert_edge(i, i + 1); // already present; no-ops
        }
        let edges: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5), (0, 2), (1, 3)];
        let mut batched = TreapOrderCore::new(g.clone(), 3);
        let stats = batched.remove_edges(&edges);
        assert_eq!(stats.skipped, 0);
        let mut seq = TreapOrderCore::new(g, 3);
        for &(u, v) in &edges {
            seq.remove_edge(u, v).unwrap();
        }
        assert_eq!(batched.cores(), seq.cores());
        batched.validate();
    }

    #[test]
    fn batch_remove_skips_invalid_entries() {
        let mut oc = TreapOrderCore::new(fixtures::clique(4), 1);
        let stats = oc.remove_edges(&[(0, 1), (0, 1), (3, 3), (0, 99)]);
        // second (0,1) is already gone, (3,3) self loop, (0,99) range
        assert_eq!(stats.skipped, 3);
        assert_eq!(oc.graph().num_edges(), 5);
        oc.validate();
    }

    #[test]
    fn interleaved_batches_stay_valid() {
        let mut oc = TreapOrderCore::new(fixtures::two_cliques_bridge(), 5);
        let inserts: Vec<(u32, u32)> = vec![(0, 5), (1, 6), (2, 7), (3, 4)];
        oc.insert_edges(&inserts);
        oc.validate();
        oc.remove_edges(&inserts);
        oc.validate();
        let reference = core_decomposition(oc.graph());
        assert_eq!(oc.cores(), &reference[..]);
    }

    #[test]
    fn empty_batches_are_free() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        let stats = oc.insert_edges(&[]);
        assert_eq!(stats, Default::default());
        let stats = oc.remove_edges(&[]);
        assert_eq!(stats, Default::default());
        oc.validate();
    }
}
