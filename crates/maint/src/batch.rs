//! The batched update engine.
//!
//! Real update traffic (streaming graphs, temporal edge logs, journal
//! replay) arrives in batches, and a batch admits optimisations a
//! single-edge API cannot express:
//!
//! * **adjacency pre-reservation** — per-vertex degree deltas are counted
//!   up front and every touched [`AdjArena`](kcore_graph::AdjArena) slot
//!   is sized once, so the steady-state per-edge path performs zero heap
//!   allocation and zero slot relocation;
//! * **one pass per affected level** — all Lemma 5.1 violators of a
//!   level are resolved by a single multi-seed promotion pass (ascending,
//!   with an upward cascade), and all dismissible vertices of a level by
//!   a single multi-seed dismissal pass (descending, with a downward
//!   cascade) — instead of one pass per edge;
//! * **rank caching** — between promotion/dismissal passes the k-order
//!   is frozen, so the `O(log n)` `A_k` rank walk behind every
//!   same-level root test is computed once per vertex per frozen window
//!   ([`OrderCore::cached_rank`]) instead of once per edge — hubs in
//!   power-law batches hit this constantly;
//! * **Lemma 5.2 short-circuit** — no-op edges (the vast majority, see
//!   Fig 10b of the paper) are counted and dropped before any order
//!   structure is touched;
//! * **shared scratch** — the min-heap `B`, candidate set `VC`, and the
//!   epoch-stamped scratch arrays live on the engine and are reused
//!   across the whole batch (no per-edge setup beyond an epoch bump);
//! * **scheduled compaction** — removal batches consider adjacency-arena
//!   compaction exactly once, between the apply and pass phases, instead
//!   of risking a latency spike inside a per-edge hot loop.
//!
//! Unlike the single-edge API, the batch entry points **skip** invalid
//! entries (self loops, duplicates — also within the batch —, missing
//! edges, out-of-range endpoints) instead of erroring, counting them in
//! [`UpdateStats::skipped`]: a stream replayer wants throughput, not a
//! transaction abort on the first dirty record. Use
//! [`OrderCore::apply_batch`] for all-or-nothing semantics.
//!
//! Core numbers of the final graph are order-independent, so neither the
//! deferred passes nor the merged per-level walks change any observable
//! core value — property-tested in `tests/proptest_maint.rs` against both
//! edge-at-a-time updates and a from-scratch decomposition.

use crate::components::BatchOptions;
use crate::order_core::OrderCore;
use kcore_graph::{VertexId, DEFAULT_MAX_HOLE_RATIO};
use kcore_order::OrderSeq;
use kcore_traversal::UpdateStats;

impl<S: OrderSeq> OrderCore<S> {
    /// Inserts a batch of edges, updating core numbers and the k-order.
    /// Invalid entries (self loops, duplicate edges — including
    /// duplicates within `edges` —, unknown endpoints) are skipped and
    /// counted in [`UpdateStats::skipped`]. Returns aggregate stats for
    /// the whole batch. Equivalent to [`OrderCore::insert_edges_with`]
    /// under the default [`BatchOptions`] (merged per-level passes).
    ///
    /// Works in two phases. The **apply phase** admits every edge into
    /// the (pre-reserved) adjacency arena, updates `mcd`, and bumps the
    /// root's `deg⁺` — all against the *frozen* k-order, so every
    /// same-level root test is answered by the rank cache. Roots left
    /// violating Lemma 5.1 (`deg⁺ > core`) are collected as dirty. The
    /// **pass phase** then runs one multi-seed promotion pass per dirty
    /// level, ascending, instead of one pass per edge: seeds at the
    /// lowest dirty level are resolved together, and promoted vertices
    /// that still violate at the next level (a batch can raise a core by
    /// more than one) cascade upward until Lemma 5.1 holds everywhere.
    pub fn insert_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.insert_edges_with(edges, &BatchOptions::default())
    }

    /// [`OrderCore::insert_edges`] with explicit [`BatchOptions`]. With
    /// `split_components` set, each dirty level's seed pool is first
    /// partitioned by connected component of the level-induced subgraph
    /// ([`OrderCore::split_level_seeds`]) and one promotion pass runs per
    /// component; per-pass [`UpdateStats`] counters are merged exactly,
    /// so every total except `passes` (which then counts component
    /// passes) is identical to the merged-pass configuration.
    pub fn insert_edges_with(
        &mut self,
        edges: &[(VertexId, VertexId)],
        opts: &BatchOptions,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        self.insert_apply_phase(edges, &mut stats);
        self.insert_pass_phase(opts, &mut stats);
        stats
    }

    /// The apply phase of batched insertion (see
    /// [`OrderCore::insert_edges`]): admits every valid edge against the
    /// frozen k-order and collects the Lemma 5.1 violators into the
    /// reusable `batch_seeds` scratch. Callers **must** follow up with
    /// either [`OrderCore::insert_pass_phase`] or a recompute rebuild
    /// (which supersedes the seeds) — the adaptive planner decides
    /// between the two from the seed summary.
    pub(crate) fn insert_apply_phase(
        &mut self,
        edges: &[(VertexId, VertexId)],
        stats: &mut UpdateStats,
    ) {
        let n = self.graph.num_vertices() as VertexId;

        // Range/self-loop filter, into the reusable edge scratch.
        let mut batch = std::mem::take(&mut self.edge_scratch);
        batch.clear();
        for &(u, v) in edges {
            if u == v || u >= n || v >= n {
                stats.skipped += 1;
                continue;
            }
            batch.push((u, v));
        }

        // Pre-reserve adjacency slots from the batch's per-vertex degree
        // deltas (duplicates overcount slightly — harmless headroom).
        let mut endpoints = std::mem::take(&mut self.endpoint_scratch);
        endpoints.clear();
        for &(u, v) in &batch {
            endpoints.push(u);
            endpoints.push(v);
        }
        endpoints.sort_unstable();
        let mut i = 0;
        while i < endpoints.len() {
            let v = endpoints[i];
            let mut j = i + 1;
            while j < endpoints.len() && endpoints[j] == v {
                j += 1;
            }
            self.graph.reserve_neighbors(v, j - i);
            i = j;
        }
        self.endpoint_scratch = endpoints;

        // ---- apply phase (k-order frozen; rank cache fully valid) ----
        let dirty_epoch = self.bump_epoch();
        self.batch_seeds.clear();
        for &(u, v) in &batch {
            if self.graph.has_edge(u, v) {
                stats.skipped += 1;
                continue;
            }
            self.graph.insert_edge_unchecked(u, v);

            // mcd reflects the new edge immediately (old core numbers).
            let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
            if cv >= cu {
                self.mcd[u as usize] += 1;
            }
            if cu >= cv {
                self.mcd[v as usize] += 1;
            }

            // Root = earlier endpoint in k-order; same-level ties resolve
            // through the rank cache instead of a fresh A_k walk.
            let root = if cu < cv {
                u
            } else if cv < cu {
                v
            } else if self.cached_rank(u) < self.cached_rank(v) {
                u
            } else {
                v
            };
            let ri = root as usize;
            self.deg_plus[ri] += 1;
            if self.deg_plus[ri] <= self.core[ri] {
                // Lemma 5.2: the k-order absorbs this edge unchanged.
                stats.noop += 1;
            } else if self.touch_mark[ri] != dirty_epoch {
                self.touch_mark[ri] = dirty_epoch;
                self.batch_seeds.push(root);
            }
        }
        self.edge_scratch = batch;
    }

    /// The pass phase of batched insertion: one multi-seed promotion pass
    /// per dirty level, ascending, consuming the seeds the apply phase
    /// left in `batch_seeds`.
    pub(crate) fn insert_pass_phase(&mut self, opts: &BatchOptions, stats: &mut UpdateStats) {
        let mut dirty = std::mem::take(&mut self.batch_seeds);
        let mut seeds = std::mem::take(&mut self.level_seeds);
        while !dirty.is_empty() {
            // Drop roots a previous pass already resolved (demoted back
            // under the Lemma 5.1 budget, or promoted past the violation).
            dirty.retain(|&v| self.deg_plus[v as usize] > self.core[v as usize]);
            let Some(k) = dirty.iter().map(|&v| self.core[v as usize]).min() else {
                break;
            };
            seeds.clear();
            seeds.extend(
                dirty
                    .iter()
                    .copied()
                    .filter(|&v| self.core[v as usize] == k),
            );
            dirty.retain(|&v| self.core[v as usize] != k);
            // Component splitting yields one independent pass per level-k
            // component; `UpdateStats` counters are plain sums, so the
            // group structure cannot skew any statistic.
            if opts.split_components && seeds.len() > 1 {
                let groups = self.split_level_seeds(&seeds, k);
                let threads = opts.pass_threads();
                if threads > 1 && groups.len() > 1 && seeds.len() >= opts.pass_seed_cutoff() {
                    self.promote_groups_parallel(&groups, k, threads, stats, &mut dirty);
                } else {
                    for group in &groups {
                        self.promote_group(group, k, stats, &mut dirty);
                    }
                }
            } else {
                let group = std::mem::take(&mut seeds);
                self.promote_group(&group, k, stats, &mut dirty);
                seeds = group;
            }
        }
        dirty.clear();
        self.batch_seeds = dirty;
        self.level_seeds = seeds;
    }

    /// One promotion pass over a seed group plus the upward cascade: a
    /// multi-seed pass can promote vertices that still violate at level
    /// `k + 1` (a batch may raise a core by more than one) — those
    /// re-enter the dirty pool.
    fn promote_group(
        &mut self,
        group: &[VertexId],
        k: u32,
        stats: &mut UpdateStats,
        dirty: &mut Vec<VertexId>,
    ) {
        self.promote_pass(group, k, stats);
        for i in 0..self.vstar.len() {
            let w = self.vstar[i];
            if self.deg_plus[w as usize] > self.core[w as usize] {
                dirty.push(w);
            }
        }
    }

    /// Removes a batch of edges, updating core numbers and the k-order.
    /// Invalid entries (self loops, absent edges — including edges removed
    /// earlier in the same batch —, unknown endpoints) are skipped and
    /// counted in [`UpdateStats::skipped`]. Returns aggregate stats.
    ///
    /// The mirror image of [`OrderCore::insert_edges`]. The **apply
    /// phase** deletes every batch edge from the graph and repairs `mcd`
    /// plus the earlier endpoint's `deg⁺` against the *frozen* k-order
    /// (same-level ties resolve through the rank cache — one `A_k` walk
    /// per hub per batch, not per edge), collecting the union of
    /// dismissible vertices as per-level seed sets. The **pass phase**
    /// then runs **one multi-seed dismissal pass per affected level,
    /// descending**: all seeds of a level peel together into one `V*`
    /// instead of one walk per edge, and a vertex dismissed from level
    /// `k` whose `mcd` already violates at `k − 1` (a batch can drop a
    /// core by more than one) is re-seeded into the `k − 1` pass — the
    /// downward cascade matching batched insertion's upward one.
    /// Adjacency-arena compaction is considered once per batch, between
    /// the two phases, never in the middle of the apply loop.
    pub fn remove_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        self.remove_edges_with(edges, &BatchOptions::default())
    }

    /// [`OrderCore::remove_edges`] with explicit [`BatchOptions`]: the
    /// dismissal mirror of [`OrderCore::insert_edges_with`] — with
    /// `split_components`, one dismissal pass per level-`k` component of
    /// the seed pool, exact counter merge.
    pub fn remove_edges_with(
        &mut self,
        edges: &[(VertexId, VertexId)],
        opts: &BatchOptions,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        self.remove_apply_phase(edges, &mut stats);
        self.remove_pass_phase(opts, &mut stats);
        stats
    }

    /// The apply phase of batched removal: deletes every valid edge and
    /// repairs `mcd`/`deg⁺` against the frozen k-order, pooling
    /// dismissible vertices into the reusable `batch_seeds` scratch, then
    /// considers arena compaction once. Callers **must** follow up with
    /// either [`OrderCore::remove_pass_phase`] or a recompute rebuild.
    pub(crate) fn remove_apply_phase(
        &mut self,
        edges: &[(VertexId, VertexId)],
        stats: &mut UpdateStats,
    ) {
        let n = self.graph.num_vertices() as VertexId;

        // ---- apply phase (k-order frozen; rank cache fully valid) ----
        let dirty_epoch = self.bump_epoch();
        self.batch_seeds.clear();
        for &(u, v) in edges {
            if u == v || u >= n || v >= n {
                stats.skipped += 1;
                continue;
            }
            // One adjacency scan decides presence and deletes: absent
            // edges surface as `Missing` instead of a separate probe.
            if self.graph.remove_edge(u, v).is_err() {
                stats.skipped += 1;
                continue;
            }

            let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
            debug_assert!(cu >= 1 && cv >= 1, "an incident edge implies core >= 1");
            // mcd loses the removed edge immediately (old core numbers).
            if cu <= cv {
                self.mcd[u as usize] -= 1;
            }
            if cv <= cu {
                self.mcd[v as usize] -= 1;
            }
            // The earlier endpoint counted the later one in deg⁺;
            // same-level ties resolve through the rank cache.
            let earlier = if cu < cv {
                u
            } else if cv < cu {
                v
            } else if self.cached_rank(u) < self.cached_rank(v) {
                u
            } else {
                v
            };
            self.deg_plus[earlier as usize] -= 1;

            // A vertex becomes a dismissal seed the moment its mcd drops
            // below its core; each enters the pool once.
            let mut dirty = false;
            for x in [u, v] {
                let xi = x as usize;
                if self.mcd[xi] < self.core[xi] {
                    dirty = true;
                    if self.touch_mark[xi] != dirty_epoch {
                        self.touch_mark[xi] = dirty_epoch;
                        self.batch_seeds.push(x);
                    }
                }
            }
            if !dirty {
                // The k-order absorbs this edge unchanged — the removal
                // mirror of the Lemma 5.2 short-circuit.
                stats.noop += 1;
            }
        }

        // One compaction opportunity per batch, before the passes rescan
        // the touched neighbourhoods with (ideally) tight-packed lists.
        self.graph.maintain_adjacency(DEFAULT_MAX_HOLE_RATIO);
    }

    /// The pass phase of batched removal: one multi-seed dismissal pass
    /// per affected level, descending, consuming the pool the apply phase
    /// left in `batch_seeds`.
    pub(crate) fn remove_pass_phase(&mut self, opts: &BatchOptions, stats: &mut UpdateStats) {
        let mut pool = std::mem::take(&mut self.batch_seeds);
        let mut seeds = std::mem::take(&mut self.level_seeds);
        while !pool.is_empty() {
            // Drop seeds a previous pass already resolved (peeled away as
            // a neighbour of another seed, restoring mcd >= core).
            pool.retain(|&x| self.mcd[x as usize] < self.core[x as usize]);
            let Some(k) = pool.iter().map(|&x| self.core[x as usize]).max() else {
                break;
            };
            seeds.clear();
            seeds.extend(pool.iter().copied().filter(|&x| self.core[x as usize] == k));
            pool.retain(|&x| self.core[x as usize] != k);
            if opts.split_components && seeds.len() > 1 {
                let groups = self.split_level_seeds(&seeds, k);
                let threads = opts.pass_threads();
                if threads > 1 && groups.len() > 1 && seeds.len() >= opts.pass_seed_cutoff() {
                    self.dismiss_groups_parallel(&groups, k, threads, stats, &mut pool);
                } else {
                    for group in &groups {
                        self.dismiss_group(group, k, stats, &mut pool);
                    }
                }
            } else {
                let group = std::mem::take(&mut seeds);
                self.dismiss_group(&group, k, stats, &mut pool);
                seeds = group;
            }
        }
        pool.clear();
        self.batch_seeds = pool;
        self.level_seeds = seeds;
    }

    /// One dismissal pass over a seed group plus the downward cascade: a
    /// vertex dismissed from level `k` whose `mcd` already violates at
    /// `k − 1` re-seeds the `k − 1` pass.
    fn dismiss_group(
        &mut self,
        group: &[VertexId],
        k: u32,
        stats: &mut UpdateStats,
        pool: &mut Vec<VertexId>,
    ) {
        self.dismiss_pass(group, k, stats);
        for i in 0..self.vstar.len() {
            let w = self.vstar[i];
            if self.mcd[w as usize] < self.core[w as usize] {
                pool.push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::TreapOrderCore;
    use kcore_decomp::core_decomposition;
    use kcore_graph::fixtures;

    #[test]
    fn batch_insert_matches_sequential() {
        let g = fixtures::path(12);
        let edges: Vec<(u32, u32)> = vec![(0, 11), (2, 9), (3, 8), (1, 10), (4, 7)];
        let mut batched = TreapOrderCore::new(g.clone(), 1);
        let stats = batched.insert_edges(&edges);
        assert_eq!(stats.skipped, 0);
        let mut seq = TreapOrderCore::new(g, 1);
        for &(u, v) in &edges {
            seq.insert_edge(u, v).unwrap();
        }
        assert_eq!(batched.cores(), seq.cores());
        batched.validate();
    }

    #[test]
    fn batch_insert_skips_invalid_entries() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        // self loop, duplicate of an existing edge, in-batch duplicate,
        // out-of-range endpoint — all skipped, the one good edge lands.
        let stats = oc.insert_edges(&[(0, 0), (0, 1), (99, 1), (2, 2)]);
        assert_eq!(stats.skipped, 4);
        let before = oc.graph().num_edges();
        let stats = oc.insert_edges(&[(1, 2), (2, 1)]);
        // (1,2) already exists; (2,1) is its duplicate too
        assert_eq!(stats.skipped, 2);
        assert_eq!(oc.graph().num_edges(), before);
        oc.validate();
    }

    #[test]
    fn batch_insert_promotes_like_decomposition() {
        // Close a long cycle and add chords: multiple promotions in one
        // batch, compared against a from-scratch decomposition.
        let g = fixtures::path(30);
        let mut oc = TreapOrderCore::new(g, 7);
        let mut batch = vec![(0u32, 29u32)];
        for i in 0..28 {
            batch.push((i, i + 2));
        }
        let stats = oc.insert_edges(&batch);
        assert_eq!(stats.skipped, 0);
        assert!(stats.changed > 0);
        assert_eq!(oc.cores(), &core_decomposition(oc.graph())[..]);
        oc.validate();
    }

    #[test]
    fn batch_remove_matches_sequential() {
        let mut g = fixtures::clique(8);
        for i in 0..7u32 {
            let _ = g.insert_edge(i, i + 1); // already present; no-ops
        }
        let edges: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5), (0, 2), (1, 3)];
        let mut batched = TreapOrderCore::new(g.clone(), 3);
        let stats = batched.remove_edges(&edges);
        assert_eq!(stats.skipped, 0);
        let mut seq = TreapOrderCore::new(g, 3);
        for &(u, v) in &edges {
            seq.remove_edge(u, v).unwrap();
        }
        assert_eq!(batched.cores(), seq.cores());
        batched.validate();
    }

    #[test]
    fn batch_remove_skips_invalid_entries() {
        let mut oc = TreapOrderCore::new(fixtures::clique(4), 1);
        let stats = oc.remove_edges(&[(0, 1), (0, 1), (3, 3), (0, 99)]);
        // second (0,1) is already gone, (3,3) self loop, (0,99) range
        assert_eq!(stats.skipped, 3);
        assert_eq!(oc.graph().num_edges(), 5);
        oc.validate();
    }

    #[test]
    fn batch_remove_cascades_multiple_levels() {
        // Tearing the rim off a wheel-like graph drops hub cores by more
        // than one level in a single batch: the downward cascade must
        // re-seed dismissed vertices instead of leaving Lemma 5.1 broken.
        let mut g = fixtures::clique(6);
        let hub_edges: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
            .filter(|&(a, b)| a != 5 && b != 5)
            .collect();
        for i in 6..12u32 {
            g.add_vertex();
            let _ = g.insert_edge(i, 5);
        }
        let mut oc = TreapOrderCore::new(g, 2);
        assert_eq!(oc.core(5), 5);
        // Remove every clique edge not touching vertex 5: its core falls
        // 5 -> 1 in one batch.
        let stats = oc.remove_edges(&hub_edges);
        assert_eq!(stats.skipped, 0);
        assert_eq!(oc.core(5), 1);
        assert_eq!(oc.cores(), &core_decomposition(oc.graph())[..]);
        oc.validate();
    }

    #[test]
    fn batch_remove_merges_passes_per_level() {
        // A 1k-edge removal batch on a power-law graph must run at most
        // one dismissal pass per affected level — not one per edge, which
        // is what the sequential loop pays.
        let g = kcore_gen::barabasi_albert(4_000, 4, 21);
        let max_core = *core_decomposition(&g).iter().max().unwrap();
        let batch: Vec<(u32, u32)> = g.edge_vec().into_iter().step_by(15).take(1_000).collect();
        assert_eq!(batch.len(), 1_000);

        let mut batched = TreapOrderCore::new(g.clone(), 9);
        let stats = batched.remove_edges(&batch);
        assert_eq!(stats.skipped, 0);
        assert!(
            stats.passes <= max_core as usize,
            "dismissal passes ({}) must not exceed affected levels (≤ {max_core})",
            stats.passes
        );
        assert!(stats.changed > 0, "a 1k-edge tear must change some core");
        assert!(stats.merged_seeds >= stats.passes);

        // The sequential loop runs exactly one pass per removal.
        let mut seq = TreapOrderCore::new(g, 9);
        let mut seq_stats = kcore_traversal::UpdateStats::default();
        for &(u, v) in &batch {
            seq_stats.absorb(seq.remove_edge(u, v).unwrap());
        }
        assert_eq!(seq_stats.passes, batch.len());
        assert_eq!(batched.cores(), seq.cores());
    }

    #[test]
    fn batch_remove_compacts_at_most_once() {
        // Grow a graph (relocation churn leaves arena holes), then remove
        // a large batch: per-edge removal must never compact mid-batch —
        // the policy hook runs once, between apply and pass phases.
        let g = kcore_gen::barabasi_albert(2_000, 8, 4);
        let mut oc = TreapOrderCore::new(g, 1);
        let before = oc.graph().adjacency_compactions();
        let batch: Vec<(u32, u32)> = oc.graph().edge_vec().into_iter().step_by(2).collect();
        let stats = oc.remove_edges(&batch);
        assert_eq!(stats.skipped, 0);
        let after = oc.graph().adjacency_compactions();
        assert!(
            after - before <= 1,
            "one removal batch compacted {} times",
            after - before
        );
        oc.validate();
    }

    #[test]
    fn component_split_stats_match_sequential_passes() {
        // Multi-component fixture: one K5 island (core 4) and one K4
        // island (core 3), no path between them. The batch seeds both
        // islands — i.e. both levels, one component each — so the
        // component-parallel engine must report *identical*
        // `passes`/`merged_seeds` (and every other counter) to the
        // sequential merged-pass engine.
        let mut g = fixtures::clique(5);
        for _ in 0..5 {
            g.add_vertex();
        }
        for a in 5..9u32 {
            for b in (a + 1)..9 {
                g.insert_edge(a, b).unwrap();
            }
        }
        // Fresh chords: vertex 9 wires into both islands, violating
        // Lemma 5.1 at two different levels in one batch.
        let batch: Vec<(u32, u32)> = vec![(9, 0), (9, 1), (9, 2), (9, 5), (9, 6), (9, 7)];

        let mut split = TreapOrderCore::new(g.clone(), 3);
        let split_stats = split.insert_edges_with(&batch, &crate::BatchOptions::component_split());
        let mut merged = TreapOrderCore::new(g.clone(), 3);
        let merged_stats = merged.insert_edges(&batch);
        assert_eq!(split_stats.passes, merged_stats.passes);
        assert_eq!(split_stats.merged_seeds, merged_stats.merged_seeds);
        assert_eq!(split_stats, merged_stats, "insert stats must merge exactly");
        assert_eq!(split.cores(), merged.cores());
        split.validate();

        // Removal mirror: tear the same chords back out.
        let split_rm = split.remove_edges_with(&batch, &crate::BatchOptions::component_split());
        let merged_rm = merged.remove_edges(&batch);
        assert_eq!(split_rm.passes, merged_rm.passes);
        assert_eq!(split_rm.merged_seeds, merged_rm.merged_seeds);
        assert_eq!(split_rm, merged_rm, "removal stats must merge exactly");
        assert_eq!(split.cores(), merged.cores());
        split.validate();
    }

    #[test]
    fn component_split_runs_independent_passes_per_island() {
        // When two seed components share a level, the split engine runs
        // one pass per component (passes grows by the component count)
        // while every other counter — and the resulting cores — matches
        // the merged engine exactly.
        let mut g = fixtures::clique(4);
        for _ in 0..4 {
            g.add_vertex();
        }
        for a in 4..8u32 {
            for b in (a + 1)..8 {
                g.insert_edge(a, b).unwrap();
            }
        }
        // One violating chord per island, both at level 3.
        let mut ga = g.clone();
        ga.add_vertex();
        ga.add_vertex();
        let batch: Vec<(u32, u32)> = vec![(8, 0), (8, 1), (8, 2), (9, 4), (9, 5), (9, 6)];

        let mut split = TreapOrderCore::new(ga.clone(), 3);
        let split_stats = split.insert_edges_with(&batch, &crate::BatchOptions::component_split());
        let mut merged = TreapOrderCore::new(ga, 3);
        let merged_stats = merged.insert_edges(&batch);
        assert_eq!(split.cores(), merged.cores());
        assert_eq!(split_stats.merged_seeds, merged_stats.merged_seeds);
        assert_eq!(split_stats.changed, merged_stats.changed);
        assert_eq!(split_stats.noop, merged_stats.noop);
        assert!(
            split_stats.passes >= merged_stats.passes,
            "independent component passes cannot be fewer than merged ones"
        );
        split.validate();
    }

    #[test]
    fn interleaved_batches_stay_valid() {
        let mut oc = TreapOrderCore::new(fixtures::two_cliques_bridge(), 5);
        let inserts: Vec<(u32, u32)> = vec![(0, 5), (1, 6), (2, 7), (3, 4)];
        oc.insert_edges(&inserts);
        oc.validate();
        oc.remove_edges(&inserts);
        oc.validate();
        let reference = core_decomposition(oc.graph());
        assert_eq!(oc.cores(), &reference[..]);
    }

    #[test]
    fn empty_batches_are_free() {
        let mut oc = TreapOrderCore::new(fixtures::triangle(), 1);
        let stats = oc.insert_edges(&[]);
        assert_eq!(stats, Default::default());
        let stats = oc.remove_edges(&[]);
        assert_eq!(stats, Default::default());
        oc.validate();
    }
}
