//! The **adaptive update planner**: per-batch cost-model dispatch between
//! the order-based batch passes and a full recompute.
//!
//! `BENCH_batch.json` shows the crossover plainly: the order-based engine
//! wins decisively on small batches, but once a batch approaches the
//! graph size a single `O(m + n)` decomposition beats thousands of
//! promotion/dismissal walks by an order of magnitude. Unconditionally
//! running order-based passes therefore leaves the worst benchmark cells
//! at ~0.1× of what the hardware allows. [`PlannedCore`] closes that gap:
//! every batch is priced against a small cost model and dispatched to
//! whichever strategy is estimated cheaper —
//!
//! * [`Strategy::Batched`] — the merged multi-seed order-based pass
//!   ([`OrderCore::insert_edges`] / [`OrderCore::remove_edges`]);
//! * [`Strategy::Split`] — the same passes split per connected component
//!   of each level's seed pool ([`crate::BatchOptions::component_split`]);
//! * [`Strategy::Recompute`] — apply the batch raw, rerun the
//!   decomposition ([`core_decomposition`], or the parallel peel when a
//!   [`Parallelism`] is configured), and **defer** the k-order rebuild.
//!
//! ## The cost model
//!
//! Stage 1 (before touching anything) prices the batch from its size and
//! the graph dimensions: `est(batched) = i·cᵢ + r·cᵣₘ (+ rebuild charge
//! when the order index is stale)` versus `est(recompute) =
//! (n + m + b)·c_d`. Stage 2 re-prices *after* the apply phase, when the
//! per-level seed counts and the affected-level span are known — a batch
//! whose seeds threaten an avalanche of pass work is abandoned mid-way
//! (the collected seeds are discarded) in favour of a recompute, which is
//! correct because the recompute only needs the already-mutated graph.
//!
//! All per-unit costs start from static priors and **self-calibrate
//! online**: every executed strategy feeds an EWMA of its observed
//! per-unit cost ([`Planner::observe_batched`] etc.), so a planner that
//! starts mispriced converges to the strategy the actual hardware favours
//! (unit-tested with a scripted clock — no wall-clock dependence).
//!
//! ## Deferred order rebuild
//!
//! The recompute strategy refreshes core numbers (and the per-level
//! counts serving histogram/degeneracy queries) but leaves the k-order
//! index stale: a stream of recompute-priced batches pays **zero** order
//! maintenance. The index is rebuilt lazily — through the
//! [`korder_from_cores`] bridge, `O(m + n)` plus `O(1)` expected treap
//! rotations per vertex — the moment order-based work resumes (a
//! single-edge update, a batched-strategy batch, or an explicit
//! [`PlannedCore::ensure_order_fresh`]). After the rebuild the engine is
//! indistinguishable from a freshly built [`OrderCore`]
//! ([`OrderCore::validate`] passes; property-tested for every
//! [`PlanPolicy`]).

use crate::components::BatchOptions;
use crate::order_core::OrderCore;
use kcore_decomp::{core_decomposition, korder_from_cores, par_core_decomposition, Parallelism};
use kcore_graph::{DynamicGraph, EdgeListError, VertexId, DEFAULT_MAX_HOLE_RATIO};
use kcore_order::{OrderSeq, OrderTreap};
use kcore_traversal::UpdateStats;

/// Which algorithm the planner dispatches a batch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Merged multi-seed order-based passes (one per affected level).
    Batched,
    /// Order-based passes split per seed component.
    Split,
    /// Component-split passes with the plan phase on the worker team
    /// (thread-parallel maintenance; priced only when the planner knows
    /// about more than one thread).
    ParSplit,
    /// Full recompute of core numbers; k-order rebuild deferred.
    Recompute,
    /// Full recompute on the level-synchronous parallel peel
    /// (`decomp::par`); k-order rebuild deferred.
    ParRecompute,
}

impl Strategy {
    /// `true` for the order-based pass family (batched / split /
    /// par-split) — the hysteresis incumbent is tracked per *family*,
    /// so switching between members of one family is free while
    /// pass ↔ recompute flips still pay the challenger bar.
    pub fn is_pass_family(self) -> bool {
        matches!(
            self,
            Strategy::Batched | Strategy::Split | Strategy::ParSplit
        )
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Batched => write!(f, "batched"),
            Strategy::Split => write!(f, "split"),
            Strategy::ParSplit => write!(f, "par-split"),
            Strategy::Recompute => write!(f, "recompute"),
            Strategy::ParRecompute => write!(f, "par-recompute"),
        }
    }
}

/// Dispatch policy of a [`Planner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanPolicy {
    /// Cost-model dispatch with online calibration (the default).
    #[default]
    Auto,
    /// Always run the merged order-based passes.
    ForceBatch,
    /// Always run the component-split order-based passes.
    ForceSplit,
    /// Always run thread-parallel component passes (degrades to
    /// [`PlanPolicy::ForceSplit`] when only one thread is available).
    ForceParSplit,
    /// Always recompute (order rebuild stays deferred). With more than
    /// one thread configured this executes — and is recorded as — the
    /// parallel peel, matching the engine's long-standing behaviour of
    /// using the peel whenever a [`Parallelism`] is set.
    ForceRecompute,
    /// Always recompute on the parallel peel (degrades to the serial
    /// decomposition when only one thread is available).
    ForceParRecompute,
}

/// Tunables of the [`Planner`]: the policy, the EWMA smoothing factor,
/// the static cost priors the calibration starts from, and hard
/// threshold overrides.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Dispatch policy.
    pub policy: PlanPolicy,
    /// Weight of the newest observation in each EWMA (`0 < α <= 1`).
    pub ewma_alpha: f64,
    /// Prior: batched-insert maintenance cost per batch edge, ns.
    pub batched_insert_ns_per_edge: f64,
    /// Prior: batched-removal maintenance cost per batch edge, ns.
    pub batched_remove_ns_per_edge: f64,
    /// Prior: decomposition cost per graph unit (vertex + edge), ns.
    pub recompute_ns_per_unit: f64,
    /// Prior: thread-parallel maintenance cost per batch edge, ns
    /// (priced only when the planner knows about > 1 thread).
    pub par_pass_ns_per_edge: f64,
    /// Prior: parallel-peel recompute cost per graph unit, ns (priced
    /// only when the planner knows about > 1 thread).
    pub par_recompute_ns_per_unit: f64,
    /// Prior: pass-phase cost per seed (stage-2 re-pricing), ns.
    pub pass_ns_per_seed: f64,
    /// Prior: deferred k-order rebuild cost per graph unit, ns.
    pub rebuild_ns_per_unit: f64,
    /// Per-observation clamp on EWMA movement: one observation may move
    /// a calibrated cost by at most this factor (either direction).
    /// Cold-start outliers — the first batch on a freshly built index
    /// pays page faults and cache misses two orders of magnitude above
    /// steady state — would otherwise poison the model in one step and
    /// lock Auto onto the wrong strategy.
    pub ewma_max_step: f64,
    /// Per-batch relaxation of the *un-exercised* strategy's calibrated
    /// costs toward their priors (Auto only). A strategy the planner
    /// stopped choosing is no longer observed, so its estimate goes
    /// stale; without relaxation one mispriced estimate could lock the
    /// dispatch one way forever. Where the priors already price the
    /// exercised strategy cheaper the relaxed model stays put, so this
    /// cannot oscillate a correctly-settled choice.
    pub stale_decay: f64,
    /// Switch hysteresis (Auto only): the challenger strategy's estimate
    /// must be at least this factor cheaper than the incumbent's before
    /// the dispatch flips. Near the batched/recompute crossover the two
    /// estimates sit within noise of each other, and alternating costs a
    /// deferred-rebuild round trip per flip — without hysteresis the
    /// planner thrashes below *both* pure strategies there. The default
    /// of 2 means a single clamped outlier observation can never flip
    /// the incumbent, and bounds the steady-state regret of sticking at
    /// 2× — a region where the strategies differ by less than that
    /// anyway (the crossover is sharp in the batch size).
    pub switch_hysteresis: f64,
    /// The deferred-rebuild switching charge is amortised over this many
    /// future batches when stage 1 prices the batched strategy from a
    /// stale order index: one rebuild re-enables order-based maintenance
    /// for every subsequent batch, so charging it all to one batch would
    /// lock a recompute streak in permanently.
    pub rebuild_horizon_batches: usize,
    /// Auto switches the pass phase to component splitting when a batch
    /// leaves at least this many seeds. `usize::MAX` (the default)
    /// disables the heuristic — on current single-core hosts the
    /// component discovery BFS over a large level-induced subgraph costs
    /// more than the merged pass saves; the seam stays available through
    /// [`PlanPolicy::ForceSplit`] and this override.
    pub split_seed_threshold: usize,
    /// Stage-2 bias: the recompute estimate is multiplied by this margin
    /// before it may abandon already-started passes (`> 1` favours
    /// finishing them).
    pub recompute_margin: f64,
    /// Hard override: batches of at least this many edges always
    /// recompute, smaller ones always run passes. Disables the cost
    /// model's stage-1 comparison (calibration continues regardless).
    pub crossover_edges: Option<usize>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            policy: PlanPolicy::Auto,
            ewma_alpha: 0.5,
            batched_insert_ns_per_edge: 5_000.0,
            batched_remove_ns_per_edge: 5_000.0,
            // Seeded from the measured single-core decomposition
            // throughput (`BENCH_batch.json` recompute baselines run
            // ~16 ns per vertex + edge on the reference container).
            // Near the batched/recompute boundary the recompute side is
            // the safer mispricing: its cost is a low-variance linear
            // scan, while a cold order index makes the first batched
            // pass an order of magnitude slower than steady state.
            recompute_ns_per_unit: 16.0,
            // Parallel priors assume roughly 2× scaling at the typical
            // 4-thread configuration — deliberately conservative (the
            // plan/apply split serialises the commit phase, the peel its
            // level barriers); the EWMAs converge to the real ratio.
            par_pass_ns_per_edge: 2_500.0,
            par_recompute_ns_per_unit: 9.0,
            pass_ns_per_seed: 2_000.0,
            rebuild_ns_per_unit: 40.0,
            ewma_max_step: 3.0,
            stale_decay: 0.05,
            switch_hysteresis: 2.0,
            rebuild_horizon_batches: 16,
            split_seed_threshold: usize::MAX,
            recompute_margin: 1.5,
            crossover_edges: None,
        }
    }
}

impl PlannerConfig {
    /// The default configuration under a different policy.
    pub fn with_policy(policy: PlanPolicy) -> Self {
        PlannerConfig {
            policy,
            ..PlannerConfig::default()
        }
    }
}

/// Decision counters and the calibrated per-unit costs — the observable
/// state of a [`Planner`].
#[derive(Debug, Clone, Default)]
pub struct PlannerStats {
    /// Pass pipelines dispatched to the merged order-based passes (a
    /// mixed churn micro-batch counts each executed half).
    pub batched_chosen: usize,
    /// Pass pipelines dispatched to component-split passes.
    pub split_chosen: usize,
    /// Pass pipelines dispatched to thread-parallel component passes.
    pub par_split_chosen: usize,
    /// Recomputes actually executed (fully-skipped batches that changed
    /// nothing are not counted and do not move the incumbent).
    pub recompute_chosen: usize,
    /// Recomputes executed on the parallel peel.
    pub par_recompute_chosen: usize,
    /// Auto decisions revised *after* the apply phase: passes abandoned
    /// for a recompute once the seed counts were known.
    pub late_recompute: usize,
    /// Deferred k-order rebuilds performed on re-entry to order-based
    /// work.
    pub rebuilds: usize,
    /// The most recent dispatch.
    pub last: Option<Strategy>,
    /// Calibrated EWMA: batched-insert cost per edge, ns.
    pub batched_insert_ns_per_edge: f64,
    /// Calibrated EWMA: batched-removal cost per edge, ns.
    pub batched_remove_ns_per_edge: f64,
    /// Calibrated EWMA: recompute cost per graph unit, ns.
    pub recompute_ns_per_unit: f64,
    /// Calibrated EWMA: thread-parallel maintenance cost per edge, ns.
    pub par_pass_ns_per_edge: f64,
    /// Calibrated EWMA: parallel-peel recompute cost per unit, ns.
    pub par_recompute_ns_per_unit: f64,
    /// Calibrated EWMA: pass-phase cost per seed, ns.
    pub pass_ns_per_seed: f64,
    /// Calibrated EWMA: order rebuild cost per graph unit, ns.
    pub rebuild_ns_per_unit: f64,
}

impl PlannerStats {
    /// Total dispatch decisions recorded (all strategies).
    pub fn decisions(&self) -> usize {
        self.batched_chosen
            + self.split_chosen
            + self.par_split_chosen
            + self.recompute_chosen
            + self.par_recompute_chosen
    }

    /// One-line JSON for ops logs and bench embedding: decision
    /// counters plus the calibrated EWMA cost model.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batched_chosen\":{},\"split_chosen\":{},\"par_split_chosen\":{},\
             \"recompute_chosen\":{},\"par_recompute_chosen\":{},\"late_recompute\":{},\
             \"rebuilds\":{},\"last\":{},\"batched_insert_ns_per_edge\":{:.3},\
             \"batched_remove_ns_per_edge\":{:.3},\"recompute_ns_per_unit\":{:.3},\
             \"par_pass_ns_per_edge\":{:.3},\"par_recompute_ns_per_unit\":{:.3},\
             \"pass_ns_per_seed\":{:.3},\"rebuild_ns_per_unit\":{:.3}}}",
            self.batched_chosen,
            self.split_chosen,
            self.par_split_chosen,
            self.recompute_chosen,
            self.par_recompute_chosen,
            self.late_recompute,
            self.rebuilds,
            match self.last {
                Some(s) => format!("\"{s}\""),
                None => "null".to_string(),
            },
            self.batched_insert_ns_per_edge,
            self.batched_remove_ns_per_edge,
            self.recompute_ns_per_unit,
            self.par_pass_ns_per_edge,
            self.par_recompute_ns_per_unit,
            self.pass_ns_per_seed,
            self.rebuild_ns_per_unit,
        )
    }
}

impl std::fmt::Display for PlannerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} decisions (batched {}, split {}, par-split {}, recompute {}, \
             par-recompute {}; {} late recomputes, {} rebuilds); ewma ns/unit: \
             ins {:.0}, rem {:.0}, recompute {:.1}, par-pass {:.0}, \
             par-recompute {:.1}, seed {:.0}, rebuild {:.1}",
            self.decisions(),
            self.batched_chosen,
            self.split_chosen,
            self.par_split_chosen,
            self.recompute_chosen,
            self.par_recompute_chosen,
            self.late_recompute,
            self.rebuilds,
            self.batched_insert_ns_per_edge,
            self.batched_remove_ns_per_edge,
            self.recompute_ns_per_unit,
            self.par_pass_ns_per_edge,
            self.par_recompute_ns_per_unit,
            self.pass_ns_per_seed,
            self.rebuild_ns_per_unit,
        )
    }
}

/// Time source of a [`Planner`]. The scripted variant exists so
/// calibration tests can inject synthetic timings — decisions then depend
/// only on the scripted values, never on the wall clock.
enum Clock {
    Wall(std::time::Instant),
    Scripted(Box<dyn FnMut() -> u64 + Send>),
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Clock::Wall(_) => write!(f, "Clock::Wall"),
            Clock::Scripted(_) => write!(f, "Clock::Scripted"),
        }
    }
}

/// The cost model: policy + calibration state + decision counters.
/// Usually owned by a [`PlannedCore`]; standalone use (e.g. pricing
/// batches for an external scheduler) works through [`Planner::plan`] /
/// [`Planner::observe_batched`] and friends.
#[derive(Debug)]
pub struct Planner {
    cfg: PlannerConfig,
    stats: PlannerStats,
    clock: Clock,
    /// Worker threads the engine may use (1 = serial). Parallel
    /// strategies are priced only when this exceeds 1, so a planner that
    /// never learns about a [`Parallelism`] plans exactly as before.
    threads: usize,
}

impl Planner {
    /// A planner with the given configuration and the wall clock.
    pub fn new(cfg: PlannerConfig) -> Self {
        let stats = PlannerStats {
            batched_insert_ns_per_edge: cfg.batched_insert_ns_per_edge,
            batched_remove_ns_per_edge: cfg.batched_remove_ns_per_edge,
            recompute_ns_per_unit: cfg.recompute_ns_per_unit,
            par_pass_ns_per_edge: cfg.par_pass_ns_per_edge,
            par_recompute_ns_per_unit: cfg.par_recompute_ns_per_unit,
            pass_ns_per_seed: cfg.pass_ns_per_seed,
            rebuild_ns_per_unit: cfg.rebuild_ns_per_unit,
            ..PlannerStats::default()
        };
        Planner {
            cfg,
            stats,
            clock: Clock::Wall(std::time::Instant::now()),
            threads: 1,
        }
    }

    /// Tells the cost model how many worker threads the engine may use.
    /// With `threads <= 1` every estimate — and therefore every plan —
    /// is identical to a planner that never heard of parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker threads the cost model prices against.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A planner whose notion of time is `clock` (monotone nanoseconds).
    /// The engine samples it a handful of times per batch: once before
    /// the work, once between the apply and pass phases of a batched
    /// strategy, and once after — tests script the returned values to
    /// inject synthetic strategy timings.
    pub fn with_clock(cfg: PlannerConfig, clock: Box<dyn FnMut() -> u64 + Send>) -> Self {
        let mut p = Planner::new(cfg);
        p.clock = Clock::Scripted(clock);
        p
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Decision counters and calibrated costs.
    pub fn stats(&self) -> &PlannerStats {
        &self.stats
    }

    fn now_ns(&mut self) -> u64 {
        match &mut self.clock {
            Clock::Wall(origin) => origin.elapsed().as_nanos() as u64,
            Clock::Scripted(f) => f(),
        }
    }

    /// Stage-1 decision: prices a batch of `inserts + removes` edges
    /// against a graph with `n` vertices and `m` edges. `order_fresh`
    /// charges the batched estimate with the deferred rebuild when the
    /// order index is currently stale (choosing passes would pay it
    /// first). Pure — counters move via the execution paths.
    pub fn plan(
        &self,
        inserts: usize,
        removes: usize,
        n: usize,
        m: usize,
        order_fresh: bool,
    ) -> Strategy {
        let b = inserts + removes;
        let par = self.threads > 1;
        match self.cfg.policy {
            PlanPolicy::ForceBatch => Strategy::Batched,
            PlanPolicy::ForceSplit => Strategy::Split,
            PlanPolicy::ForceParSplit => {
                if par {
                    Strategy::ParSplit
                } else {
                    Strategy::Split
                }
            }
            // ForceRecompute keeps the engine's PR-5 behaviour: the peel
            // runs parallel whenever a Parallelism is configured, so with
            // threads the dispatch is (and is recorded as) ParRecompute.
            PlanPolicy::ForceRecompute | PlanPolicy::ForceParRecompute => {
                if par {
                    Strategy::ParRecompute
                } else {
                    Strategy::Recompute
                }
            }
            PlanPolicy::Auto => {
                // Family members first: the cheapest way to run passes,
                // and the cheapest way to recompute. With one thread the
                // parallel candidates are not priced at all, so the plan
                // is bit-compatible with the serial-only planner.
                let mut est_batched = inserts as f64 * self.stats.batched_insert_ns_per_edge
                    + removes as f64 * self.stats.batched_remove_ns_per_edge;
                let est_par_pass = b as f64 * self.stats.par_pass_ns_per_edge;
                let mut pass_member = Strategy::Batched;
                if par && est_par_pass < est_batched {
                    est_batched = est_par_pass;
                    pass_member = Strategy::ParSplit;
                }
                if !order_fresh {
                    // Amortised switching charge (see `PlannerConfig::
                    // rebuild_horizon_batches`): going back to passes
                    // pays one rebuild for many future batches.
                    est_batched += (n + m) as f64 * self.stats.rebuild_ns_per_unit
                        / self.cfg.rebuild_horizon_batches.max(1) as f64;
                }
                let mut est_recompute = (n + m + b) as f64 * self.stats.recompute_ns_per_unit;
                let est_par_recompute = (n + m + b) as f64 * self.stats.par_recompute_ns_per_unit;
                let mut rec_member = Strategy::Recompute;
                if par && est_par_recompute < est_recompute {
                    est_recompute = est_par_recompute;
                    rec_member = Strategy::ParRecompute;
                }
                if let Some(crossover) = self.cfg.crossover_edges {
                    return if b >= crossover {
                        rec_member
                    } else {
                        pass_member
                    };
                }
                // Hysteresis: the challenger *family* must clearly
                // undercut the incumbent family, or the planner sticks
                // with what it last ran (near the crossover the
                // estimates sit within noise and flipping costs a
                // rebuild round trip). Switching members inside a family
                // is free — no rebuild is involved.
                let h = self.cfg.switch_hysteresis.max(1.0);
                match self.stats.last {
                    Some(last) if last.is_pass_family() => {
                        if est_recompute * h < est_batched {
                            rec_member
                        } else {
                            pass_member
                        }
                    }
                    Some(_) => {
                        if est_batched * h < est_recompute {
                            pass_member
                        } else {
                            rec_member
                        }
                    }
                    None => {
                        if est_recompute < est_batched {
                            rec_member
                        } else {
                            pass_member
                        }
                    }
                }
            }
        }
    }

    /// Stage-2 decision, available once the apply phase has counted the
    /// seeds: `true` when the estimated pass cost (per seed, plus one
    /// term per affected level) exceeds the margin-weighted recompute
    /// estimate — the caller should discard the seeds and recompute.
    ///
    /// Seeds are bounded by the batch (≤ 1 violating root per inserted
    /// edge, ≤ 2 dismissal seeds per removed edge), so small batches on
    /// large graphs can never abandon: the escape exists for big batches
    /// whose apply phase reveals an avalanche, and the stage-1
    /// hysteresis keeps a post-abandon incumbent from re-attempting the
    /// same shape every batch.
    pub fn should_abandon_passes(&self, seeds: usize, level_span: u32, n: usize, m: usize) -> bool {
        if !matches!(self.cfg.policy, PlanPolicy::Auto) {
            return false;
        }
        let est_pass = (seeds + level_span as usize) as f64 * self.stats.pass_ns_per_seed;
        let est_recompute =
            (n + m) as f64 * self.stats.recompute_ns_per_unit * self.cfg.recompute_margin;
        est_pass > est_recompute
    }

    /// EWMA update, clamped so one observation moves the estimate by at
    /// most `ewma_max_step`× (outlier robustness — see the config docs).
    fn ewma(&self, current: f64, observed: f64) -> f64 {
        let raw = self.cfg.ewma_alpha * observed + (1.0 - self.cfg.ewma_alpha) * current;
        let step = self.cfg.ewma_max_step.max(1.0);
        raw.clamp(current / step, current * step)
    }

    /// Feeds an observed batched-insert execution (`edges` batch edges in
    /// `ns` nanoseconds) into the calibration.
    pub fn observe_batched(&mut self, removal: bool, edges: usize, ns: u64) {
        if edges == 0 {
            return;
        }
        let per_edge = ns as f64 / edges as f64;
        if removal {
            self.stats.batched_remove_ns_per_edge =
                self.ewma(self.stats.batched_remove_ns_per_edge, per_edge);
        } else {
            self.stats.batched_insert_ns_per_edge =
                self.ewma(self.stats.batched_insert_ns_per_edge, per_edge);
        }
    }

    /// Feeds an observed thread-parallel maintenance execution
    /// (`edges` batch edges in `ns` nanoseconds).
    pub fn observe_par_pass(&mut self, edges: usize, ns: u64) {
        if edges == 0 {
            return;
        }
        self.stats.par_pass_ns_per_edge =
            self.ewma(self.stats.par_pass_ns_per_edge, ns as f64 / edges as f64);
    }

    /// Feeds an observed parallel-peel recompute (`units` = vertices +
    /// edges + batch).
    pub fn observe_par_recompute(&mut self, units: usize, ns: u64) {
        if units == 0 {
            return;
        }
        self.stats.par_recompute_ns_per_unit = self.ewma(
            self.stats.par_recompute_ns_per_unit,
            ns as f64 / units as f64,
        );
    }

    /// Feeds an observed pass phase (`units` = seeds + level span).
    pub fn observe_pass(&mut self, units: usize, ns: u64) {
        if units == 0 {
            return;
        }
        self.stats.pass_ns_per_seed =
            self.ewma(self.stats.pass_ns_per_seed, ns as f64 / units as f64);
    }

    /// Feeds an observed recompute (`units` = vertices + edges + batch).
    pub fn observe_recompute(&mut self, units: usize, ns: u64) {
        if units == 0 {
            return;
        }
        self.stats.recompute_ns_per_unit =
            self.ewma(self.stats.recompute_ns_per_unit, ns as f64 / units as f64);
    }

    /// Feeds an observed deferred-rebuild (`units` = vertices + edges).
    pub fn observe_rebuild(&mut self, units: usize, ns: u64) {
        self.stats.rebuilds += 1;
        if units == 0 {
            return;
        }
        self.stats.rebuild_ns_per_unit =
            self.ewma(self.stats.rebuild_ns_per_unit, ns as f64 / units as f64);
    }

    /// Counts an executed dispatch and updates the hysteresis incumbent —
    /// no calibration side effects.
    fn record(&mut self, strategy: Strategy) {
        match strategy {
            Strategy::Batched => self.stats.batched_chosen += 1,
            Strategy::Split => self.stats.split_chosen += 1,
            Strategy::ParSplit => self.stats.par_split_chosen += 1,
            Strategy::Recompute => self.stats.recompute_chosen += 1,
            Strategy::ParRecompute => self.stats.par_recompute_chosen += 1,
        }
        self.stats.last = Some(strategy);
    }

    /// [`Planner::record`] plus the stale-estimate relaxation — the
    /// normal bookkeeping for one executed planner decision. Callers that
    /// execute several pipelines for a single decision (churn halves) or
    /// have direct evidence against relaxing (stage-2 abandons) call
    /// `record` alone.
    fn note_choice(&mut self, strategy: Strategy) {
        self.record(strategy);
        if matches!(self.cfg.policy, PlanPolicy::Auto) {
            self.relax_unexercised(strategy);
        }
    }

    /// Relaxes the strategy *not* chosen this batch toward its priors
    /// (see [`PlannerConfig::stale_decay`]).
    fn relax_unexercised(&mut self, chosen: Strategy) {
        let d = self.cfg.stale_decay.clamp(0.0, 1.0);
        let relax = |current: f64, prior: f64| current + (prior - current) * d;
        match chosen {
            Strategy::Recompute | Strategy::ParRecompute => {
                self.stats.batched_insert_ns_per_edge = relax(
                    self.stats.batched_insert_ns_per_edge,
                    self.cfg.batched_insert_ns_per_edge,
                );
                self.stats.batched_remove_ns_per_edge = relax(
                    self.stats.batched_remove_ns_per_edge,
                    self.cfg.batched_remove_ns_per_edge,
                );
                self.stats.pass_ns_per_seed =
                    relax(self.stats.pass_ns_per_seed, self.cfg.pass_ns_per_seed);
                self.stats.par_pass_ns_per_edge = relax(
                    self.stats.par_pass_ns_per_edge,
                    self.cfg.par_pass_ns_per_edge,
                );
            }
            Strategy::Batched | Strategy::Split | Strategy::ParSplit => {
                self.stats.recompute_ns_per_unit = relax(
                    self.stats.recompute_ns_per_unit,
                    self.cfg.recompute_ns_per_unit,
                );
                self.stats.par_recompute_ns_per_unit = relax(
                    self.stats.par_recompute_ns_per_unit,
                    self.cfg.par_recompute_ns_per_unit,
                );
                // The pass-family member that did not run also drifts
                // toward its prior (stale estimates may not lock the
                // intra-family pick either).
                match chosen {
                    Strategy::ParSplit => {
                        self.stats.batched_insert_ns_per_edge = relax(
                            self.stats.batched_insert_ns_per_edge,
                            self.cfg.batched_insert_ns_per_edge,
                        );
                        self.stats.batched_remove_ns_per_edge = relax(
                            self.stats.batched_remove_ns_per_edge,
                            self.cfg.batched_remove_ns_per_edge,
                        );
                    }
                    _ => {
                        self.stats.par_pass_ns_per_edge = relax(
                            self.stats.par_pass_ns_per_edge,
                            self.cfg.par_pass_ns_per_edge,
                        );
                    }
                }
            }
        }
    }
}

/// An [`OrderCore`] driven through the adaptive planner: batch entry
/// points dispatch per the cost model, single-edge updates run the plain
/// order-based algorithms (re-freshening the order index first when a
/// recompute left it stale).
pub struct PlannedCore<S: OrderSeq = OrderTreap> {
    engine: OrderCore<S>,
    planner: Planner,
    /// Runs recompute decompositions on the parallel peel when set.
    par: Option<Parallelism>,
    /// `false` after a recompute until the deferred k-order rebuild runs.
    order_fresh: bool,
}

impl<S: OrderSeq> std::fmt::Debug for PlannedCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PlannedCore {{ engine: {:?}, order_fresh: {} }}",
            self.engine, self.order_fresh
        )
    }
}

impl<S: OrderSeq> PlannedCore<S> {
    /// Builds the engine with the default (Auto) planner.
    pub fn new(graph: DynamicGraph, seed: u64) -> Self {
        Self::with_config(graph, seed, PlannerConfig::default())
    }

    /// Builds the engine with an explicit planner configuration.
    pub fn with_config(graph: DynamicGraph, seed: u64, cfg: PlannerConfig) -> Self {
        Self::from_parts(OrderCore::new(graph, seed), Planner::new(cfg))
    }

    /// Builds the engine under a policy with otherwise-default tunables.
    pub fn with_policy(graph: DynamicGraph, seed: u64, policy: PlanPolicy) -> Self {
        Self::with_config(graph, seed, PlannerConfig::with_policy(policy))
    }

    /// Wraps an existing index and planner (the calibration-test hook:
    /// combine with [`Planner::with_clock`] for scripted timings).
    pub fn from_parts(engine: OrderCore<S>, planner: Planner) -> Self {
        PlannedCore {
            engine,
            planner,
            par: None,
            order_fresh: true,
        }
    }

    /// Recompute fallbacks run the level-synchronous parallel peel under
    /// `par` (identical core numbers, more cores), batch passes may run
    /// thread-parallel component passes, and the planner prices both as
    /// distinct strategies.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.set_parallelism(Some(par));
        self
    }

    /// The configured [`Parallelism`], if any.
    pub fn parallelism(&self) -> Option<Parallelism> {
        self.par
    }

    /// Re-points the engine at a (new) [`Parallelism`] — or back to
    /// serial with `None` — keeping planner calibration intact.
    pub fn set_parallelism(&mut self, par: Option<Parallelism>) {
        self.par = par;
        self.planner
            .set_threads(par.map_or(1, |p| p.resolved_threads()));
    }

    /// Worker threads the planner prices against (1 = serial).
    fn threads(&self) -> usize {
        self.planner.threads()
    }

    /// The recompute-family member that actually executes: the peel runs
    /// parallel whenever threads are available.
    fn recompute_strategy(&self) -> Strategy {
        if self.threads() > 1 {
            Strategy::ParRecompute
        } else {
            Strategy::Recompute
        }
    }

    /// Decision counters and calibrated costs.
    pub fn planner_stats(&self) -> &PlannerStats {
        &self.planner.stats
    }

    /// The planner (e.g. to price a hypothetical batch via
    /// [`Planner::plan`]).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// `false` while a recompute's deferred k-order rebuild is pending.
    pub fn is_order_fresh(&self) -> bool {
        self.order_fresh
    }

    /// Turns on core-change tracking on the underlying engine (see
    /// [`OrderCore::enable_core_change_tracking`]); the planner's
    /// recompute path records its diff into the same log.
    pub fn enable_core_change_tracking(&mut self) {
        self.engine.enable_core_change_tracking();
    }

    /// Drains the tracked core changes (see
    /// [`OrderCore::drain_core_changes`]).
    pub fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        self.engine.drain_core_changes(out)
    }

    /// Current core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.engine.core(v)
    }

    /// All core numbers.
    #[inline]
    pub fn cores(&self) -> &[u32] {
        self.engine.cores()
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &DynamicGraph {
        self.engine.graph()
    }

    /// `hist[k]` = vertices with core exactly `k` (`O(levels)`; valid
    /// even while the order rebuild is deferred).
    pub fn core_histogram(&self) -> Vec<usize> {
        self.engine.core_histogram()
    }

    /// Largest `k` with a non-empty `k`-core (`O(levels)`).
    pub fn degeneracy(&self) -> u32 {
        self.engine.degeneracy()
    }

    /// Rebuilds the k-order index now if a recompute left it stale
    /// (no-op otherwise). Runs the [`korder_from_cores`] bridge — the
    /// cores are already correct, so no decomposition is repeated.
    pub fn ensure_order_fresh(&mut self) {
        if self.order_fresh {
            return;
        }
        let t0 = self.planner.now_ns();
        let ko = korder_from_cores(self.engine.graph(), self.engine.cores());
        self.engine.rebuild_from_korder(ko);
        self.order_fresh = true;
        let t1 = self.planner.now_ns();
        let units = self.engine.graph().num_vertices() + self.engine.graph().num_edges();
        self.planner.observe_rebuild(units, t1.saturating_sub(t0));
    }

    /// The underlying order-based engine, order index guaranteed fresh.
    pub fn order(&mut self) -> &mut OrderCore<S> {
        self.ensure_order_fresh();
        &mut self.engine
    }

    /// The engine's `deg⁺` and `mcd` arrays, refreshed first if a
    /// recompute left the order index (and with it these metrics)
    /// stale. Costs a k-order rebuild in that case — callers that poll
    /// every flush should opt in deliberately.
    pub fn metric_slices(&mut self) -> (&[u32], &[u32]) {
        self.ensure_order_fresh();
        (self.engine.deg_plus_slice(), self.engine.mcd_slice())
    }

    /// Full cross-check: refreshes the order index if needed, then runs
    /// [`OrderCore::validate`] (tests only).
    pub fn validate(&mut self) {
        self.ensure_order_fresh();
        self.engine.validate();
    }

    /// Single-edge insertion through the order-based algorithm.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.ensure_order_fresh();
        self.engine.insert_edge(u, v)
    }

    /// Single-edge removal through the order-based algorithm.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.ensure_order_fresh();
        self.engine.remove_edge(u, v)
    }

    /// Planned batch insertion: stage-1 dispatch on batch size, stage-2
    /// re-pricing on the apply-phase seed counts. Invalid entries are
    /// skipped and counted exactly as by [`OrderCore::insert_edges`].
    pub fn insert_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        let (n, m) = self.dims();
        match self.planner.plan(edges.len(), 0, n, m, self.order_fresh) {
            s @ (Strategy::Recompute | Strategy::ParRecompute) => {
                if self.recompute_batch(edges, &[], &mut stats) {
                    self.planner.note_choice(s);
                }
            }
            s => self.run_batched(s, edges, false, true, &mut stats),
        }
        stats
    }

    /// Planned batch removal (mirror of [`PlannedCore::insert_edges`]).
    pub fn remove_edges(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        let (n, m) = self.dims();
        match self.planner.plan(0, edges.len(), n, m, self.order_fresh) {
            s @ (Strategy::Recompute | Strategy::ParRecompute) => {
                if self.recompute_batch(&[], edges, &mut stats) {
                    self.planner.note_choice(s);
                }
            }
            s => self.run_batched(s, edges, true, true, &mut stats),
        }
        stats
    }

    /// Planned mixed micro-batch (`inserts` then `removes`, the churn
    /// shape a streaming ingest loop delivers): one stage-1 decision over
    /// the combined size, so a recompute-priced micro-batch pays **one**
    /// decomposition instead of one per half.
    pub fn apply_churn(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        removes: &[(VertexId, VertexId)],
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        if inserts.is_empty() && removes.is_empty() {
            return stats;
        }
        let (n, m) = self.dims();
        match self
            .planner
            .plan(inserts.len(), removes.len(), n, m, self.order_fresh)
        {
            s @ (Strategy::Recompute | Strategy::ParRecompute) => {
                if self.recompute_batch(inserts, removes, &mut stats) {
                    self.planner.note_choice(s);
                }
            }
            s => {
                if !inserts.is_empty() {
                    self.run_batched(s, inserts, false, true, &mut stats);
                }
                if !removes.is_empty() {
                    if self.order_fresh {
                        // One planner decision covered the whole
                        // micro-batch: the second half skips the stale
                        // relaxation so churn batches do not decay the
                        // un-exercised estimate at double rate.
                        self.run_batched(s, removes, true, false, &mut stats);
                    } else {
                        // The insert half escaped to a recompute mid-way;
                        // rebuilding the order just to tear seeds out of it
                        // again would be wasted work.
                        self.recompute_batch(&[], removes, &mut stats);
                    }
                }
            }
        }
        stats
    }

    fn dims(&self) -> (usize, usize) {
        (
            self.engine.graph().num_vertices(),
            self.engine.graph().num_edges(),
        )
    }

    /// The batched/split execution path with the stage-2 escape.
    /// `relax` applies the stale-estimate relaxation for this decision
    /// (false for the second half of a churn micro-batch, whose planner
    /// decision already relaxed once).
    fn run_batched(
        &mut self,
        strategy: Strategy,
        edges: &[(VertexId, VertexId)],
        removal: bool,
        relax: bool,
        stats: &mut UpdateStats,
    ) {
        self.ensure_order_fresh();
        let t0 = self.planner.now_ns();
        if removal {
            self.engine.remove_apply_phase(edges, stats);
        } else {
            self.engine.insert_apply_phase(edges, stats);
        }
        let summary = self.engine.batch_seed_summary();

        // Stage 2: with the seeds known, re-price passes vs recompute.
        if let Some((seeds, lo, hi)) = summary {
            let (n, m) = self.dims();
            if self.planner.should_abandon_passes(seeds, hi - lo + 1, n, m) {
                self.engine.discard_batch_seeds();
                self.planner.stats.late_recompute += 1;
                // The incumbent flips (we genuinely recomputed), but the
                // batched estimates are *not* relaxed toward their cheap
                // priors — the abandoned apply phase is direct evidence
                // of batched cost, fed into the EWMA below so the model
                // learns rather than re-attempting the same batch shape.
                let rec = self.recompute_strategy();
                self.planner.record(rec);
                let t1 = self.planner.now_ns();
                self.planner
                    .observe_batched(removal, edges.len(), t1.saturating_sub(t0));
                self.recompute_in_place(stats);
                let t2 = self.planner.now_ns();
                if rec == Strategy::ParRecompute {
                    self.planner
                        .observe_par_recompute(n + m, t2.saturating_sub(t1));
                } else {
                    self.planner.observe_recompute(n + m, t2.saturating_sub(t1));
                }
                return;
            }
        }

        // ForceBatch means *merged* passes; only ForceSplit / ParSplit
        // or Auto's seed-count heuristic switch the pass phase to
        // component splits. ParSplit additionally hands the component
        // passes the configured Parallelism.
        let par_pass = matches!(strategy, Strategy::ParSplit) && self.threads() > 1;
        let split = par_pass
            || matches!(strategy, Strategy::Split)
            || (matches!(self.planner.cfg.policy, PlanPolicy::Auto)
                && summary
                    .is_some_and(|(seeds, _, _)| seeds >= self.planner.cfg.split_seed_threshold));
        let opts = BatchOptions {
            split_components: split,
            parallelism: if par_pass { self.par } else { None },
        };
        let tp = self.planner.now_ns();
        if removal {
            self.engine.remove_pass_phase(&opts, stats);
        } else {
            self.engine.insert_pass_phase(&opts, stats);
        }
        let t1 = self.planner.now_ns();
        if let Some((seeds, lo, hi)) = summary {
            self.planner
                .observe_pass(seeds + (hi - lo + 1) as usize, t1.saturating_sub(tp));
        }
        if par_pass {
            self.planner
                .observe_par_pass(edges.len(), t1.saturating_sub(t0));
        } else {
            self.planner
                .observe_batched(removal, edges.len(), t1.saturating_sub(t0));
        }
        let executed = if par_pass {
            Strategy::ParSplit
        } else if split {
            Strategy::Split
        } else {
            Strategy::Batched
        };
        if relax {
            self.planner.note_choice(executed);
        } else {
            self.planner.record(executed);
        }
    }

    /// The recompute strategy: raw-apply both halves (identical skip
    /// semantics to the batch entry points), decompose once, refresh the
    /// per-level counts, and leave the k-order rebuild deferred. Returns
    /// `false` when every entry was skipped — nothing changed, so the
    /// caller must not count the batch as a recompute dispatch (a
    /// duplicate-heavy stream would otherwise flip the hysteresis
    /// incumbent and relax the calibration over pure no-ops).
    fn recompute_batch(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        removes: &[(VertexId, VertexId)],
        stats: &mut UpdateStats,
    ) -> bool {
        let t0 = self.planner.now_ns();
        let n = self.engine.graph.num_vertices() as VertexId;
        let mut applied = 0usize;
        for &(u, v) in inserts {
            if u == v || u >= n || v >= n || self.engine.graph.has_edge(u, v) {
                stats.skipped += 1;
            } else {
                self.engine.graph.insert_edge_unchecked(u, v);
                applied += 1;
            }
        }
        let mut removed_any = false;
        for &(u, v) in removes {
            if u == v || u >= n || v >= n || self.engine.graph.remove_edge(u, v).is_err() {
                stats.skipped += 1;
            } else {
                removed_any = true;
                applied += 1;
            }
        }
        if removed_any {
            self.engine.graph.maintain_adjacency(DEFAULT_MAX_HOLE_RATIO);
        }
        if applied == 0 {
            // Nothing changed; the current cores (and order) still hold.
            return false;
        }
        self.recompute_in_place(stats);
        let t1 = self.planner.now_ns();
        let (nv, m) = self.dims();
        if self.threads() > 1 {
            self.planner
                .observe_par_recompute(nv + m + applied, t1.saturating_sub(t0));
        } else {
            self.planner
                .observe_recompute(nv + m + applied, t1.saturating_sub(t0));
        }
        true
    }

    /// Decomposes the current graph, refreshes cores + per-level counts,
    /// and marks the k-order stale. The batch-seed scratch is discarded —
    /// a rebuild supersedes whatever an apply phase collected.
    fn recompute_in_place(&mut self, stats: &mut UpdateStats) {
        let new_core = match &self.par {
            Some(par) => par_core_decomposition(&self.engine.graph, par),
            None => core_decomposition(&self.engine.graph),
        };
        // The diff both counts the churn for the stats and — when
        // core-change tracking is on — feeds the change log, at no extra
        // asymptotic cost (the recompute already paid O(n + m)).
        let mut changed = 0usize;
        let log_active = self.engine.change_log.is_active();
        for (v, (&new, &old)) in new_core.iter().zip(&self.engine.core).enumerate() {
            if new != old {
                changed += 1;
                if log_active {
                    self.engine.change_log.ids.push(v as VertexId);
                }
            }
        }
        stats.visited += self.engine.graph.num_vertices();
        stats.changed += changed;
        self.engine.core = new_core;
        self.engine.refresh_level_counts();
        self.engine.discard_batch_seeds();
        self.order_fresh = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::fixtures;

    type Planned = PlannedCore<OrderTreap>;

    #[test]
    fn force_recompute_defers_then_rebuilds_on_demand() {
        let mut pc = Planned::with_policy(fixtures::path(12), 3, PlanPolicy::ForceRecompute);
        let stats = pc.insert_edges(&[(0, 11), (2, 9)]);
        assert_eq!(stats.skipped, 0);
        assert!(!pc.is_order_fresh(), "recompute must defer the rebuild");
        assert_eq!(pc.cores(), &core_decomposition(pc.graph())[..]);
        // Histogram/degeneracy stay served while the order is stale.
        assert_eq!(pc.degeneracy(), 2);
        // An order-based operation forces the rebuild and keeps working.
        pc.insert_edge(3, 8).unwrap();
        assert!(pc.is_order_fresh());
        assert_eq!(pc.planner_stats().rebuilds, 1);
        pc.validate();
    }

    #[test]
    fn every_policy_agrees_on_cores() {
        let batch: Vec<(u32, u32)> =
            vec![(0, 11), (1, 10), (2, 9), (3, 8), (4, 7), (0, 0), (5, 99)];
        let mut reference: Option<Vec<u32>> = None;
        for policy in [
            PlanPolicy::Auto,
            PlanPolicy::ForceBatch,
            PlanPolicy::ForceSplit,
            PlanPolicy::ForceRecompute,
        ] {
            let mut pc = Planned::with_policy(fixtures::path(12), 9, policy);
            let stats = pc.insert_edges(&batch);
            assert_eq!(stats.skipped, 2, "{policy:?} skip semantics diverged");
            pc.validate();
            let cores = pc.cores().to_vec();
            if let Some(r) = &reference {
                assert_eq!(&cores, r, "{policy:?} cores diverged");
            } else {
                reference = Some(cores);
            }
        }
    }

    #[test]
    fn churn_recompute_runs_one_decomposition() {
        let g = fixtures::clique(6);
        let mut pc = Planned::with_policy(g, 5, PlanPolicy::ForceRecompute);
        let inserts: Vec<(u32, u32)> = Vec::new();
        let removes: Vec<(u32, u32)> = vec![(0, 1), (2, 3)];
        let s = pc.apply_churn(&inserts, &removes);
        assert_eq!(s.skipped, 0);
        // One combined recompute: visited counts n exactly once.
        assert_eq!(s.visited, pc.graph().num_vertices());
        assert_eq!(pc.planner_stats().recompute_chosen, 1);
        pc.validate();
    }

    #[test]
    fn crossover_override_is_respected() {
        let cfg = PlannerConfig {
            crossover_edges: Some(4),
            ..PlannerConfig::default()
        };
        let planner = Planner::new(cfg);
        assert_eq!(planner.plan(3, 0, 100, 100, true), Strategy::Batched);
        assert_eq!(planner.plan(4, 0, 100, 100, true), Strategy::Recompute);
        assert_eq!(planner.plan(2, 2, 100, 100, true), Strategy::Recompute);
    }

    #[test]
    fn ewma_movement_is_clamped_per_observation() {
        let cfg = PlannerConfig {
            ewma_max_step: 3.0,
            batched_insert_ns_per_edge: 1_000.0,
            ..PlannerConfig::default()
        };
        let mut p = Planner::new(cfg);
        // A 1000× outlier (cold first batch) moves the estimate by at
        // most the configured factor…
        p.observe_batched(false, 10, 10_000_000);
        assert_eq!(p.stats().batched_insert_ns_per_edge, 3_000.0);
        // …and a cheap follow-up pulls it back down (also clamped).
        p.observe_batched(false, 10, 10_000);
        assert!(p.stats().batched_insert_ns_per_edge <= 3_000.0);
        assert!(p.stats().batched_insert_ns_per_edge >= 1_000.0);
    }

    #[test]
    fn unexercised_strategy_relaxes_toward_prior() {
        let g = fixtures::path(40);
        let cfg = PlannerConfig {
            // Poisoned batched estimate + a crossover forcing recompute:
            // recompute batches must relax the batched cost back toward
            // its (cheap) prior.
            batched_insert_ns_per_edge: 5_000.0,
            crossover_edges: Some(1),
            stale_decay: 0.5,
            ..PlannerConfig::default()
        };
        let mut pc = Planned::with_config(g, 3, cfg);
        pc.planner.stats.batched_insert_ns_per_edge = 5_000_000.0;
        for (a, b) in [(0u32, 2u32), (1, 3), (2, 4)] {
            pc.insert_edges(&[(a, b)]);
        }
        assert_eq!(pc.planner_stats().recompute_chosen, 3);
        let relaxed = pc.planner_stats().batched_insert_ns_per_edge;
        assert!(
            relaxed < 700_000.0,
            "stale batched estimate must relax toward its prior (got {relaxed})"
        );
    }

    #[test]
    fn single_thread_plan_never_prices_parallel_members() {
        // With one thread the parallel candidates must not even be
        // considered — regardless of how cheap their priors look — so
        // the dispatch is bit-compatible with the serial-only planner.
        let cfg = PlannerConfig {
            par_pass_ns_per_edge: 0.001,
            par_recompute_ns_per_unit: 0.001,
            ..PlannerConfig::default()
        };
        let serial = Planner::new(PlannerConfig::default());
        let tuned = Planner::new(cfg);
        for b in [1usize, 8, 64, 512, 4096] {
            for (n, m) in [(100usize, 200usize), (10_000, 80_000)] {
                for fresh in [true, false] {
                    let got = tuned.plan(b, b / 2, n, m, fresh);
                    assert!(!matches!(got, Strategy::ParSplit | Strategy::ParRecompute));
                    assert_eq!(got, serial.plan(b, b / 2, n, m, fresh));
                }
            }
        }
    }

    #[test]
    fn parallel_members_are_priced_distinctly_with_threads() {
        let mut p = Planner::new(PlannerConfig::default());
        p.set_threads(4);
        // Parallel passes priced below serial passes: small batches go
        // to ParSplit instead of Batched.
        p.stats.par_pass_ns_per_edge = p.stats.batched_insert_ns_per_edge / 10.0;
        assert_eq!(p.plan(4, 0, 100_000, 400_000, true), Strategy::ParSplit);
        // Parallel peel priced below the serial decomposition: huge
        // batches go to ParRecompute instead of Recompute.
        assert!(p.stats.par_recompute_ns_per_unit < p.stats.recompute_ns_per_unit);
        assert_eq!(
            p.plan(500_000, 0, 1_000, 2_000, true),
            Strategy::ParRecompute
        );
        // And the inverse calibration flips each member back serial.
        p.stats.par_pass_ns_per_edge = p.stats.batched_insert_ns_per_edge * 10.0;
        p.stats.par_recompute_ns_per_unit = p.stats.recompute_ns_per_unit * 10.0;
        assert_eq!(p.plan(4, 0, 100_000, 400_000, true), Strategy::Batched);
        assert_eq!(p.plan(500_000, 0, 1_000, 2_000, true), Strategy::Recompute);
    }

    #[test]
    fn force_policies_degrade_without_threads() {
        let mk = |policy, threads| {
            let mut p = Planner::new(PlannerConfig::with_policy(policy));
            p.set_threads(threads);
            p.plan(10, 0, 100, 200, true)
        };
        assert_eq!(mk(PlanPolicy::ForceParSplit, 1), Strategy::Split);
        assert_eq!(mk(PlanPolicy::ForceParSplit, 4), Strategy::ParSplit);
        assert_eq!(mk(PlanPolicy::ForceParRecompute, 1), Strategy::Recompute);
        assert_eq!(mk(PlanPolicy::ForceParRecompute, 4), Strategy::ParRecompute);
        // ForceRecompute rides the peel when threads are available
        // (PR-5 behaviour: the peel runs parallel whenever configured).
        assert_eq!(mk(PlanPolicy::ForceRecompute, 4), Strategy::ParRecompute);
        assert_eq!(mk(PlanPolicy::ForceRecompute, 1), Strategy::Recompute);
    }

    #[test]
    fn parallel_policies_agree_on_cores_and_record_choices() {
        let batch: Vec<(u32, u32)> = vec![(0, 11), (1, 10), (2, 9), (3, 8), (4, 7)];
        let par = Parallelism::exact(4).with_cutoff(0);
        let mut reference = Planned::with_policy(fixtures::path(12), 9, PlanPolicy::ForceSplit);
        reference.insert_edges(&batch);
        reference.validate();

        let mut ps = Planned::with_policy(fixtures::path(12), 9, PlanPolicy::ForceParSplit)
            .with_parallelism(par);
        assert_eq!(ps.parallelism(), Some(par));
        ps.insert_edges(&batch);
        ps.validate();
        assert_eq!(ps.cores(), reference.cores());
        assert_eq!(ps.planner_stats().par_split_chosen, 1);
        assert_eq!(ps.planner_stats().last, Some(Strategy::ParSplit));

        let mut pr = Planned::with_policy(fixtures::path(12), 9, PlanPolicy::ForceParRecompute)
            .with_parallelism(par);
        pr.insert_edges(&batch);
        pr.validate();
        assert_eq!(pr.cores(), reference.cores());
        assert_eq!(pr.planner_stats().par_recompute_chosen, 1);
        assert_eq!(pr.planner_stats().last, Some(Strategy::ParRecompute));
    }

    #[test]
    fn set_parallelism_drives_planner_threads() {
        let mut pc = Planned::new(fixtures::triangle(), 1);
        assert_eq!(pc.planner().threads(), 1);
        assert_eq!(pc.parallelism(), None);
        let par = Parallelism::exact(3);
        pc.set_parallelism(Some(par));
        assert_eq!(pc.planner().threads(), 3);
        assert_eq!(pc.parallelism(), Some(par));
        pc.set_parallelism(None);
        assert_eq!(pc.planner().threads(), 1);
        assert_eq!(pc.parallelism(), None);
    }

    #[test]
    fn empty_batches_touch_nothing() {
        let mut pc = Planned::new(fixtures::triangle(), 1);
        assert_eq!(pc.insert_edges(&[]), UpdateStats::default());
        assert_eq!(pc.remove_edges(&[]), UpdateStats::default());
        assert_eq!(pc.apply_churn(&[], &[]), UpdateStats::default());
        assert!(pc.planner_stats().last.is_none());
        pc.validate();
    }
}
