//! `OrderInsert` — Algorithm 2 of the paper, with `RemoveCandidates`
//! (Algorithm 3).
//!
//! One pass over `O_K` starting at the root (the earlier endpoint of the
//! new edge), *jumping* between the vertices that still need attention via
//! the min-heap `B` keyed by pass-start ranks:
//!
//! * **Case-1** (`deg* + deg⁺ > K`): the vertex becomes a candidate
//!   (joins `VC`, leaves `O_K`), and grants one `deg*` to every later
//!   same-core neighbour — which thereby enters `B`;
//! * **Case-2a** (`deg* = 0`): never popped from `B` at all — these are
//!   the vertices the algorithm skips wholesale, the source of its
//!   advantage over the traversal DFS;
//! * **Case-2b** (`deg* > 0`, total `<= K`): the vertex stays at level
//!   `K`, folds `deg*` into `deg⁺` (its candidate neighbours will end up
//!   after it either way), and retracts itself from the candidates'
//!   budgets — possibly cascading demotions out of `VC`
//!   (`RemoveCandidates`), each demoted vertex re-entering `O_K` right
//!   after the current frontier (Observation 6.1).
//!
//! When `B` drains, `VC` is exactly `V*`: those cores rise to `K + 1`, the
//! vertices move (order-preserved) to the *front* of `O_{K+1}`, and
//! `deg⁺`/`mcd` are repaired around them.

use crate::order_core::OrderCore;
use kcore_graph::{EdgeListError, VertexId};
use kcore_order::OrderSeq;
use kcore_traversal::UpdateStats;

impl<S: OrderSeq> OrderCore<S> {
    /// Inserts the edge `(u, v)`, updating core numbers and the k-order.
    /// Errors (with no state change) on self loops, duplicates, and
    /// unknown endpoints.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        let n = self.graph.num_vertices() as VertexId;
        if u == v {
            return Err(EdgeListError::SelfLoop(u));
        }
        if u >= n {
            return Err(EdgeListError::UnknownVertex(u));
        }
        if v >= n {
            return Err(EdgeListError::UnknownVertex(v));
        }
        if self.graph.has_edge(u, v) {
            return Err(EdgeListError::Duplicate(u, v));
        }
        self.graph.insert_edge_unchecked(u, v);
        let mut stats = UpdateStats::default();

        // mcd reflects the new edge immediately (old core numbers).
        let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
        if cv >= cu {
            self.mcd[u as usize] += 1;
        }
        if cu >= cv {
            self.mcd[v as usize] += 1;
        }

        // Root = the earlier endpoint in k-order; it gains the deg⁺.
        let root = if cu < cv {
            u
        } else if cv < cu {
            v
        } else if self.seqs[cu as usize].precedes(self.node[u as usize], self.node[v as usize]) {
            u
        } else {
            v
        };
        self.insert_post_root(root, &mut stats);
        Ok(stats)
    }

    /// Shared tail of edge insertion once the root (earlier endpoint) is
    /// known: bump its `deg⁺`, apply the Lemma 5.2 short-circuit, and run
    /// the promotion pass only when the k-order actually broke.
    pub(crate) fn insert_post_root(&mut self, root: VertexId, stats: &mut UpdateStats) {
        let k = self.core[root as usize];
        self.deg_plus[root as usize] += 1;
        if self.deg_plus[root as usize] <= k {
            // Lemma 5.2: O_K is still a valid k-order; nothing changes.
            stats.noop += 1;
            return;
        }
        self.promote_pass(&[root], k, stats);
    }

    /// `OrderInsert`'s pass + ending phase (Algorithms 2 and 3): finds
    /// `V*` at level `k` and repairs the k-order. `seeds` are the
    /// Lemma 5.1 violators (`deg⁺ > k`) triggering the pass — one root
    /// for a single-edge insert, every violating root of a level for the
    /// batched engine. The pass machinery is seed-count agnostic: the
    /// heap `B` processes violators in pass-start rank order either way.
    ///
    /// With multiple seeds, promoted vertices can still violate Lemma 5.1
    /// at level `k + 1` (a batch may raise a core by more than one);
    /// callers with multi-edge batches must re-check the promoted set
    /// (`self.vstar`) and cascade upward.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn promote_pass(&mut self, seeds: &[VertexId], k: u32, stats: &mut UpdateStats) {
        stats.passes += 1;
        stats.merged_seeds += seeds.len();
        self.ensure_level(k + 1);
        let epoch = self.bump_epoch();
        self.vc.clear();
        self.demotions.clear();
        let mut heap = std::mem::take(&mut self.heap);
        heap.clear();
        for i in 0..seeds.len() {
            let root = seeds[i];
            debug_assert_eq!(self.core[root as usize], k);
            debug_assert!(self.deg_plus[root as usize] > k);
            let rank = self.cached_rank(root);
            heap.push(rank, root);
        }

        // ---- the pass (core phase of Algorithm 2) ----
        loop {
            let popped = heap.pop_valid(|w| {
                let wi = w as usize;
                self.vc_mark[wi] != epoch && (self.star(w, epoch) > 0 || self.deg_plus[wi] > k)
            });
            let Some((_, w)) = popped else { break };
            stats.visited += 1;
            let wi = w as usize;
            let star_w = self.star(w, epoch);
            if star_w + self.deg_plus[wi] > k {
                // Case-1: w is a potential candidate.
                self.lists.remove(w);
                self.vc_mark[wi] = epoch;
                self.vc.push(w);
                // Grant candidate degree to later same-core neighbours.
                // All order tests during the pass compare pass-start
                // positions (A_K is frozen until the ending phase), which
                // is exactly what the rank cache holds — so a neighbour
                // touched by several candidates pays its treap walk once.
                let rank_w = self.cached_rank(w);
                for i in 0..self.graph.degree(w) {
                    let z = self.graph.neighbors(w)[i];
                    let zi = z as usize;
                    if self.core[zi] == k {
                        let rank_z = self.cached_rank(z);
                        if rank_w < rank_z {
                            let new = self.star_add(z, epoch, 1);
                            if new == 1 {
                                heap.push(rank_z, z);
                            }
                        }
                    }
                }
            } else {
                // Case-2b (Case-2a vertices never enter the heap): w stays
                // at level K; its candidate neighbours will sit after it in
                // the new order whether they are promoted or demoted, so
                // deg* folds into deg⁺.
                debug_assert!(star_w > 0);
                self.deg_plus[wi] += star_w;
                self.star_add(w, epoch, -(star_w as i64));
                self.remove_candidates(w, k, epoch);
            }
        }
        self.heap = heap;

        // ---- ending phase ----
        // Surviving candidates are V*.
        let mut vstar = std::mem::take(&mut self.vstar);
        vstar.clear();
        vstar.extend(
            self.vc
                .iter()
                .copied()
                .filter(|&w| self.vc_mark[w as usize] == epoch),
        );
        stats.changed += vstar.len();
        self.change_log.record_slice(&vstar);
        self.level_counts[k as usize] -= vstar.len();
        self.level_counts[k as usize + 1] += vstar.len();

        for (i, &w) in vstar.iter().enumerate() {
            self.core[w as usize] = k + 1;
            self.vc_pos[w as usize] = i as u32;
        }

        // One scan per promoted vertex repairs both deg⁺ and mcd.
        //
        // deg⁺ of promoted vertices: later V* members (V* keeps its
        // relative order at the *front* of O_{K+1}), everything already in
        // O_{K+1}, and higher levels. mcd of promoted vertices counts
        // neighbours with core > k; their neighbours already at level K+1
        // gain one mcd. (Index loops sidestep holding &self borrows
        // across &mut accesses; the two repairs are write-disjoint, so
        // fusing the scans is safe.)
        for idx in 0..vstar.len() {
            let w = vstar[idx];
            let mut dp = 0u32;
            let mut m = 0u32;
            for j in 0..self.graph.degree(w) {
                let z = self.graph.neighbors(w)[j];
                let zi = z as usize;
                let cz = self.core[zi];
                if cz > k {
                    m += 1;
                }
                if cz > k + 1 {
                    dp += 1;
                } else if cz == k + 1 {
                    if self.vc_mark[zi] == epoch {
                        if (self.vc_pos[zi] as usize) > idx {
                            dp += 1;
                        }
                    } else {
                        dp += 1; // original O_{K+1} member: after all of V*
                        self.mcd[zi] += 1;
                        stats.refreshed += 1;
                    }
                }
            }
            self.deg_plus[w as usize] = dp;
            self.mcd[w as usize] = m;
            stats.refreshed += 1;
        }

        // A_K repairs deferred from the pass: first the Observation 6.1
        // repositionings (demoted vertices re-entered O_K out of their old
        // positions), then the promotion moves into A_{K+1}.
        for idx in 0..self.demotions.len() {
            let (d, pred) = self.demotions[idx];
            self.seqs[k as usize].remove(self.node[d as usize]);
            self.node[d as usize] = self.seqs[k as usize].insert_after(self.node[pred as usize], d);
        }
        for &w in vstar.iter() {
            self.seqs[k as usize].remove(self.node[w as usize]);
        }
        for &w in vstar.iter().rev() {
            self.node[w as usize] = self.seqs[k as usize + 1].insert_first(w);
            self.lists.push_front(k + 1, w);
        }
        if !self.demotions.is_empty() || !vstar.is_empty() {
            self.bump_seq_version(k);
        }
        if !vstar.is_empty() {
            self.bump_seq_version(k + 1);
        }

        self.vstar = vstar;
    }

    /// Algorithm 3: the frontier vertex `w` has just been ruled out of
    /// `V*`; retract its contribution from the candidates and cascade
    /// demotions out of `VC`. Demoted vertices rejoin `O_K` right after
    /// the current frontier, preserving queue order.
    fn remove_candidates(&mut self, w: VertexId, k: u32, epoch: u32) {
        self.queue.clear();
        // w will stay at level K: candidates counted it in deg⁺.
        for i in 0..self.graph.degree(w) {
            let z = self.graph.neighbors(w)[i];
            let zi = z as usize;
            if self.vc_mark[zi] == epoch {
                self.deg_plus[zi] -= 1;
                if self.deg_plus[zi] + self.star(z, epoch) <= k && self.queue_mark[zi] != epoch {
                    self.queue_mark[zi] = epoch;
                    self.queue.push(z);
                }
            }
        }
        // Order tests below compare pass-start positions (A_K frozen
        // during the pass), so they go through the rank cache.
        let rank_w = self.cached_rank(w);
        let mut cursor = w;
        let mut qi = 0;
        while qi < self.queue.len() {
            let d = self.queue[qi];
            qi += 1;
            let di = d as usize;
            // Demote d: leave VC, fold deg* into deg⁺, rejoin O_K after
            // the cursor.
            let star_d = self.star(d, epoch);
            self.deg_plus[di] += star_d;
            self.star_add(d, epoch, -(star_d as i64));
            self.vc_mark[di] = 0;
            self.lists.insert_after(k, cursor, d);
            self.demotions.push((d, cursor));
            cursor = d;

            let rank_d = self.cached_rank(d);
            for i in 0..self.graph.degree(d) {
                let z = self.graph.neighbors(d)[i];
                let zi = z as usize;
                if self.core[zi] != k {
                    continue;
                }
                let rank_z = self.cached_rank(z);
                if rank_w < rank_z {
                    // Unvisited vertex after the frontier: loses one
                    // candidate-granted degree (heap entry goes stale
                    // lazily if this was its last).
                    self.star_add(z, epoch, -1);
                } else if self.vc_mark[zi] == epoch {
                    // A remaining candidate: d contributed either through
                    // deg* (d was after z? no — through position) …
                    // d granted z a deg* if d preceded z, else z counted d
                    // in deg⁺.
                    if rank_d < rank_z {
                        self.star_add(z, epoch, -1);
                    } else {
                        self.deg_plus[zi] -= 1;
                    }
                    if self.deg_plus[zi] + self.star(z, epoch) <= k && self.queue_mark[zi] != epoch
                    {
                        self.queue_mark[zi] = epoch;
                        self.queue.push(z);
                    }
                }
                // Everything else (processed stayers, earlier demotions,
                // skipped vertices): d ends up after them either way —
                // their deg⁺ already counts it correctly.
            }
        }
    }
}
