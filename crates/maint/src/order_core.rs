//! The [`OrderCore`] structure: graph + k-order index + per-vertex degrees.

use kcore_decomp::validate::compute_mcd;
use kcore_decomp::{korder_decomposition, Heuristic};
use kcore_graph::{DynamicGraph, VertexId};
use kcore_order::{MinRankHeap, OrderSeq, OrderTreap, VertexLists, NONE};

/// A dynamic graph whose core numbers are maintained by the order-based
/// algorithms of the paper. `S` is the `A_k` order structure (treap by
/// default; see [`crate::TagOrderCore`] for the ablation variant).
pub struct OrderCore<S: OrderSeq = OrderTreap> {
    pub(crate) graph: DynamicGraph,
    pub(crate) core: Vec<u32>,
    /// `deg⁺` — neighbours after the vertex in the global k-order.
    pub(crate) deg_plus: Vec<u32>,
    /// `mcd` — neighbours with `core >= own core` (removals need it).
    pub(crate) mcd: Vec<u32>,
    /// `O_k` doubly-linked lists.
    pub(crate) lists: VertexLists,
    /// `A_k` order structures, one per core value.
    pub(crate) seqs: Vec<S>,
    /// Handle of each vertex's node inside `seqs[core[v]]`.
    pub(crate) node: Vec<u32>,
    pub(crate) seed: u64,
    /// Structural version of each `A_k`, bumped whenever `seqs[k]`
    /// mutates. Backs the batch-scoped rank cache: a cached `order_key`
    /// is valid exactly while its level's version is unchanged.
    pub(crate) seq_version: Vec<u64>,
    /// Cached `order_key` per vertex (see [`OrderCore::cached_rank`]).
    pub(crate) rank_cache: Vec<u64>,
    /// `seq_version` value at cache time (0 = never cached).
    pub(crate) rank_stamp: Vec<u64>,
    /// Core level at cache time.
    pub(crate) rank_level: Vec<u32>,

    // ---- per-operation scratch, epoch-stamped ----
    pub(crate) epoch: u32,
    pub(crate) deg_star: Vec<u32>,
    pub(crate) star_mark: Vec<u32>,
    pub(crate) vc_mark: Vec<u32>,
    pub(crate) queue_mark: Vec<u32>,
    pub(crate) heap: MinRankHeap,
    pub(crate) vc: Vec<VertexId>,
    pub(crate) vc_pos: Vec<u32>,
    pub(crate) demotions: Vec<(VertexId, VertexId)>,
    pub(crate) queue: Vec<VertexId>,
    pub(crate) cd_work: Vec<u32>,
    pub(crate) touch_mark: Vec<u32>,
    pub(crate) vstar: Vec<VertexId>,
}

impl<S: OrderSeq> std::fmt::Debug for OrderCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OrderCore {{ n: {}, m: {}, levels: {} }}",
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.seqs.len()
        )
    }
}

impl<S: OrderSeq> OrderCore<S> {
    /// Builds the index: a k-order via [`korder_decomposition`] (the
    /// paper's "small deg⁺ first" heuristic by default — pass another for
    /// the Fig 9 study), then `O_k` lists, `A_k` structures, and `mcd`.
    pub fn with_heuristic(graph: DynamicGraph, heuristic: Heuristic, seed: u64) -> Self {
        let ko = korder_decomposition(&graph, heuristic, seed);
        let n = graph.num_vertices();
        let max_k = ko.core.iter().copied().max().unwrap_or(0) as usize;
        let mut lists = VertexLists::new(n, max_k + 1);
        let mut seqs: Vec<S> = (0..=max_k as u64)
            .map(|k| S::with_seed(seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15))))
            .collect();
        let mut node = vec![NONE; n];
        for &v in &ko.order {
            let k = ko.core[v as usize];
            lists.push_back(k, v);
            node[v as usize] = seqs[k as usize].insert_last(v);
        }
        let mcd = compute_mcd(&graph, &ko.core);
        let num_levels = seqs.len();
        OrderCore {
            graph,
            core: ko.core,
            deg_plus: ko.deg_plus,
            mcd,
            lists,
            seqs,
            node,
            seed,
            seq_version: vec![1; num_levels],
            rank_cache: vec![0; n],
            rank_stamp: vec![0; n],
            rank_level: vec![0; n],
            epoch: 0,
            deg_star: vec![0; n],
            star_mark: vec![0; n],
            vc_mark: vec![0; n],
            queue_mark: vec![0; n],
            heap: MinRankHeap::new(),
            vc: Vec::new(),
            vc_pos: vec![0; n],
            demotions: Vec::new(),
            queue: Vec::new(),
            cd_work: vec![0; n],
            touch_mark: vec![0; n],
            vstar: Vec::new(),
        }
    }

    /// Builds the index with the default (paper) heuristic.
    pub fn new(graph: DynamicGraph, seed: u64) -> Self {
        Self::with_heuristic(graph, Heuristic::SmallDegFirst, seed)
    }

    /// Current core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// All core numbers.
    #[inline]
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// `deg⁺` of `v`.
    #[inline]
    pub fn deg_plus(&self, v: VertexId) -> u32 {
        self.deg_plus[v as usize]
    }

    /// `mcd` of `v`.
    #[inline]
    pub fn mcd(&self, v: VertexId) -> u32 {
        self.mcd[v as usize]
    }

    /// Number of Observation 6.1 demotions (candidates retracted out of
    /// `VC` and re-inserted into `O_K`) during the most recent
    /// `insert_edge` (diagnostics).
    pub fn last_demotions(&self) -> usize {
        self.demotions.len()
    }

    /// The `O_k` sequence as a `Vec` (diagnostics / tests).
    pub fn level_order(&self, k: u32) -> Vec<VertexId> {
        if (k as usize) < self.lists.num_lists() {
            self.lists.to_vec(k)
        } else {
            Vec::new()
        }
    }

    /// `true` iff `u ⪯ v` in the global k-order.
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
        if cu != cv {
            return cu < cv;
        }
        self.seqs[cu as usize].precedes(self.node[u as usize], self.node[v as usize])
    }

    /// Adds an isolated vertex (core 0, appended to `O_0`).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.core.push(0);
        self.deg_plus.push(0);
        self.mcd.push(0);
        self.lists.ensure_vertex(v);
        self.lists.ensure_list(0);
        self.ensure_level(0);
        self.lists.push_back(0, v);
        let h = self.seqs[0].insert_last(v);
        self.bump_seq_version(0);
        self.node.push(h);
        self.deg_star.push(0);
        self.star_mark.push(0);
        self.vc_mark.push(0);
        self.queue_mark.push(0);
        self.vc_pos.push(0);
        self.cd_work.push(0);
        self.touch_mark.push(0);
        self.rank_cache.push(0);
        self.rank_stamp.push(0);
        self.rank_level.push(0);
        v
    }

    /// Removes an **isolated** vertex from the index. The id remains
    /// allocated in the graph (ids are dense); attempting to remove a
    /// vertex with incident edges returns `false`.
    pub fn detach_isolated(&mut self, v: VertexId) -> bool {
        if self.graph.degree(v) != 0 || self.lists.list_of(v) == NONE {
            return false;
        }
        debug_assert_eq!(self.core[v as usize], 0);
        self.lists.remove(v);
        self.seqs[0].remove(self.node[v as usize]);
        self.bump_seq_version(0);
        self.node[v as usize] = NONE;
        true
    }

    /// Makes sure `seqs[k]` and list `k` exist.
    pub(crate) fn ensure_level(&mut self, k: u32) {
        self.lists.ensure_list(k);
        while self.seqs.len() <= k as usize {
            let idx = self.seqs.len() as u64;
            self.seqs.push(S::with_seed(
                self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            self.seq_version.push(1);
        }
    }

    /// Marks `seqs[k]` as structurally changed, invalidating every rank
    /// cached against it.
    #[inline]
    pub(crate) fn bump_seq_version(&mut self, k: u32) {
        self.seq_version[k as usize] += 1;
    }

    /// `order_key` of `v` inside its level's `A_k`, cached until that
    /// level next mutates. The batch entry points lean on this: between
    /// promotion/dismissal passes the k-order is frozen, so a hub vertex
    /// that appears in many batch edges pays the `O(log n)` treap walk
    /// once instead of once per edge.
    #[inline]
    pub(crate) fn cached_rank(&mut self, v: VertexId) -> u64 {
        let vi = v as usize;
        let k = self.core[vi];
        let ver = self.seq_version[k as usize];
        if self.rank_level[vi] == k && self.rank_stamp[vi] == ver {
            return self.rank_cache[vi];
        }
        let r = self.seqs[k as usize].order_key(self.node[vi]);
        self.rank_cache[vi] = r;
        self.rank_level[vi] = k;
        self.rank_stamp[vi] = ver;
        r
    }

    #[inline]
    pub(crate) fn bump_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.epoch
    }

    /// `deg*` read through the epoch stamp (0 when stale).
    #[inline]
    pub(crate) fn star(&self, v: VertexId, epoch: u32) -> u32 {
        if self.star_mark[v as usize] == epoch {
            self.deg_star[v as usize]
        } else {
            0
        }
    }

    #[inline]
    pub(crate) fn star_add(&mut self, v: VertexId, epoch: u32, delta: i64) -> u32 {
        let vi = v as usize;
        let cur = if self.star_mark[vi] == epoch {
            self.deg_star[vi] as i64
        } else {
            self.star_mark[vi] = epoch;
            0
        };
        let new = (cur + delta).max(0) as u32;
        self.deg_star[vi] = new;
        new
    }

    /// Cross-checks the entire index against from-scratch recomputations:
    /// core numbers, the Lemma 5.1 k-order invariant, `deg⁺` against the
    /// list order, `mcd`, list/sequence agreement, and the node mapping.
    /// Panics with a description on the first divergence (tests only).
    pub fn validate(&self) {
        use kcore_decomp::core_decomposition;
        let reference = core_decomposition(&self.graph);
        assert_eq!(self.core, reference, "core numbers diverged");

        // Rebuild the global order from the per-level lists.
        let n = self.graph.num_vertices();
        let mut pos = vec![u32::MAX; n];
        let mut counter = 0u32;
        let max_level = self.lists.num_lists() as u32;
        for k in 0..max_level {
            let seq_vec = if (k as usize) < self.seqs.len() {
                self.seqs[k as usize].to_vec()
            } else {
                Vec::new()
            };
            let list_vec = self.lists.to_vec(k);
            assert_eq!(seq_vec, list_vec, "A_{k} and O_{k} diverged");
            for &v in &list_vec {
                assert_eq!(self.core[v as usize], k, "vertex {v} on wrong level");
                assert_eq!(
                    self.seqs[k as usize].payload(self.node[v as usize]),
                    v,
                    "node handle of {v} is stale"
                );
                pos[v as usize] = counter;
                counter += 1;
            }
        }
        assert_eq!(counter as usize, n, "some vertex is on no list");

        // deg+ definition + Lemma 5.1.
        for v in 0..n as VertexId {
            let later = self
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count() as u32;
            assert_eq!(
                self.deg_plus[v as usize], later,
                "deg+ of {v} diverged (stored {}, actual {later})",
                self.deg_plus[v as usize]
            );
            assert!(
                later <= self.core[v as usize],
                "Lemma 5.1 violated at {v}: deg+ {later} > core {}",
                self.core[v as usize]
            );
        }

        // mcd definition.
        let mcd_ref = compute_mcd(&self.graph, &self.core);
        assert_eq!(self.mcd, mcd_ref, "mcd diverged");
    }
}
