//! The [`OrderCore`] structure: graph + k-order index + per-vertex degrees.

use kcore_decomp::validate::compute_mcd;
use kcore_decomp::{
    core_decomposition, korder_decomposition, korder_from_cores, Heuristic, KOrder,
};
use kcore_graph::{DynamicGraph, VertexId};
use kcore_order::{MinRankHeap, OrderSeq, OrderTreap, VertexLists, NONE};

/// Opt-in record of which vertices changed core number since the last
/// drain — the `O(changed)` feed for copy-on-write snapshot publication
/// (the streaming writer applies the drained ids to its chunked mirror
/// instead of re-copying all `n` core numbers per epoch).
///
/// Entries may repeat (a vertex promoted and later dismissed in one
/// batch appears twice); consumers read the *final* core value per id,
/// so duplicates are harmless. `full` marks the log overwhelmed (e.g. a
/// rebuild whose diff could not be taken) — the next drain then reports
/// "do a full sync" instead of a vertex list.
#[derive(Debug, Default)]
pub(crate) struct CoreChangeLog {
    pub(crate) enabled: bool,
    pub(crate) full: bool,
    pub(crate) ids: Vec<VertexId>,
}

impl CoreChangeLog {
    /// `true` while per-vertex recording is worthwhile.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.enabled && !self.full
    }

    /// Records one changed vertex (no-op when inactive).
    #[inline]
    pub(crate) fn record(&mut self, v: VertexId) {
        if self.is_active() {
            self.ids.push(v);
        }
    }

    /// Records a batch of changed vertices (no-op when inactive).
    pub(crate) fn record_slice(&mut self, vs: &[VertexId]) {
        if self.is_active() {
            self.ids.extend_from_slice(vs);
        }
    }
}

/// A dynamic graph whose core numbers are maintained by the order-based
/// algorithms of the paper. `S` is the `A_k` order structure (treap by
/// default; see [`crate::TagOrderCore`] for the ablation variant).
pub struct OrderCore<S: OrderSeq = OrderTreap> {
    pub(crate) graph: DynamicGraph,
    pub(crate) core: Vec<u32>,
    /// `deg⁺` — neighbours after the vertex in the global k-order.
    pub(crate) deg_plus: Vec<u32>,
    /// `mcd` — neighbours with `core >= own core` (removals need it).
    pub(crate) mcd: Vec<u32>,
    /// `O_k` doubly-linked lists.
    pub(crate) lists: VertexLists,
    /// `A_k` order structures, one per core value.
    pub(crate) seqs: Vec<S>,
    /// Handle of each vertex's node inside `seqs[core[v]]`.
    pub(crate) node: Vec<u32>,
    pub(crate) seed: u64,
    /// Structural version of each `A_k`, bumped whenever `seqs[k]`
    /// mutates. Backs the batch-scoped rank cache: a cached `order_key`
    /// is valid exactly while its level's version is unchanged.
    pub(crate) seq_version: Vec<u64>,
    /// Cached `order_key` per vertex (see [`OrderCore::cached_rank`]).
    pub(crate) rank_cache: Vec<u64>,
    /// `seq_version` value at cache time (0 = never cached).
    pub(crate) rank_stamp: Vec<u64>,
    /// Core level at cache time.
    pub(crate) rank_level: Vec<u32>,
    /// `level_counts[k]` = number of vertices with core number exactly
    /// `k`, maintained incrementally by the promote/dismiss passes and
    /// the recompute fallback — so [`OrderCore::core_histogram`] and
    /// [`OrderCore::degeneracy`] answer in `O(levels)` instead of
    /// rescanning all `n` core numbers. Always as long as `seqs`.
    pub(crate) level_counts: Vec<usize>,

    // ---- per-batch scratch, reused across batches ----
    /// Filtered edge list of the current batch (apply phase).
    pub(crate) edge_scratch: Vec<(VertexId, VertexId)>,
    /// Sorted endpoint multiset used for adjacency pre-reservation.
    pub(crate) endpoint_scratch: Vec<VertexId>,
    /// Seeds collected by an apply phase for the pass phase: Lemma 5.1
    /// violators for insertion, dismissible vertices for removal.
    pub(crate) batch_seeds: Vec<VertexId>,
    /// The per-level seed slice the pass loop is currently working on.
    pub(crate) level_seeds: Vec<VertexId>,

    // ---- per-operation scratch, epoch-stamped ----
    pub(crate) epoch: u32,
    pub(crate) deg_star: Vec<u32>,
    pub(crate) star_mark: Vec<u32>,
    pub(crate) vc_mark: Vec<u32>,
    pub(crate) queue_mark: Vec<u32>,
    pub(crate) heap: MinRankHeap,
    pub(crate) vc: Vec<VertexId>,
    pub(crate) vc_pos: Vec<u32>,
    pub(crate) demotions: Vec<(VertexId, VertexId)>,
    pub(crate) queue: Vec<VertexId>,
    pub(crate) cd_work: Vec<u32>,
    pub(crate) touch_mark: Vec<u32>,
    pub(crate) vstar: Vec<VertexId>,

    /// Opt-in core-change tracking for incremental snapshot publication.
    pub(crate) change_log: CoreChangeLog,
}

impl<S: OrderSeq> std::fmt::Debug for OrderCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OrderCore {{ n: {}, m: {}, levels: {} }}",
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.seqs.len()
        )
    }
}

impl<S: OrderSeq> OrderCore<S> {
    /// Builds the index: a k-order via [`korder_decomposition`] (the
    /// paper's "small deg⁺ first" heuristic by default — pass another for
    /// the Fig 9 study), then `O_k` lists, `A_k` structures, and `mcd`.
    pub fn with_heuristic(graph: DynamicGraph, heuristic: Heuristic, seed: u64) -> Self {
        let ko = korder_decomposition(&graph, heuristic, seed);
        Self::from_korder(graph, ko, seed)
    }

    /// Assembles the full index from a precomputed [`KOrder`] of `graph`
    /// (shared by [`OrderCore::with_heuristic`] and the persistence
    /// loader). `A_k` structures are built by chaining `insert_after` at
    /// the current tail — `O(1)` expected rotations per element — instead
    /// of paying `insert_last`'s right-spine walk per vertex.
    pub(crate) fn from_korder(graph: DynamicGraph, ko: KOrder, seed: u64) -> Self {
        let n = graph.num_vertices();
        let mcd = compute_mcd(&graph, &ko.core);
        let mut core = OrderCore {
            graph,
            core: Vec::new(),
            deg_plus: Vec::new(),
            mcd,
            lists: VertexLists::new(0, 0),
            seqs: Vec::new(),
            node: Vec::new(),
            seed,
            seq_version: Vec::new(),
            rank_cache: vec![0; n],
            rank_stamp: vec![0; n],
            rank_level: vec![0; n],
            level_counts: Vec::new(),
            edge_scratch: Vec::new(),
            endpoint_scratch: Vec::new(),
            batch_seeds: Vec::new(),
            level_seeds: Vec::new(),
            epoch: 0,
            deg_star: vec![0; n],
            star_mark: vec![0; n],
            vc_mark: vec![0; n],
            queue_mark: vec![0; n],
            heap: MinRankHeap::new(),
            vc: Vec::new(),
            vc_pos: vec![0; n],
            demotions: Vec::new(),
            queue: Vec::new(),
            cd_work: vec![0; n],
            touch_mark: vec![0; n],
            vstar: Vec::new(),
            change_log: CoreChangeLog::default(),
        };
        core.install_korder(ko);
        core
    }

    /// Rebuilds the entire order index **in place** from a fresh
    /// [`KOrder`] of the *current* graph: `O_k` lists, `A_k` structures,
    /// node handles, `core`/`deg⁺`/`mcd`, the per-level counts, and every
    /// rank-cache stamp. Per-vertex scratch keeps its allocations — this
    /// is the recompute fallback's re-entry point into order-based
    /// maintenance, so it must leave the engine exactly as a fresh build
    /// would (asserted by [`OrderCore::validate`] in tests).
    pub fn rebuild_from_korder(&mut self, ko: KOrder) {
        assert_eq!(ko.core.len(), self.graph.num_vertices());
        // The rebuild replaces `core` wholesale; tracking needs the diff.
        // The O(n) compare is amortised by the O(n + m) rebuild itself,
        // and a rebuild with *unchanged* cores (the deferred k-order
        // refresh after a recompute) records nothing.
        if self.change_log.is_active() {
            if ko.core.len() == self.core.len() {
                for v in 0..self.core.len() {
                    if self.core[v] != ko.core[v] {
                        self.change_log.record(v as VertexId);
                    }
                }
            } else {
                self.change_log.full = true;
                self.change_log.ids.clear();
            }
        }
        self.mcd = compute_mcd(&self.graph, &ko.core);
        self.install_korder(ko);
    }

    /// Recomputes cores from scratch and rebuilds the order index through
    /// the [`korder_from_cores`] bridge — cheaper than a full
    /// [`korder_decomposition`] because the victim-selection machinery is
    /// skipped. Used by the bulk path of [`OrderCore::apply_batch`] and
    /// by tests of the recompute fallback.
    pub fn rebuild_via_decomposition(&mut self) {
        let core = core_decomposition(&self.graph);
        let ko = korder_from_cores(&self.graph, &core);
        self.rebuild_from_korder(ko);
    }

    /// Shared tail of [`OrderCore::from_korder`] /
    /// [`OrderCore::rebuild_from_korder`]: installs order structures and
    /// per-vertex order state from `ko` (whose `mcd` counterpart the
    /// caller has already stored).
    fn install_korder(&mut self, ko: KOrder) {
        let n = self.graph.num_vertices();
        let max_k = ko.core.iter().copied().max().unwrap_or(0) as usize;
        self.lists = VertexLists::new(n, max_k + 1);
        self.seqs = (0..=max_k as u64)
            .map(|k| S::with_seed(self.seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15))))
            .collect();
        self.node.clear();
        self.node.resize(n, NONE);
        let mut cur_level = u32::MAX;
        let mut prev = NONE;
        for &v in &ko.order {
            let k = ko.core[v as usize];
            self.lists.push_back(k, v);
            // The order is grouped by level, so each level's structure is
            // filled by appending after the previous handle.
            let h = if k == cur_level {
                self.seqs[k as usize].insert_after(prev, v)
            } else {
                cur_level = k;
                self.seqs[k as usize].insert_last(v)
            };
            prev = h;
            self.node[v as usize] = h;
        }
        self.core = ko.core;
        self.deg_plus = ko.deg_plus;
        self.seq_version.clear();
        self.seq_version.resize(max_k + 1, 1);
        // Stamp 0 = never cached: old stamps must not alias the reset
        // versions.
        self.rank_stamp.clear();
        self.rank_stamp.resize(n, 0);
        self.level_counts.clear();
        self.level_counts.resize(max_k + 1, 0);
        for &c in &self.core {
            self.level_counts[c as usize] += 1;
        }
    }

    /// Recounts `level_counts` from the core numbers (`O(n)`) — used when
    /// a recompute refreshes `core` wholesale instead of moving vertices
    /// level by level.
    pub(crate) fn refresh_level_counts(&mut self) {
        let max_k = self.core.iter().copied().max().unwrap_or(0) as usize;
        self.level_counts.clear();
        self.level_counts.resize(max_k + 1, 0);
        for &c in &self.core {
            self.level_counts[c as usize] += 1;
        }
    }

    /// Builds the index with the default (paper) heuristic.
    pub fn new(graph: DynamicGraph, seed: u64) -> Self {
        Self::with_heuristic(graph, Heuristic::SmallDegFirst, seed)
    }

    /// Current core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// All core numbers.
    #[inline]
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// `deg⁺` of `v`.
    #[inline]
    pub fn deg_plus(&self, v: VertexId) -> u32 {
        self.deg_plus[v as usize]
    }

    /// `mcd` of `v`.
    #[inline]
    pub fn mcd(&self, v: VertexId) -> u32 {
        self.mcd[v as usize]
    }

    /// The full `deg⁺` array (one slot per vertex).
    #[inline]
    pub fn deg_plus_slice(&self) -> &[u32] {
        &self.deg_plus
    }

    /// The full `mcd` array (one slot per vertex).
    #[inline]
    pub fn mcd_slice(&self) -> &[u32] {
        &self.mcd
    }

    /// Turns on core-change tracking: from now on every vertex whose
    /// core number changes (promotion, dismissal, or recompute) is
    /// recorded, and [`OrderCore::drain_core_changes`] hands the set
    /// over in `O(changed)`. The streaming ingest writer uses this to
    /// publish copy-on-write snapshots without an `O(n)` copy per epoch.
    pub fn enable_core_change_tracking(&mut self) {
        self.change_log.enabled = true;
        self.change_log.full = false;
        self.change_log.ids.clear();
    }

    /// Appends the vertices whose core number changed since the last
    /// drain to `out` (possibly with duplicates — read the final core
    /// value per id) and clears the log. Returns `false` when tracking
    /// is off or the log was overwhelmed: the caller must then fall
    /// back to a full compare against [`OrderCore::cores`].
    pub fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        if !self.change_log.enabled || self.change_log.full {
            self.change_log.full = false;
            self.change_log.ids.clear();
            return false;
        }
        out.extend_from_slice(&self.change_log.ids);
        self.change_log.ids.clear();
        true
    }

    /// Number of Observation 6.1 demotions (candidates retracted out of
    /// `VC` and re-inserted into `O_K`) during the most recent
    /// `insert_edge` (diagnostics).
    pub fn last_demotions(&self) -> usize {
        self.demotions.len()
    }

    /// The `O_k` sequence as a `Vec` (diagnostics / tests).
    pub fn level_order(&self, k: u32) -> Vec<VertexId> {
        if (k as usize) < self.lists.num_lists() {
            self.lists.to_vec(k)
        } else {
            Vec::new()
        }
    }

    /// `true` iff `u ⪯ v` in the global k-order.
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        let (cu, cv) = (self.core[u as usize], self.core[v as usize]);
        if cu != cv {
            return cu < cv;
        }
        self.seqs[cu as usize].precedes(self.node[u as usize], self.node[v as usize])
    }

    /// Adds an isolated vertex (core 0, appended to `O_0`).
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.core.push(0);
        self.deg_plus.push(0);
        self.mcd.push(0);
        self.lists.ensure_vertex(v);
        self.lists.ensure_list(0);
        self.ensure_level(0);
        self.lists.push_back(0, v);
        let h = self.seqs[0].insert_last(v);
        self.bump_seq_version(0);
        self.level_counts[0] += 1;
        self.node.push(h);
        self.deg_star.push(0);
        self.star_mark.push(0);
        self.vc_mark.push(0);
        self.queue_mark.push(0);
        self.vc_pos.push(0);
        self.cd_work.push(0);
        self.touch_mark.push(0);
        self.rank_cache.push(0);
        self.rank_stamp.push(0);
        self.rank_level.push(0);
        v
    }

    /// Removes an **isolated** vertex from the index. The id remains
    /// allocated in the graph (ids are dense); attempting to remove a
    /// vertex with incident edges returns `false`.
    pub fn detach_isolated(&mut self, v: VertexId) -> bool {
        if self.graph.degree(v) != 0 || self.lists.list_of(v) == NONE {
            return false;
        }
        debug_assert_eq!(self.core[v as usize], 0);
        self.lists.remove(v);
        self.seqs[0].remove(self.node[v as usize]);
        self.bump_seq_version(0);
        self.node[v as usize] = NONE;
        true
    }

    /// Makes sure `seqs[k]`, list `k`, and the level-count slot exist.
    pub(crate) fn ensure_level(&mut self, k: u32) {
        self.lists.ensure_list(k);
        while self.seqs.len() <= k as usize {
            let idx = self.seqs.len() as u64;
            self.seqs.push(S::with_seed(
                self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            self.seq_version.push(1);
            self.level_counts.push(0);
        }
    }

    /// Summary of the seeds an apply phase left for the pass phase:
    /// `(count, lowest level, highest level)` — the cost-model inputs the
    /// adaptive planner reads between the two phases. `None` when the
    /// batch left no Lemma 5.1 violation / dismissible vertex.
    pub(crate) fn batch_seed_summary(&self) -> Option<(usize, u32, u32)> {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &v in &self.batch_seeds {
            let k = self.core[v as usize];
            lo = lo.min(k);
            hi = hi.max(k);
        }
        if self.batch_seeds.is_empty() {
            None
        } else {
            Some((self.batch_seeds.len(), lo, hi))
        }
    }

    /// Drops the seeds an apply phase collected without running passes —
    /// the planner calls this when it abandons the pass phase in favour
    /// of a recompute (the seeds are meaningless after a rebuild).
    pub(crate) fn discard_batch_seeds(&mut self) {
        self.batch_seeds.clear();
    }

    /// Total capacity (in elements) of the reusable per-batch scratch
    /// buffers — a diagnostic for the zero-steady-state-allocation
    /// property: after a warm-up batch, identical batches must not grow
    /// any of these.
    pub fn batch_scratch_capacity(&self) -> usize {
        self.edge_scratch.capacity()
            + self.endpoint_scratch.capacity()
            + self.batch_seeds.capacity()
            + self.level_seeds.capacity()
            + self.vc.capacity()
            + self.queue.capacity()
            + self.vstar.capacity()
            + self.demotions.capacity()
    }

    /// Marks `seqs[k]` as structurally changed, invalidating every rank
    /// cached against it.
    #[inline]
    pub(crate) fn bump_seq_version(&mut self, k: u32) {
        self.seq_version[k as usize] += 1;
    }

    /// `order_key` of `v` inside its level's `A_k`, cached until that
    /// level next mutates. The batch entry points lean on this: between
    /// promotion/dismissal passes the k-order is frozen, so a hub vertex
    /// that appears in many batch edges pays the `O(log n)` treap walk
    /// once instead of once per edge.
    #[inline]
    pub(crate) fn cached_rank(&mut self, v: VertexId) -> u64 {
        let vi = v as usize;
        let k = self.core[vi];
        let ver = self.seq_version[k as usize];
        if self.rank_level[vi] == k && self.rank_stamp[vi] == ver {
            return self.rank_cache[vi];
        }
        let r = self.seqs[k as usize].order_key(self.node[vi]);
        self.rank_cache[vi] = r;
        self.rank_level[vi] = k;
        self.rank_stamp[vi] = ver;
        r
    }

    #[inline]
    pub(crate) fn bump_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.epoch
    }

    /// `deg*` read through the epoch stamp (0 when stale).
    #[inline]
    pub(crate) fn star(&self, v: VertexId, epoch: u32) -> u32 {
        if self.star_mark[v as usize] == epoch {
            self.deg_star[v as usize]
        } else {
            0
        }
    }

    #[inline]
    pub(crate) fn star_add(&mut self, v: VertexId, epoch: u32, delta: i64) -> u32 {
        let vi = v as usize;
        let cur = if self.star_mark[vi] == epoch {
            self.deg_star[vi] as i64
        } else {
            self.star_mark[vi] = epoch;
            0
        };
        let new = (cur + delta).max(0) as u32;
        self.deg_star[vi] = new;
        new
    }

    /// Cross-checks the entire index against from-scratch recomputations:
    /// core numbers, the Lemma 5.1 k-order invariant, `deg⁺` against the
    /// list order, `mcd`, list/sequence agreement, and the node mapping.
    /// Panics with a description on the first divergence (tests only).
    pub fn validate(&self) {
        use kcore_decomp::core_decomposition;
        let reference = core_decomposition(&self.graph);
        assert_eq!(self.core, reference, "core numbers diverged");

        // Rebuild the global order from the per-level lists.
        let n = self.graph.num_vertices();
        let mut pos = vec![u32::MAX; n];
        let mut counter = 0u32;
        let max_level = self.lists.num_lists() as u32;
        for k in 0..max_level {
            let seq_vec = if (k as usize) < self.seqs.len() {
                self.seqs[k as usize].to_vec()
            } else {
                Vec::new()
            };
            let list_vec = self.lists.to_vec(k);
            assert_eq!(seq_vec, list_vec, "A_{k} and O_{k} diverged");
            for &v in &list_vec {
                assert_eq!(self.core[v as usize], k, "vertex {v} on wrong level");
                assert_eq!(
                    self.seqs[k as usize].payload(self.node[v as usize]),
                    v,
                    "node handle of {v} is stale"
                );
                pos[v as usize] = counter;
                counter += 1;
            }
        }
        assert_eq!(counter as usize, n, "some vertex is on no list");

        // deg+ definition + Lemma 5.1.
        for v in 0..n as VertexId {
            let later = self
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count() as u32;
            assert_eq!(
                self.deg_plus[v as usize], later,
                "deg+ of {v} diverged (stored {}, actual {later})",
                self.deg_plus[v as usize]
            );
            assert!(
                later <= self.core[v as usize],
                "Lemma 5.1 violated at {v}: deg+ {later} > core {}",
                self.core[v as usize]
            );
        }

        // mcd definition.
        let mcd_ref = compute_mcd(&self.graph, &self.core);
        assert_eq!(self.mcd, mcd_ref, "mcd diverged");

        // Incrementally maintained per-level counts against a recount.
        assert_eq!(
            self.level_counts.len(),
            self.seqs.len(),
            "level_counts and seqs lengths diverged"
        );
        let mut counts = vec![0usize; self.level_counts.len()];
        for &c in &self.core {
            counts[c as usize] += 1;
        }
        assert_eq!(self.level_counts, counts, "level_counts diverged");
    }
}
