//! Unit tests for `OrderInsert` / `OrderRemoval`, including the paper's
//! worked examples (4.2, 5.2) and randomized cross-validation against the
//! traversal engine and full recomputation.

use crate::maintainer::CoreMaintainer;
use crate::{OrderCore, RecomputeCore, TagOrderCore, TreapOrderCore};
use kcore_graph::{fixtures, DynamicGraph, EdgeListError};
use kcore_traversal::TraversalCore;

fn treap_core(g: &DynamicGraph) -> TreapOrderCore {
    OrderCore::new(g.clone(), 42)
}

#[test]
fn build_validates_on_fixtures() {
    for g in [
        fixtures::triangle(),
        fixtures::path(7),
        fixtures::star(5),
        fixtures::petersen(),
        fixtures::two_cliques_bridge(),
        fixtures::PaperGraph::small().graph,
        DynamicGraph::with_vertices(4),
        DynamicGraph::new(),
    ] {
        treap_core(&g).validate();
    }
}

#[test]
fn insert_forms_triangle() {
    let mut g = DynamicGraph::with_vertices(3);
    g.insert_edge(0, 1).unwrap();
    g.insert_edge(1, 2).unwrap();
    let mut oc = treap_core(&g);
    let stats = oc.insert_edge(2, 0).unwrap();
    assert_eq!(oc.cores(), &[2, 2, 2]);
    assert_eq!(stats.changed, 3);
    oc.validate();
}

#[test]
fn insert_between_isolated() {
    let g = DynamicGraph::with_vertices(2);
    let mut oc = treap_core(&g);
    oc.insert_edge(0, 1).unwrap();
    assert_eq!(oc.cores(), &[1, 1]);
    oc.validate();
}

#[test]
fn insert_errors_leave_state_unchanged() {
    let mut oc = treap_core(&fixtures::triangle());
    assert!(matches!(
        oc.insert_edge(0, 0),
        Err(EdgeListError::SelfLoop(0))
    ));
    assert!(matches!(
        oc.insert_edge(0, 1),
        Err(EdgeListError::Duplicate(0, 1))
    ));
    assert!(matches!(
        oc.insert_edge(0, 7),
        Err(EdgeListError::UnknownVertex(7))
    ));
    assert!(matches!(
        oc.remove_edge(0, 9),
        Err(EdgeListError::Missing(0, 9))
    ));
    oc.validate();
}

#[test]
fn paper_example_5_2_insertion_visits_one_vertex() {
    // Inserting (v4, u0): u0 is last in O_1 with deg+(u0) becoming 2 > 1,
    // and V* = {u0}. The order algorithm should visit exactly one vertex
    // (u0), against ~1,999 for the traversal algorithm (Example 4.2).
    let pg = fixtures::PaperGraph::full();
    let mut oc = treap_core(&pg.graph);
    // Precondition from the paper: u0 has neighbours v5 (and after the
    // insert, v4) later in k-order.
    assert_eq!(oc.deg_plus(pg.u(0)), 1);
    let stats = oc.insert_edge(pg.v(4), pg.u(0)).unwrap();
    assert_eq!(stats.changed, 1, "V* = {{u0}}");
    assert_eq!(oc.core(pg.u(0)), 2);
    assert_eq!(
        stats.visited, 1,
        "order-based insertion must process u0 only"
    );
    oc.validate();

    // Compare with the traversal algorithm on the same update.
    let mut tc = TraversalCore::new(pg.graph.clone(), 2);
    let tstats = tc.insert_edge(pg.v(4), pg.u(0)).unwrap();
    assert!(tstats.visited > 1900);
    assert_eq!(tc.cores(), oc.cores());
}

#[test]
fn lemma_5_2_no_update_when_deg_plus_small() {
    // Insert (v5, v8): root v5 (core 2 < core(v8) = 3) has deg+ = 1 in
    // the Fig 6 k-order, so deg+ rises to 2 <= K = 2 and the algorithm
    // terminates in the preparing phase — zero vertices visited, zero
    // cores changed (Lemma 5.2).
    let pg = fixtures::PaperGraph::full();
    let mut oc = treap_core(&pg.graph);
    // Tie-breaking may order O_2 differently from Fig 6; one of v4/v5 has
    // deg+ = 1 in any valid k-order of this graph.
    let root = if oc.deg_plus(pg.v(5)) == 1 {
        pg.v(5)
    } else {
        pg.v(4)
    };
    assert_eq!(oc.deg_plus(root), 1);
    let stats = oc.insert_edge(root, pg.v(8)).unwrap();
    assert_eq!(stats.visited, 0, "Lemma 5.2 short-circuit must not search");
    assert_eq!(stats.changed, 0);
    assert_eq!(oc.core(root), 2);
    oc.validate();

    // By contrast a vertex gaining its first edge always leaves O_0.
    let mut g = fixtures::path(3);
    let v = g.add_vertex();
    let mut oc = treap_core(&g);
    let stats = oc.insert_edge(v, 0).unwrap();
    assert_eq!(stats.changed, 1);
    assert_eq!(oc.core(v), 1);
    oc.validate();
}

#[test]
fn remove_edge_reverts_insert() {
    let pg = fixtures::PaperGraph::small();
    let mut oc = treap_core(&pg.graph);
    oc.insert_edge(pg.v(4), pg.u(0)).unwrap();
    assert_eq!(oc.core(pg.u(0)), 2);
    oc.validate();
    let stats = oc.remove_edge(pg.v(4), pg.u(0)).unwrap();
    assert_eq!(stats.changed, 1);
    assert_eq!(oc.cores(), &pg.expected_cores()[..]);
    oc.validate();
}

#[test]
fn remove_unravels_clique() {
    let mut oc = treap_core(&fixtures::clique(4));
    oc.remove_edge(0, 1).unwrap();
    assert_eq!(oc.cores(), &[2, 2, 2, 2]);
    oc.validate();
    // K4 minus (0,1) minus (2,3) is the 4-cycle 0-2-1-3-0: still core 2.
    oc.remove_edge(2, 3).unwrap();
    assert_eq!(oc.cores(), &[2, 2, 2, 2]);
    oc.validate();
    // Breaking the cycle drops everyone to core 1.
    oc.remove_edge(0, 2).unwrap();
    assert_eq!(oc.cores(), &[1, 1, 1, 1]);
    oc.validate();
}

#[test]
fn insert_cascade_promotes_whole_cycle() {
    // A path closed into a cycle promotes every vertex from core 1 to 2.
    let mut oc = treap_core(&fixtures::path(50));
    let stats = oc.insert_edge(0, 49).unwrap();
    assert_eq!(stats.changed, 50);
    assert!(oc.cores().iter().all(|&c| c == 2));
    oc.validate();
}

#[test]
fn case_2b_demotion_path() {
    // Build a shape where a candidate is later demoted: a 4-cycle with a
    // pendant chain — closing a chord makes part of the cycle candidates
    // and then retracts some.
    let mut g = DynamicGraph::with_vertices(6);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5)] {
        g.insert_edge(a, b).unwrap();
    }
    let mut oc = treap_core(&g);
    // Chord (1, 3): the 4-cycle already has core 2; vertices 4, 5 stay 1.
    let before = oc.cores().to_vec();
    oc.insert_edge(1, 3).unwrap();
    oc.validate();
    // 0..=3 form a dense block now: cores recomputed must match oracle.
    let _ = before;
}

#[test]
fn vertex_addition_and_detachment() {
    let mut oc = treap_core(&fixtures::triangle());
    let v = oc.add_vertex();
    assert_eq!(oc.core(v), 0);
    oc.validate();
    oc.insert_edge(v, 0).unwrap();
    assert_eq!(oc.core(v), 1);
    oc.validate();
    oc.remove_edge(v, 0).unwrap();
    assert_eq!(oc.core(v), 0);
    oc.validate();
    assert!(oc.detach_isolated(v));
    assert!(!oc.detach_isolated(0)); // not isolated
}

#[test]
fn precedes_is_consistent_with_levels() {
    let pg = fixtures::PaperGraph::small();
    let oc = treap_core(&pg.graph);
    // Lower core always precedes higher core.
    assert!(oc.precedes(pg.u(5), pg.v(1)));
    assert!(oc.precedes(pg.v(1), pg.v(6)));
    assert!(!oc.precedes(pg.v(6), pg.u(5)));
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Random churn on several engines simultaneously; all must agree with
/// the recompute oracle after every operation.
fn churn_agreement<M: CoreMaintainer>(mut engine: M, n: u32, ops: usize, seed: u64) {
    let mut oracle = RecomputeCore::new(engine.graph_ref().clone());
    let mut present: Vec<(u32, u32)> = engine.graph_ref().edge_vec();
    let mut state = seed | 1;
    for step in 0..ops {
        let do_remove = !present.is_empty() && xorshift(&mut state).is_multiple_of(3);
        if do_remove {
            let idx = (xorshift(&mut state) % present.len() as u64) as usize;
            let (a, b) = present.swap_remove(idx);
            engine.remove(a, b).unwrap();
            oracle.remove(a, b).unwrap();
        } else {
            let a = (xorshift(&mut state) % n as u64) as u32;
            let b = (xorshift(&mut state) % n as u64) as u32;
            if a == b || engine.graph_ref().has_edge(a, b) {
                continue;
            }
            engine.insert(a, b).unwrap();
            oracle.insert(a, b).unwrap();
            present.push((a, b));
        }
        assert_eq!(
            engine.core_slice(),
            oracle.core_slice(),
            "{} diverged at step {step} (seed {seed})",
            engine.name()
        );
    }
}

#[test]
fn random_churn_treap_engine() {
    for seed in [1u64, 2, 3, 4] {
        let oc: TreapOrderCore = OrderCore::new(DynamicGraph::with_vertices(26), seed);
        churn_agreement(oc, 26, 220, seed);
    }
}

#[test]
fn random_churn_taglist_engine() {
    for seed in [5u64, 6] {
        let oc: TagOrderCore = OrderCore::new(DynamicGraph::with_vertices(26), seed);
        churn_agreement(oc, 26, 220, seed);
    }
}

#[test]
fn random_churn_with_full_validation() {
    // Smaller but validates the entire index (deg+, mcd, Lemma 5.1,
    // list/seq agreement) after every single update.
    for seed in [7u64, 8, 9] {
        let mut oc: TreapOrderCore = OrderCore::new(DynamicGraph::with_vertices(18), seed);
        let mut present: Vec<(u32, u32)> = Vec::new();
        let mut state = seed | 1;
        for _ in 0..150 {
            let do_remove = !present.is_empty() && xorshift(&mut state).is_multiple_of(3);
            if do_remove {
                let idx = (xorshift(&mut state) % present.len() as u64) as usize;
                let (a, b) = present.swap_remove(idx);
                oc.remove_edge(a, b).unwrap();
            } else {
                let a = (xorshift(&mut state) % 18) as u32;
                let b = (xorshift(&mut state) % 18) as u32;
                if a == b || oc.graph().has_edge(a, b) {
                    continue;
                }
                oc.insert_edge(a, b).unwrap();
                present.push((a, b));
            }
            oc.validate();
        }
    }
}

#[test]
fn dense_block_growth() {
    // Growing a clique edge by edge exercises repeated promotions through
    // every level.
    let mut oc: TreapOrderCore = OrderCore::new(DynamicGraph::with_vertices(12), 3);
    for a in 0..12u32 {
        for b in (a + 1)..12u32 {
            oc.insert_edge(a, b).unwrap();
        }
    }
    assert!(oc.cores().iter().all(|&c| c == 11));
    oc.validate();
    // And tearing it down edge by edge.
    for a in 0..12u32 {
        for b in (a + 1)..12u32 {
            oc.remove_edge(a, b).unwrap();
        }
    }
    assert!(oc.cores().iter().all(|&c| c == 0));
    oc.validate();
}

#[test]
fn all_engines_agree_on_paper_graph_updates() {
    let pg = fixtures::PaperGraph::small();
    let mut order = treap_core(&pg.graph);
    let mut trav = TraversalCore::new(pg.graph.clone(), 2);
    let mut naive = RecomputeCore::new(pg.graph.clone());
    let updates = [
        (pg.v(4), pg.u(0)),
        (pg.v(8), pg.v(13)),
        (pg.u(19), pg.u(20)),
        (pg.v(1), pg.v(4)),
    ];
    for &(a, b) in &updates {
        order.insert(a, b).unwrap();
        trav.insert(a, b).unwrap();
        naive.insert(a, b).unwrap();
        assert_eq!(order.core_slice(), naive.core_slice());
        assert_eq!(trav.core_slice(), naive.core_slice());
        order.validate();
        trav.validate();
    }
    for &(a, b) in updates.iter().rev() {
        order.remove(a, b).unwrap();
        trav.remove(a, b).unwrap();
        naive.remove(a, b).unwrap();
        assert_eq!(order.core_slice(), naive.core_slice());
        assert_eq!(trav.core_slice(), naive.core_slice());
        order.validate();
        trav.validate();
    }
    assert_eq!(order.core_slice(), &pg.expected_cores()[..]);
}

#[test]
fn order_visits_far_fewer_than_traversal_on_chain() {
    // Aggregate over several chain insertions: the |V+| / |V'| gap that
    // motivates the paper (Figs 1-2).
    let pg = fixtures::PaperGraph::full();
    let mut order = treap_core(&pg.graph);
    let mut trav = TraversalCore::new(pg.graph.clone(), 2);
    let mut order_visits = 0usize;
    let mut trav_visits = 0usize;
    let updates = [(pg.v(4), pg.u(0)), (pg.v(5), pg.u(3)), (pg.v(1), pg.u(4))];
    for &(a, b) in &updates {
        order_visits += order.insert(a, b).unwrap().visited;
        trav_visits += trav.insert(a, b).unwrap().visited;
        assert_eq!(order.core_slice(), trav.core_slice());
    }
    assert!(
        order_visits * 50 < trav_visits,
        "order {order_visits} vs traversal {trav_visits}"
    );
}

#[test]
fn heuristic_variants_build_valid_indices() {
    use kcore_decomp::Heuristic;
    let pg = fixtures::PaperGraph::small();
    for h in Heuristic::ALL {
        let mut oc: TreapOrderCore = OrderCore::with_heuristic(pg.graph.clone(), h, 5);
        oc.validate();
        oc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        oc.validate();
    }
}

#[test]
fn observation_6_1_demotions_occur_and_stay_valid() {
    // Hunt for insertions that trigger the RemoveCandidates demotion path
    // (a candidate retracted from VC and re-inserted mid-order) on a
    // fixed random graph, and validate the index after each. The paper's
    // Observation 6.1 is precisely about these repositionings.
    let mut state = 0xB0B5u64;
    let mut g = DynamicGraph::with_vertices(40);
    let mut edges = 0;
    while edges < 70 {
        let a = (xorshift(&mut state) % 40) as u32;
        let b = (xorshift(&mut state) % 40) as u32;
        if a != b && !g.has_edge(a, b) {
            g.insert_edge_unchecked(a, b);
            edges += 1;
        }
    }
    let mut demotion_inserts = 0usize;
    let mut oc = treap_core(&g);
    for _ in 0..300 {
        let a = (xorshift(&mut state) % 40) as u32;
        let b = (xorshift(&mut state) % 40) as u32;
        if a == b || oc.graph().has_edge(a, b) {
            continue;
        }
        oc.insert_edge(a, b).unwrap();
        if oc.last_demotions() > 0 {
            demotion_inserts += 1;
            oc.validate();
        }
        // keep the graph from densifying into one clique
        oc.remove_edge(a, b).unwrap();
    }
    assert!(
        demotion_inserts > 0,
        "the demotion path was never exercised — test graph too easy"
    );
}

// ---- adaptive planner satellites ----------------------------------------

/// A scripted clock: pops pre-programmed timestamps so planner
/// calibration tests depend only on injected timings, never on the wall
/// clock. Panics when the script runs dry (the test under-budgeted its
/// clock reads).
fn scripted_clock(times: Vec<u64>) -> Box<dyn FnMut() -> u64 + Send> {
    let mut queue = std::collections::VecDeque::from(times);
    Box::new(move || queue.pop_front().expect("clock script exhausted"))
}

#[test]
fn calibration_converges_to_the_observed_faster_strategy() {
    use crate::planner::{PlanPolicy, PlannedCore, Planner, PlannerConfig, Strategy};

    // Misprice the priors: batched looks nearly free, recompute mildly
    // expensive — stage 1 therefore starts on batched passes. The
    // robustness knobs (movement clamp, stale relaxation) are disabled
    // so the test exercises pure EWMA convergence; they have their own
    // unit tests.
    let cfg = PlannerConfig {
        policy: PlanPolicy::Auto,
        ewma_alpha: 0.5,
        batched_insert_ns_per_edge: 1.0,
        recompute_ns_per_unit: 100.0,
        ewma_max_step: f64::INFINITY,
        stale_decay: 0.0,
        ..PlannerConfig::default()
    };

    // Script: each batched execution reads the clock three times (start,
    // between phases, end) and "takes" 10 ms for its 10 edges — 1 ms per
    // edge of observed cost, a thousandfold of the prior. Recompute
    // batches read fewer entries, so the script over-provisions; any
    // alignment yields per-observation deltas of at most 10 ms, which
    // keeps the recompute estimate below the flip-back threshold.
    const WARMUP: usize = 6;
    let mut script = Vec::new();
    let mut t = 0u64;
    for _ in 0..WARMUP + 4 {
        script.push(t);
        script.push(t);
        script.push(t + 10_000_000);
        t += 20_000_000;
    }
    let planner = Planner::with_clock(cfg, scripted_clock(script));

    let g = fixtures::path(30);
    let engine: TreapOrderCore = OrderCore::new(g.clone(), 7);
    let mut pc = PlannedCore::from_parts(engine, planner);

    // Warm-up: batches of already-present edges (all skipped, so the
    // graph never changes and every batch is a pure timing observation).
    let dup_batch: Vec<(u32, u32)> = (0..10u32).map(|i| (i, i + 1)).collect();
    let (n, m) = (pc.graph().num_vertices(), pc.graph().num_edges());
    assert_eq!(
        pc.planner().plan(10, 0, n, m, true),
        Strategy::Batched,
        "mispriced priors must start on the batched strategy"
    );
    for _ in 0..WARMUP {
        let stats = pc.insert_edges(&dup_batch);
        assert_eq!(stats.skipped, dup_batch.len());
    }

    // The EWMA has absorbed the observed ~1 ms/edge: the batched
    // estimate crossed the ~6.9 µs recompute estimate and the choice
    // flipped during the warm-up (duplicate batches that recompute are
    // no-ops and do not count as dispatches).
    assert!(pc.planner_stats().batched_chosen >= 1);
    assert!(
        pc.planner_stats().batched_insert_ns_per_edge > 1_000.0,
        "EWMA must have absorbed the scripted slowness (got {})",
        pc.planner_stats().batched_insert_ns_per_edge
    );
    assert_eq!(
        pc.planner().plan(10, 0, n, m, true),
        Strategy::Recompute,
        "after mispriced warm-up the planner must flip to recompute"
    );

    // A batch with real work now executes — and records — the flipped
    // strategy.
    let stats = pc.insert_edges(&[(0, 2), (1, 3)]);
    assert_eq!(stats.skipped, 0);
    assert_eq!(
        pc.planner_stats().recompute_chosen,
        1,
        "the first effective batch after the flip must recompute"
    );
    assert!(!pc.is_order_fresh(), "recompute defers the order rebuild");
}

#[test]
fn repeated_batches_reuse_scratch_without_growth() {
    // Steady-state batches must allocate nothing: after one warm-up
    // cycle, the reusable scratch buffers stop growing even across many
    // further insert/remove cycles.
    let g = kcore_gen::barabasi_albert(2_000, 4, 11);
    let mut oc = TreapOrderCore::new(g.clone(), 3);
    let mut state = 0xFEEDu64;
    let mut batch: Vec<(u32, u32)> = Vec::new();
    {
        let mut probe = g.clone();
        while batch.len() < 500 {
            let a = (xorshift(&mut state) % 2_000) as u32;
            let b = (xorshift(&mut state) % 2_000) as u32;
            if a != b && !probe.has_edge(a, b) {
                probe.insert_edge_unchecked(a, b);
                batch.push((a, b));
            }
        }
    }

    // Warm-up sizes every scratch buffer once.
    oc.insert_edges(&batch);
    oc.remove_edges(&batch);
    let warm = oc.batch_scratch_capacity();
    for _ in 0..5 {
        let si = oc.insert_edges(&batch);
        assert_eq!(si.skipped, 0);
        let sr = oc.remove_edges(&batch);
        assert_eq!(sr.skipped, 0);
        assert_eq!(
            oc.batch_scratch_capacity(),
            warm,
            "a steady-state batch grew a scratch buffer"
        );
    }
    oc.validate();
}

#[test]
fn histogram_and_degeneracy_track_updates_incrementally() {
    // Drive inserts, removals, batches, and the recompute-rebuild path;
    // the O(levels) histogram/degeneracy must match an O(n) recount at
    // every step (validate() additionally cross-checks level_counts).
    let mut state = 0xD1CEu64;
    let mut oc = treap_core(&fixtures::two_cliques_bridge());
    let recount = |oc: &TreapOrderCore| {
        let max = oc.cores().iter().copied().max().unwrap_or(0);
        let mut hist = vec![0usize; max as usize + 1];
        for &c in oc.cores() {
            hist[c as usize] += 1;
        }
        (hist, max)
    };
    for round in 0..60 {
        let a = (xorshift(&mut state) % 8) as u32;
        let b = (xorshift(&mut state) % 8) as u32;
        if a != b {
            if oc.graph().has_edge(a, b) {
                oc.remove_edge(a, b).unwrap();
            } else {
                oc.insert_edge(a, b).unwrap();
            }
        }
        if round % 20 == 19 {
            oc.rebuild_via_decomposition();
        }
        let (hist, max) = recount(&oc);
        assert_eq!(oc.degeneracy(), max);
        assert_eq!(oc.core_histogram(), hist);
    }
    oc.validate();

    // Batched paths maintain the counts too.
    let batch: Vec<(u32, u32)> = vec![(0, 5), (1, 6), (2, 7)];
    oc.insert_edges(&batch);
    let (hist, max) = recount(&oc);
    assert_eq!(oc.degeneracy(), max);
    assert_eq!(oc.core_histogram(), hist);
    oc.remove_edges(&batch);
    let (hist, max) = recount(&oc);
    assert_eq!(oc.degeneracy(), max);
    assert_eq!(oc.core_histogram(), hist);
    oc.validate();
}

#[test]
fn kcore_members_allocates_exact_capacity() {
    let oc = treap_core(&fixtures::PaperGraph::small().graph);
    for k in 0..=oc.degeneracy() + 1 {
        let members = oc.kcore_members(k);
        assert_eq!(members.capacity(), members.len());
    }
}

// ---- core-change tracking (the O(changed) snapshot-publication feed) ----

/// Applies drained change ids to a stale copy of the cores and checks it
/// reaches the engine's current state — the exact contract the ingest
/// writer's chunked mirror relies on.
fn assert_drain_covers<F: FnOnce(&mut TreapOrderCore)>(g: &DynamicGraph, mutate: F) {
    let mut oc = treap_core(g);
    oc.enable_core_change_tracking();
    let before = oc.cores().to_vec();
    mutate(&mut oc);
    let mut changes = Vec::new();
    assert!(
        oc.drain_core_changes(&mut changes),
        "tracking active, drain must report the tracked set"
    );
    let mut patched = before;
    for &v in &changes {
        patched[v as usize] = oc.core(v);
    }
    assert_eq!(patched, oc.cores(), "drained ids must cover every change");
    // A second drain is empty: the log was cleared.
    let mut again = Vec::new();
    assert!(oc.drain_core_changes(&mut again));
    assert!(again.is_empty());
}

#[test]
fn change_tracking_covers_single_edge_updates() {
    assert_drain_covers(&fixtures::path(6), |oc| {
        oc.insert_edge(0, 5).unwrap();
        oc.insert_edge(1, 4).unwrap();
        oc.remove_edge(2, 3).unwrap();
    });
}

#[test]
fn change_tracking_covers_batches_and_rebuilds() {
    let g = fixtures::PaperGraph::small().graph;
    assert_drain_covers(&g, |oc| {
        oc.insert_edges(&[(0, 9), (3, 12), (1, 7)]);
        oc.remove_edges(&[(0, 9)]);
        // A wholesale rebuild must diff instead of losing the changes.
        oc.insert_edge(2, 11).unwrap();
        oc.rebuild_via_decomposition();
    });
}

#[test]
fn change_tracking_off_reports_full_sync() {
    let mut oc = treap_core(&fixtures::triangle());
    let mut out = Vec::new();
    assert!(
        !oc.drain_core_changes(&mut out),
        "tracking off => full sync"
    );
    assert!(out.is_empty());
}

#[test]
fn planned_core_tracks_through_recompute() {
    use crate::planner::{PlanPolicy, PlannedCore};
    let g = fixtures::PaperGraph::small().graph;
    let mut pc: PlannedCore = PlannedCore::with_policy(g, 7, PlanPolicy::ForceRecompute);
    pc.enable_core_change_tracking();
    let before = pc.cores().to_vec();
    pc.insert_edges(&[(0, 9), (3, 12), (1, 7)]);
    // Force the deferred k-order rebuild too: cores are unchanged by it,
    // so it must not pollute or invalidate the log.
    pc.insert_edge(2, 11).unwrap();
    let mut changes = Vec::new();
    assert!(pc.drain_core_changes(&mut changes));
    let mut patched = before;
    for &v in &changes {
        patched[v as usize] = pc.core(v);
    }
    assert_eq!(patched, pc.cores());
}
