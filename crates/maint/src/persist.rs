//! Index persistence: save a maintained [`OrderCore`] to a compact binary
//! file and load it back without re-running the decomposition.
//!
//! Index creation is the one-time cost of Table III; for large graphs it
//! dwarfs a single update by orders of magnitude, so deployments
//! checkpoint the index. The format stores the graph (edge list), the
//! global k-order, and the three per-vertex arrays (`core`, `deg⁺`,
//! `mcd`), all little-endian `u32`, guarded by a magic header and an
//! Fx-hash checksum. Loading re-validates the cheap structural facts
//! (grouping, Lemma 5.1) and rebuilds the treaps by chaining at the tail
//! (`O(1)` expected rotations per vertex).

use crate::order_core::OrderCore;
use kcore_decomp::validate::compute_mcd;
use kcore_graph::{DynamicGraph, FxHashSet, VertexId};
use kcore_order::OrderSeq;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x4B4F_5244; // "KORD"
const VERSION: u32 = 1;

/// Errors while loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a kcore index file / wrong version.
    BadHeader,
    /// The checksum did not match (truncated or corrupted file).
    Corrupted(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadHeader => write!(f, "not a kcore index file"),
            PersistError::Corrupted(what) => write!(f, "corrupted index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn checksum(words: &[u32]) -> u64 {
    let mut h = kcore_graph::FxBuildHasher::default().build_hasher();
    for &w in words {
        h.write_u32(w);
    }
    h.finish()
}

impl<S: OrderSeq> OrderCore<S> {
    /// Serialises the index (graph + k-order + per-vertex arrays).
    pub fn save<W: Write>(&self, mut out: W) -> io::Result<()> {
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges();
        let mut words: Vec<u32> = Vec::with_capacity(4 + 2 * m + 4 * n);
        words.push(MAGIC);
        words.push(VERSION);
        words.push(n as u32);
        words.push(m as u32);
        for (u, v) in self.graph.edges() {
            words.push(u);
            words.push(v);
        }
        words.extend(self.global_order());
        words.extend_from_slice(&self.core);
        words.extend_from_slice(&self.deg_plus);
        words.extend_from_slice(&self.mcd);
        let sum = checksum(&words);
        let mut bytes: Vec<u8> = Vec::with_capacity(4 * words.len() + 8);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.extend_from_slice(&sum.to_le_bytes());
        out.write_all(&bytes)
    }

    /// Saves to a file path.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.save(io::BufWriter::new(file))
    }

    /// Deserialises an index previously written by [`OrderCore::save`].
    /// Treaps and lists are rebuilt from the stored k-order; the stored
    /// arrays are structurally validated (checksum, permutation, core
    /// grouping, Lemma 5.1, `mcd` definition).
    pub fn load<R: Read>(mut input: R, seed: u64) -> Result<Self, PersistError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        if bytes.len() < 24 || (bytes.len() - 8) % 4 != 0 {
            return Err(PersistError::BadHeader);
        }
        let (word_bytes, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let words: Vec<u32> = word_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if words[0] != MAGIC || words[1] != VERSION {
            return Err(PersistError::BadHeader);
        }
        let stored_sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        if checksum(&words) != stored_sum {
            return Err(PersistError::Corrupted("checksum mismatch"));
        }
        let n = words[2] as usize;
        let m = words[3] as usize;
        if words.len() != 4 + 2 * m + 4 * n {
            return Err(PersistError::Corrupted("length mismatch"));
        }
        let mut at = 4usize;
        let mut graph = DynamicGraph::with_vertices(n);
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for _ in 0..m {
            let (u, v) = (words[at], words[at + 1]);
            at += 2;
            if u as usize >= n || v as usize >= n || u == v {
                return Err(PersistError::Corrupted("bad edge"));
            }
            if !seen.insert(kcore_graph::edge_key(u, v)) {
                return Err(PersistError::Corrupted("duplicate edge"));
            }
            graph.insert_edge_unchecked(u, v);
        }
        let order: Vec<VertexId> = words[at..at + n].to_vec();
        at += n;
        let core: Vec<u32> = words[at..at + n].to_vec();
        at += n;
        let deg_plus: Vec<u32> = words[at..at + n].to_vec();
        at += n;
        let mcd: Vec<u32> = words[at..at + n].to_vec();

        // Structural validation.
        let mut pos = vec![u32::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            if v as usize >= n || pos[v as usize] != u32::MAX {
                return Err(PersistError::Corrupted("order is not a permutation"));
            }
            pos[v as usize] = i as u32;
        }
        for w in order.windows(2) {
            if core[w[0] as usize] > core[w[1] as usize] {
                return Err(PersistError::Corrupted("order not grouped by core"));
            }
        }
        for v in 0..n as VertexId {
            let later = graph
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count() as u32;
            if later != deg_plus[v as usize] || later > core[v as usize] {
                return Err(PersistError::Corrupted("deg+ / Lemma 5.1 violation"));
            }
        }
        if mcd != compute_mcd(&graph, &core) {
            return Err(PersistError::Corrupted("mcd mismatch"));
        }

        // Rebuild lists / sequences / handles through the shared
        // `KOrder` constructor (one place initialises every field of the
        // index, including the per-level counts and batch scratch).
        let ko = kcore_decomp::KOrder {
            core,
            order,
            deg_plus,
        };
        Ok(OrderCore::from_korder(graph, ko, seed))
    }

    /// Loads from a file path.
    pub fn load_from_path<P: AsRef<Path>>(path: P, seed: u64) -> Result<Self, PersistError> {
        let file = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(file), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreapOrderCore;
    use kcore_graph::fixtures;

    fn roundtrip(oc: &TreapOrderCore) -> TreapOrderCore {
        let mut buf = Vec::new();
        oc.save(&mut buf).unwrap();
        TreapOrderCore::load(&buf[..], 99).unwrap()
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let pg = fixtures::PaperGraph::small();
        let mut oc = TreapOrderCore::new(pg.graph.clone(), 5);
        oc.insert_edge(pg.v(4), pg.u(0)).unwrap();
        let loaded = roundtrip(&oc);
        assert_eq!(loaded.cores(), oc.cores());
        assert_eq!(loaded.global_order(), oc.global_order());
        loaded.validate();
    }

    #[test]
    fn loaded_engine_keeps_working() {
        let mut oc = TreapOrderCore::new(fixtures::path(20), 3);
        oc.insert_edge(0, 19).unwrap();
        let mut loaded = roundtrip(&oc);
        loaded.insert_edge(0, 10).unwrap();
        loaded.remove_edge(0, 19).unwrap();
        loaded.validate();
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        let oc = TreapOrderCore::new(fixtures::triangle(), 1);
        let mut buf = Vec::new();
        oc.save(&mut buf).unwrap();

        // truncation
        let err = TreapOrderCore::load(&buf[..buf.len() - 5], 1).unwrap_err();
        assert!(matches!(
            err,
            PersistError::BadHeader | PersistError::Corrupted(_)
        ));

        // bad magic
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            TreapOrderCore::load(&bad[..], 1).unwrap_err(),
            PersistError::BadHeader
        ));

        // flipped payload byte -> checksum mismatch
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            TreapOrderCore::load(&bad[..], 1).unwrap_err(),
            PersistError::Corrupted(_)
        ));

        // empty input
        assert!(matches!(
            TreapOrderCore::load(&[][..], 1).unwrap_err(),
            PersistError::BadHeader
        ));
    }

    #[test]
    fn file_roundtrip() {
        let oc = TreapOrderCore::new(fixtures::petersen(), 2);
        let dir = std::env::temp_dir().join("kcore_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("petersen.kord");
        oc.save_to_path(&path).unwrap();
        let loaded = TreapOrderCore::load_from_path(&path, 2).unwrap();
        assert_eq!(loaded.cores(), oc.cores());
        loaded.validate();
        std::fs::remove_file(path).ok();
    }
}
