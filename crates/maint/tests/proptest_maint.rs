//! Property-based tests local to the maintenance crate: persistence
//! robustness (roundtrip + corruption), heuristic-built indices under
//! churn, and batch-vs-incremental equivalence.

use kcore_decomp::{Heuristic, Parallelism};
use kcore_graph::DynamicGraph;
use kcore_maint::{
    BatchOp, CoreMaintainer, OrderCore, PlanPolicy, PlannedTreapCore, RecomputeCore, TreapOrderCore,
};
use proptest::prelude::*;

const ALL_POLICIES: [PlanPolicy; 6] = [
    PlanPolicy::Auto,
    PlanPolicy::ForceBatch,
    PlanPolicy::ForceSplit,
    PlanPolicy::ForceParSplit,
    PlanPolicy::ForceRecompute,
    PlanPolicy::ForceParRecompute,
];

/// A planned engine for the given policy; the parallel policies get a
/// two-thread `Parallelism` with the cutoff zeroed so the worker-team
/// paths genuinely run even on tiny property-test graphs.
fn planned_with(g: DynamicGraph, seed: u64, policy: PlanPolicy) -> PlannedTreapCore {
    let pc = PlannedTreapCore::with_policy(g, seed, policy);
    match policy {
        PlanPolicy::ForceParSplit | PlanPolicy::ForceParRecompute => {
            pc.with_parallelism(Parallelism::exact(2).with_cutoff(0))
        }
        _ => pc,
    }
}

fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = DynamicGraph> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut g = DynamicGraph::with_vertices(n as usize);
        for (a, b) in pairs {
            if a != b && !g.has_edge(a, b) {
                g.insert_edge_unchecked(a, b);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// save → load is the identity on every observable of the index.
    #[test]
    fn persist_roundtrip_identity(g in arb_graph(30, 120), seed in any::<u64>()) {
        let oc = TreapOrderCore::new(g, seed);
        let mut buf = Vec::new();
        oc.save(&mut buf).unwrap();
        let loaded = TreapOrderCore::load(&buf[..], seed ^ 1).unwrap();
        prop_assert_eq!(loaded.cores(), oc.cores());
        prop_assert_eq!(loaded.global_order(), oc.global_order());
        loaded.validate();
    }

    /// Arbitrary single-byte corruption never yields a silently-wrong
    /// index: load either errors or (if the flip cancels out, which it
    /// cannot for a checksum-covered byte) returns a valid one.
    #[test]
    fn persist_corruption_is_detected(
        g in arb_graph(16, 40),
        byte in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let oc = TreapOrderCore::new(g, 7);
        let mut buf = Vec::new();
        oc.save(&mut buf).unwrap();
        let pos = byte.index(buf.len());
        buf[pos] ^= flip;
        match TreapOrderCore::load(&buf[..], 7) {
            Err(_) => {} // detected — the expected outcome
            Ok(loaded) => {
                // Only possible if the flip hit redundant state that the
                // validators and checksum both tolerate — which would mean
                // the index is still fully valid:
                loaded.validate();
            }
        }
    }

    /// Truncation at any point is detected.
    #[test]
    fn persist_truncation_is_detected(g in arb_graph(12, 30), cut in any::<prop::sample::Index>()) {
        let oc = TreapOrderCore::new(g, 3);
        let mut buf = Vec::new();
        oc.save(&mut buf).unwrap();
        let keep = cut.index(buf.len()); // strictly shorter than buf
        prop_assert!(TreapOrderCore::load(&buf[..keep], 3).is_err());
    }

    /// Indices built with the large/random heuristics stay valid under
    /// churn too (the heuristic only changes the starting order).
    #[test]
    fn heuristic_indices_survive_churn(
        g in arb_graph(16, 50),
        updates in prop::collection::vec((any::<bool>(), 0u32..16, 0u32..16), 0..40),
        seed in any::<u64>(),
    ) {
        for h in [Heuristic::LargeDegFirst, Heuristic::RandomDegFirst] {
            let mut oc: TreapOrderCore = OrderCore::with_heuristic(g.clone(), h, seed);
            let mut present = oc.graph().edge_vec();
            for &(ins, a, b) in &updates {
                if ins {
                    if a != b && !oc.graph().has_edge(a, b) {
                        oc.insert_edge(a, b).unwrap();
                        present.push((a.min(b), a.max(b)));
                    }
                } else if !present.is_empty() {
                    let idx = (a as usize * 13 + b as usize) % present.len();
                    let (x, y) = present.swap_remove(idx);
                    oc.remove_edge(x, y).unwrap();
                }
                oc.validate();
            }
        }
    }

    /// The batched insert entry point equals (a) edge-at-a-time insertion
    /// and (b) a from-scratch decomposition of the final graph — for
    /// batches salted with self loops, duplicates (of existing edges and
    /// within the batch), and out-of-range endpoints, which the batch API
    /// skips and the sequential loop must therefore also ignore.
    #[test]
    fn insert_edges_equals_sequential_and_decomposition(
        g in arb_graph(16, 40),
        raw in prop::collection::vec((0u32..20, 0u32..20), 1..40),
        seed in any::<u64>(),
    ) {
        // Out-of-range ids (16..20) and self loops stay in the batch on
        // purpose: insert_edges must skip them.
        let batch: Vec<(u32, u32)> = raw;

        let mut batched = TreapOrderCore::new(g.clone(), seed);
        let stats = batched.insert_edges(&batch);

        let mut seq = TreapOrderCore::new(g.clone(), seed);
        let mut applied = 0usize;
        for &(u, v) in &batch {
            if seq.insert_edge(u, v).is_ok() {
                applied += 1;
            }
        }
        prop_assert_eq!(stats.skipped, batch.len() - applied);
        prop_assert_eq!(batched.cores(), seq.cores());
        prop_assert_eq!(
            batched.cores(),
            &kcore_decomp::core_decomposition(batched.graph())[..]
        );
        batched.validate();
    }

    /// Same equivalence for the batched removal entry point, with the
    /// batch salted by absent edges and self loops.
    #[test]
    fn remove_edges_equals_sequential_and_decomposition(
        g in arb_graph(16, 60),
        picks in prop::collection::vec((0u32..18, 0u32..18), 1..40),
        seed in any::<u64>(),
    ) {
        let mut batched = TreapOrderCore::new(g.clone(), seed);
        let stats = batched.remove_edges(&picks);

        let mut seq = TreapOrderCore::new(g, seed);
        let mut applied = 0usize;
        for &(u, v) in &picks {
            if seq.remove_edge(u, v).is_ok() {
                applied += 1;
            }
        }
        prop_assert_eq!(stats.skipped, picks.len() - applied);
        prop_assert_eq!(batched.cores(), seq.cores());
        prop_assert_eq!(
            batched.cores(),
            &kcore_decomp::core_decomposition(batched.graph())[..]
        );
        batched.validate();
    }

    /// The merged multi-seed removal pass on a batch built mostly from
    /// *live* edges — so the dismissal passes really fire — with the dirt
    /// the skip contract covers: every live edge listed twice (removed
    /// twice in one batch), plus self loops and out-of-range endpoints.
    /// Must equal sequential removal and a from-scratch decomposition.
    #[test]
    fn remove_edges_dirty_live_batches(
        g in arb_graph(14, 70),
        step in 1usize..4,
        salt in prop::collection::vec((0u32..18, 0u32..18), 0..10),
        seed in any::<u64>(),
    ) {
        let mut batch: Vec<(u32, u32)> = Vec::new();
        for (i, e) in g.edge_vec().into_iter().enumerate() {
            if i % step == 0 {
                batch.push(e);
                batch.push((e.1, e.0)); // same edge again, flipped
            }
        }
        for (i, &(a, b)) in salt.iter().enumerate() {
            batch.insert((i * 7) % (batch.len() + 1), (a, b));
            batch.push((a, a)); // self loop
        }

        let mut batched = TreapOrderCore::new(g.clone(), seed);
        let stats = batched.remove_edges(&batch);

        let mut seq = TreapOrderCore::new(g, seed);
        let mut applied = 0usize;
        for &(u, v) in &batch {
            if seq.remove_edge(u, v).is_ok() {
                applied += 1;
            }
        }
        prop_assert_eq!(stats.skipped, batch.len() - applied);
        prop_assert_eq!(batched.cores(), seq.cores());
        prop_assert_eq!(
            batched.cores(),
            &kcore_decomp::core_decomposition(batched.graph())[..]
        );
        batched.validate();
    }

    /// A churn stream (interleaved insert/remove micro-batches) driven
    /// through the `CoreMaintainer` batch entry points must match the
    /// recompute oracle after every batch, and no generated op may be
    /// skipped as invalid.
    #[test]
    fn churn_stream_through_core_maintainer(
        g in arb_graph(24, 90),
        ins in 0usize..8,
        rem in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mut g = g;
        if g.num_edges() == 0 {
            g.insert_edge(0, 1).unwrap(); // churn needs a live edge
        }
        let stream = kcore_gen::churn_stream(&g, 6, ins, rem, seed);
        let mut engine = TreapOrderCore::new(g.clone(), seed);
        let mut oracle = RecomputeCore::new(g);
        for b in &stream {
            let si = engine.insert_batch(&b.inserts);
            prop_assert_eq!(si.skipped, 0, "churn inserts are always fresh");
            let sr = engine.remove_batch(&b.removes);
            prop_assert_eq!(sr.skipped, 0, "churn removes are always live");
            oracle.insert_batch(&b.inserts);
            oracle.remove_batch(&b.removes);
            prop_assert_eq!(engine.cores(), oracle.core_slice());
        }
        engine.validate();
    }

    /// Planner equivalence on random edge soups: every `PlanPolicy`
    /// yields bit-identical core numbers on dirty insert + removal
    /// batches, reports identical skip counts, and — after any recompute
    /// fallback — the engine remains a valid order-based index
    /// (`validate()` passes post-rebuild) that keeps absorbing
    /// single-edge updates through the order-based passes.
    #[test]
    fn planner_policies_agree_on_edge_soups(
        g in arb_graph(16, 50),
        raw in prop::collection::vec((0u32..20, 0u32..20), 1..40),
        picks in prop::collection::vec((0u32..18, 0u32..18), 1..30),
        seed in any::<u64>(),
    ) {
        let mut reference: Option<(Vec<u32>, usize, usize)> = None;
        for policy in ALL_POLICIES {
            let mut pc = planned_with(g.clone(), seed, policy);
            let si = pc.insert_edges(&raw);
            let sr = pc.remove_edges(&picks);
            // After a recompute fallback the engine must remain
            // order-based: run single-edge updates through the passes
            // (net zero change either way around).
            if pc.graph().has_edge(0, 1) {
                pc.remove_edge(0, 1).unwrap();
                pc.insert_edge(0, 1).unwrap();
            } else {
                pc.insert_edge(0, 1).unwrap();
                pc.remove_edge(0, 1).unwrap();
            }
            prop_assert!(pc.is_order_fresh());
            pc.validate();
            let state = (pc.cores().to_vec(), si.skipped, sr.skipped);
            if let Some(r) = &reference {
                prop_assert_eq!(&state, r, "{:?} diverged", policy);
            } else {
                prop_assert_eq!(
                    &state.0[..],
                    &kcore_decomp::core_decomposition(pc.graph())[..]
                );
                reference = Some(state);
            }
        }
    }

    /// Planner equivalence on preferential-attachment graphs with larger
    /// fresh batches (the shape the benchmarks measure): all policies
    /// agree with the decomposition oracle and stay valid.
    #[test]
    fn planner_policies_agree_on_ba_graphs(
        n in 30usize..80,
        attach in 2usize..4,
        extra in prop::collection::vec((0u32..30, 0u32..30), 1..30),
        seed in any::<u64>(),
    ) {
        let g = kcore_gen::barabasi_albert(n, attach, seed);
        let mut reference: Option<Vec<u32>> = None;
        for policy in ALL_POLICIES {
            let mut pc = planned_with(g.clone(), seed ^ 1, policy);
            pc.insert_edges(&extra);
            pc.validate();
            let cores = pc.cores().to_vec();
            if let Some(r) = &reference {
                prop_assert_eq!(&cores, r, "{:?} diverged", policy);
            } else {
                prop_assert_eq!(
                    &cores[..],
                    &kcore_decomp::core_decomposition(pc.graph())[..]
                );
                reference = Some(cores);
            }
        }
    }

    /// Planner equivalence under churn streams driven through the
    /// planned mixed entry point: every policy matches the recompute
    /// oracle after every micro-batch, and the index revalidates at the
    /// end (exercising the deferred rebuild across interleaved batches).
    #[test]
    fn planner_policies_agree_under_churn(
        g in arb_graph(24, 90),
        ins in 0usize..8,
        rem in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mut g = g;
        if g.num_edges() == 0 {
            g.insert_edge(0, 1).unwrap();
        }
        let stream = kcore_gen::churn_stream(&g, 5, ins, rem, seed);
        for policy in ALL_POLICIES {
            let mut pc = planned_with(g.clone(), seed, policy);
            let mut oracle = RecomputeCore::new(g.clone());
            for b in &stream {
                let s = pc.apply_churn(&b.inserts, &b.removes);
                prop_assert_eq!(s.skipped, 0, "churn ops are always valid");
                oracle.insert_batch(&b.inserts);
                oracle.remove_batch(&b.removes);
                prop_assert_eq!(pc.cores(), oracle.core_slice(), "{:?} diverged", policy);
            }
            pc.validate();
        }
    }

    /// Batch application (either path) equals sequential application.
    #[test]
    fn batch_equals_sequential(
        g in arb_graph(14, 30),
        extra in prop::collection::vec((0u32..14, 0u32..14), 1..20),
        frac in 0.0f64..2.0,
    ) {
        let mut ops = Vec::new();
        {
            let mut probe = g.clone();
            for &(a, b) in &extra {
                if a != b && !probe.has_edge(a, b) {
                    probe.insert_edge_unchecked(a, b);
                    ops.push(BatchOp::Insert(a, b));
                }
            }
        }
        prop_assume!(!ops.is_empty());
        let mut batched = TreapOrderCore::new(g.clone(), 5);
        batched.apply_batch(&ops, frac).unwrap();
        let mut seq = TreapOrderCore::new(g, 5);
        for &op in &ops {
            let BatchOp::Insert(a, b) = op else { unreachable!() };
            seq.insert_edge(a, b).unwrap();
        }
        prop_assert_eq!(batched.cores(), seq.cores());
        batched.validate();
    }
}

// ---------------------------------------------------------------------
// PR 8: thread-parallel component passes must be bit-identical to the
// serial component-split path — cores, k-order (`global_order`),
// `UpdateStats`, and the drained core-change log, at every thread count.
// ---------------------------------------------------------------------

/// Runs `step` against a serial component-split engine and parallel
/// engines at 1/2/4 threads, asserting every observable matches after
/// every batch.
fn assert_parallel_bit_identical(
    base: &DynamicGraph,
    seed: u64,
    batches: &[(bool, Vec<(u32, u32)>)],
) {
    use kcore_decomp::Parallelism;
    use kcore_maint::BatchOptions;

    let serial_opts = BatchOptions::component_split();
    let mut serial = TreapOrderCore::new(base.clone(), seed);
    serial.enable_core_change_tracking();

    let par_engines: Vec<(BatchOptions, TreapOrderCore)> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            // cutoff 0 forces the plan/apply path even on tiny pools.
            let opts = BatchOptions::parallel(Parallelism::exact(t).with_cutoff(0));
            let mut eng = TreapOrderCore::new(base.clone(), seed);
            eng.enable_core_change_tracking();
            (opts, eng)
        })
        .collect();
    let mut engines = par_engines;

    for (removal, edges) in batches {
        let serial_stats = if *removal {
            serial.remove_edges_with(edges, &serial_opts)
        } else {
            serial.insert_edges_with(edges, &serial_opts)
        };
        let mut serial_log = Vec::new();
        let serial_tracked = serial.drain_core_changes(&mut serial_log);

        for (opts, eng) in engines.iter_mut() {
            let stats = if *removal {
                eng.remove_edges_with(edges, opts)
            } else {
                eng.insert_edges_with(edges, opts)
            };
            assert_eq!(stats, serial_stats, "UpdateStats diverged ({opts:?})");
            let mut log = Vec::new();
            let tracked = eng.drain_core_changes(&mut log);
            assert_eq!(tracked, serial_tracked);
            // Serial apply order makes even the *order* of the change
            // log identical, which subsumes the canonical-sort bar.
            assert_eq!(log, serial_log, "core-change log diverged ({opts:?})");
            assert_eq!(eng.cores(), serial.cores());
            assert_eq!(eng.global_order(), serial.global_order());
            eng.validate();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Insert batches on edge soups: parallel == serial, bit for bit.
    #[test]
    fn parallel_insert_bit_identical_on_edge_soups(
        g in arb_graph(40, 80),
        extra in prop::collection::vec((0u32..40, 0u32..40), 1..60),
        seed in any::<u64>(),
    ) {
        let batch: Vec<(u32, u32)> = extra.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!batch.is_empty());
        assert_parallel_bit_identical(&g, seed, &[(false, batch)]);
    }

    /// Removal batches: parallel == serial, bit for bit.
    #[test]
    fn parallel_remove_bit_identical_on_edge_soups(
        g in arb_graph(40, 160),
        pick in prop::collection::vec(any::<prop::sample::Index>(), 1..40),
        seed in any::<u64>(),
    ) {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        prop_assume!(!edges.is_empty());
        let batch: Vec<(u32, u32)> = pick.iter().map(|i| edges[i.index(edges.len())]).collect();
        assert_parallel_bit_identical(&g, seed, &[(true, batch)]);
    }

    /// Preferential-attachment-flavoured graphs (hubs force deep
    /// demotion cascades) under alternating insert/remove churn.
    #[test]
    fn parallel_churn_bit_identical_on_ba_graphs(
        hub_edges in prop::collection::vec((0u32..8, 0u32..48), 20..80),
        churn in prop::collection::vec((any::<bool>(), 0u32..48, 0u32..48), 4..40),
        seed in any::<u64>(),
    ) {
        let mut g = DynamicGraph::with_vertices(48);
        for (hub, v) in hub_edges {
            if hub != v && !g.has_edge(hub, v) {
                g.insert_edge_unchecked(hub, v);
            }
        }
        // Split the churn into alternating insert/remove batches.
        let mut batches: Vec<(bool, Vec<(u32, u32)>)> = Vec::new();
        let mut probe = g.clone();
        for chunk in churn.chunks(8) {
            let mut ins = Vec::new();
            let mut rem = Vec::new();
            for &(insert, a, b) in chunk {
                if a == b {
                    continue;
                }
                if insert && !probe.has_edge(a, b) {
                    probe.insert_edge_unchecked(a, b);
                    ins.push((a, b));
                } else if !insert && probe.has_edge(a, b) {
                    probe.remove_edge(a, b).unwrap();
                    rem.push((a, b));
                }
            }
            if !ins.is_empty() {
                batches.push((false, ins));
            }
            if !rem.is_empty() {
                batches.push((true, rem));
            }
        }
        prop_assume!(!batches.is_empty());
        assert_parallel_bit_identical(&g, seed, &batches);
    }
}
