//! Seeded random-graph generators, one per structural family used by the
//! dataset registry.

use kcore_graph::{edge_key, DynamicGraph, FxHashSet, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform `G(n, m)`: exactly `m` distinct edges among `n` vertices
/// (rejection-sampled; requires `m` well below the complete-graph bound).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> DynamicGraph {
    assert!(n >= 2);
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges / 2, "G(n,m) generator wants density <= 1/2");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m);
    while g.num_edges() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v && seen.insert(edge_key(u, v)) {
            g.insert_edge_unchecked(u, v);
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per` distinct existing vertices chosen proportionally to degree.
/// Degeneracy is `m_per`; degree distribution is a power law. Edges are
/// produced in temporal order (vertex arrival), which the registry reuses
/// for the "temporal" datasets.
pub fn barabasi_albert(n: usize, m_per: usize, seed: u64) -> DynamicGraph {
    holme_kim(n, m_per, 0.0, seed)
}

/// Holme–Kim: Barabási–Albert with probability `p_triangle` of closing a
/// triangle after each preferential attachment (clustered power law —
/// deeper cores than plain BA, like real social networks). Every vertex
/// attaches with exactly `m_per` edges, so the degeneracy is `m_per`.
pub fn holme_kim(n: usize, m_per: usize, p_triangle: f64, seed: u64) -> DynamicGraph {
    holme_kim_with(n, m_per, p_triangle, seed, |_rng| m_per)
}

/// Holme–Kim with *heterogeneous* attachment counts: each arriving vertex
/// attaches with a draw from a skewed mixture with mean ≈ `m_mean`
/// (two-thirds uniform `1..=m_mean`, one-third uniform
/// `m_mean..=2·m_mean`). Real social graphs have broad core-number
/// distributions precisely because arrival intensity varies; constant-`m`
/// BA would collapse every core number to `m` (cf. paper Fig 10a).
pub fn heterogeneous_social(n: usize, m_mean: usize, p_triangle: f64, seed: u64) -> DynamicGraph {
    holme_kim_with(n, m_mean, p_triangle, seed, move |rng: &mut SmallRng| {
        if rng.gen_bool(2.0 / 3.0) {
            rng.gen_range(1..=m_mean)
        } else {
            rng.gen_range(m_mean..=2 * m_mean)
        }
    })
}

fn holme_kim_with<F>(
    n: usize,
    m_per: usize,
    p_triangle: f64,
    seed: u64,
    mut attach: F,
) -> DynamicGraph
where
    F: FnMut(&mut SmallRng) -> usize,
{
    assert!(m_per >= 1 && n > 2 * m_per);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    // `targets` holds one entry per half-edge: sampling uniformly from it
    // is degree-proportional sampling.
    let mut half_edges: Vec<VertexId> = Vec::with_capacity(2 * n * m_per);
    // Seed clique over the first m_per + 1 vertices.
    for a in 0..=(m_per as VertexId) {
        for b in (a + 1)..=(m_per as VertexId) {
            g.insert_edge_unchecked(a, b);
            half_edges.push(a);
            half_edges.push(b);
        }
    }
    for v in (m_per + 1)..n {
        let v = v as VertexId;
        // cap by the number of available distinct targets
        let m_v = attach(&mut rng).min(v as usize);
        let mut attached: Vec<VertexId> = Vec::with_capacity(m_v);
        let mut last: Option<VertexId> = None;
        while attached.len() < m_v {
            // Triangle step: connect to a random neighbour of the last
            // attached vertex (if possible), else preferential step.
            let mut target = None;
            if let Some(w) = last {
                if rng.gen_bool(p_triangle) {
                    let nbrs = g.neighbors(w);
                    if !nbrs.is_empty() {
                        let cand = nbrs[rng.gen_range(0..nbrs.len())];
                        if cand != v && !g.has_edge(v, cand) {
                            target = Some(cand);
                        }
                    }
                }
            }
            let t = target.unwrap_or_else(|| loop {
                let cand = half_edges[rng.gen_range(0..half_edges.len())];
                if cand != v && !g.has_edge(v, cand) {
                    break cand;
                }
            });
            g.insert_edge_unchecked(v, t);
            attached.push(t);
            last = Some(t);
        }
        for &t in &attached {
            half_edges.push(v);
            half_edges.push(t);
        }
    }
    g
}

/// R-MAT (recursive matrix) generator — the standard model for web-graph
/// style heavy tails. `scale` gives `n = 2^scale` vertices; `m` distinct
/// undirected edges are produced with quadrant probabilities
/// `(a, b, c, 1 - a - b - c)`.
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> DynamicGraph {
    assert!(a + b + c < 1.0);
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(64);
    while g.num_edges() < m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        let (u, v) = (u as VertexId, v as VertexId);
        if u != v && seen.insert(edge_key(u, v)) {
            g.insert_edge_unchecked(u, v);
        }
    }
    g
}

/// Watts–Strogatz small world: ring lattice with `k_half` neighbours on
/// each side, each edge rewired with probability `p`.
pub fn watts_strogatz(n: usize, k_half: usize, p: f64, seed: u64) -> DynamicGraph {
    assert!(n > 2 * k_half + 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    for u in 0..n {
        for d in 1..=k_half {
            let v = (u + d) % n;
            let (a, mut b) = (u as VertexId, v as VertexId);
            if rng.gen_bool(p) {
                // rewire the far endpoint
                for _ in 0..16 {
                    let cand = rng.gen_range(0..n) as VertexId;
                    if cand != a && !g.has_edge(a, cand) {
                        b = cand;
                        break;
                    }
                }
            }
            if a != b && !g.has_edge(a, b) {
                g.insert_edge_unchecked(a.min(b), a.max(b));
            }
        }
    }
    g
}

/// Road-network stand-in: a partially percolated `rows × cols` grid.
/// Lattice edges survive with probability ~0.62 (long degree-2 corridors,
/// average degree ≈ 2.8 like real road graphs); with probability `p_diag`
/// a cell densifies into a K4 pocket (both diagonals + all four sides),
/// producing the scattered core-3 regions real road networks have. A
/// sprinkle of long-range "highways" is added on top.
pub fn grid_road_network(rows: usize, cols: usize, p_diag: f64, seed: u64) -> DynamicGraph {
    const P_KEEP: f64 = 0.62;
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    fn add(g: &mut DynamicGraph, a: VertexId, b: VertexId) {
        if !g.has_edge(a, b) {
            g.insert_edge_unchecked(a, b);
        }
    }
    // Dense K4 pockets first.
    for r in 0..rows.saturating_sub(1) {
        for c in 0..cols.saturating_sub(1) {
            if rng.gen_bool(p_diag) {
                let q = [id(r, c), id(r, c + 1), id(r + 1, c), id(r + 1, c + 1)];
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        add(&mut g, q[i], q[j]);
                    }
                }
            }
        }
    }
    // Percolated lattice corridors.
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(P_KEEP) {
                add(&mut g, id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.gen_bool(P_KEEP) {
                add(&mut g, id(r, c), id(r + 1, c));
            }
        }
    }
    // A few highways (~n/200 long-range shortcuts).
    for _ in 0..(n / 200).max(1) {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v && !g.has_edge(u, v) {
            g.insert_edge_unchecked(u, v);
        }
    }
    g
}

/// Collaboration-network stand-in (DBLP-like): `papers` author sets are
/// drawn (a mix of repeat, degree-proportional authors and fresh ones) and
/// cliqued. Produces the high `max k` of co-authorship graphs and a
/// natural temporal edge order (paper by paper).
pub fn collaboration_graph(papers: usize, n_authors: usize, seed: u64) -> DynamicGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n_authors);
    let mut half_edges: Vec<VertexId> = Vec::new();
    let mut next_author = 0usize;
    for _ in 0..papers {
        // team size 2..=8, skewed small
        let size = 2 + (rng.gen_range(0..6usize) * rng.gen_range(0..6usize)) / 5;
        let mut team: Vec<VertexId> = Vec::with_capacity(size);
        while team.len() < size {
            let pick_new = next_author < n_authors && (half_edges.is_empty() || rng.gen_bool(0.3));
            let a = if pick_new {
                let a = next_author as VertexId;
                next_author += 1;
                a
            } else if !half_edges.is_empty() {
                half_edges[rng.gen_range(0..half_edges.len())]
            } else {
                rng.gen_range(0..n_authors) as VertexId
            };
            if !team.contains(&a) {
                team.push(a);
            }
        }
        for i in 0..team.len() {
            for j in (i + 1)..team.len() {
                let (a, b) = (team[i], team[j]);
                if !g.has_edge(a, b) {
                    g.insert_edge_unchecked(a, b);
                    half_edges.push(a);
                    half_edges.push(b);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_decomp::{core_decomposition, max_core};

    #[test]
    fn gnm_has_exact_counts() {
        let g = erdos_renyi_gnm(500, 1500, 1);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 1500);
        g.check_consistency().unwrap();
    }

    #[test]
    fn gnm_is_seed_deterministic() {
        let a = erdos_renyi_gnm(200, 600, 9);
        let b = erdos_renyi_gnm(200, 600, 9);
        assert_eq!(a.edge_vec(), b.edge_vec());
        let c = erdos_renyi_gnm(200, 600, 10);
        assert_ne!(a.edge_vec(), c.edge_vec());
    }

    #[test]
    fn ba_degeneracy_is_m_per() {
        let g = barabasi_albert(800, 4, 3);
        g.check_consistency().unwrap();
        assert_eq!(g.num_edges(), 10 + (800 - 5) * 4);
        let core = core_decomposition(&g);
        assert_eq!(max_core(&core), 4);
    }

    #[test]
    fn holme_kim_is_clustered_power_law() {
        let g = holme_kim(800, 4, 0.6, 3);
        g.check_consistency().unwrap();
        // triangles don't change the edge count, only their placement
        assert_eq!(g.num_edges(), 10 + (800 - 5) * 4);
        // heavy tail: max degree far above average
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 4000, 0.57, 0.19, 0.19, 7);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() >= 3900, "rejection loss too high");
        g.check_consistency().unwrap();
        // skewed: hub degree much larger than average
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
    }

    #[test]
    fn watts_strogatz_shape() {
        let g = watts_strogatz(500, 3, 0.1, 5);
        g.check_consistency().unwrap();
        // ~ n * k_half edges (some rewires may collide and drop)
        assert!(g.num_edges() > 500 * 3 * 9 / 10);
        let core = core_decomposition(&g);
        assert!(max_core(&core) >= 2);
    }

    #[test]
    fn road_grid_has_low_max_core() {
        let g = grid_road_network(60, 60, 0.12, 11);
        g.check_consistency().unwrap();
        let core = core_decomposition(&g);
        let k = max_core(&core);
        assert!(
            (2..=3).contains(&k),
            "road networks peak at core 3, got {k}"
        );
        assert!(g.avg_degree() < 4.5);
    }

    #[test]
    fn collaboration_graph_has_deep_cores() {
        let g = collaboration_graph(3000, 4000, 13);
        g.check_consistency().unwrap();
        let core = core_decomposition(&g);
        // cliques of size 8 alone give core 7; overlap pushes higher
        assert!(max_core(&core) >= 7);
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use kcore_decomp::{core_decomposition, max_core};

    #[test]
    fn heterogeneous_social_spreads_core_numbers() {
        let g = heterogeneous_social(2000, 9, 0.4, 21);
        g.check_consistency().unwrap();
        let core = core_decomposition(&g);
        let distinct: std::collections::HashSet<u32> = core.iter().copied().collect();
        // constant-m BA would give ~1 distinct value; the mixture spreads
        assert!(distinct.len() >= 5, "core spread too narrow: {distinct:?}");
        assert!(max_core(&core) >= 9);
        // mean attachment ~ 5/6 * 9 → avg degree in a sane band
        assert!((9.0..20.0).contains(&g.avg_degree()), "{}", g.avg_degree());
    }

    #[test]
    fn heterogeneous_social_is_deterministic() {
        let a = heterogeneous_social(600, 5, 0.3, 4);
        let b = heterogeneous_social(600, 5, 0.3, 4);
        assert_eq!(a.edge_vec(), b.edge_vec());
    }
}

/// Forest-fire model (Leskovec et al.): each arriving vertex picks an
/// ambassador and "burns" outward with geometric fan-out `p_forward`,
/// linking to every burned vertex. Produces densifying, shrinking-
/// diameter graphs — another realistic temporal-social family, used by
/// the crawl-style workloads in the examples and tests.
pub fn forest_fire(n: usize, p_forward: f64, seed: u64) -> DynamicGraph {
    assert!(n >= 2 && (0.0..1.0).contains(&p_forward));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraph::with_vertices(n);
    g.insert_edge_unchecked(0, 1);
    let mut burned: Vec<VertexId> = Vec::new();
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut mark = vec![u32::MAX; n];
    for v in 2..n as VertexId {
        let ambassador = rng.gen_range(0..v);
        burned.clear();
        frontier.clear();
        frontier.push(ambassador);
        mark[ambassador as usize] = v;
        // cap the burn to keep degrees bounded on dense seeds
        let cap = 1 + (rng.gen_range(0..8) + rng.gen_range(0..8)) as usize;
        while let Some(w) = frontier.pop() {
            burned.push(w);
            if burned.len() >= cap {
                break;
            }
            // geometric number of links to follow from w
            let mut fanout = 0usize;
            while rng.gen_bool(p_forward) && fanout < 8 {
                fanout += 1;
            }
            let nbrs = g.neighbors(w);
            if nbrs.is_empty() {
                continue;
            }
            for _ in 0..fanout {
                let cand = nbrs[rng.gen_range(0..nbrs.len())];
                if cand != v && mark[cand as usize] != v {
                    mark[cand as usize] = v;
                    frontier.push(cand);
                }
            }
        }
        for &b in &burned {
            if !g.has_edge(v, b) {
                g.insert_edge_unchecked(v, b);
            }
        }
    }
    g
}

#[cfg(test)]
mod forest_fire_tests {
    use super::*;
    use kcore_decomp::core_decomposition;

    #[test]
    fn forest_fire_grows_connected_ish() {
        let g = forest_fire(1500, 0.45, 17);
        g.check_consistency().unwrap();
        assert!(g.num_edges() >= 1499 / 2, "too sparse: {}", g.num_edges());
        // densification: average degree above tree level
        assert!(g.avg_degree() > 1.5);
        let core = core_decomposition(&g);
        assert!(core.iter().any(|&c| c >= 2));
    }

    #[test]
    fn forest_fire_is_deterministic() {
        let a = forest_fire(400, 0.4, 3);
        let b = forest_fire(400, 0.4, 3);
        assert_eq!(a.edge_vec(), b.edge_vec());
    }
}
