//! Timestamped edge streams: the bridge between the generators (which
//! emit edges in arrival order) and workloads that want explicit
//! timestamps — sliding-window maintenance, replay at a given rate, and
//! the Konect-style `u v t` files `kcore-graph::io` reads and writes.

use kcore_graph::io::TemporalEdge;
use kcore_graph::{DynamicGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attaches synthetic timestamps to a generator's edge list, preserving
/// arrival order (edges of BA-family generators arrive vertex by vertex;
/// `DynamicGraph::edges()` iterates by vertex id, so sorting by
/// `max(u, v)` recovers arrival order up to intra-step ties).
///
/// Gaps between consecutive timestamps are drawn uniformly from
/// `1..=max_gap`, modelling bursty arrivals.
pub fn timestamp_edges(g: &DynamicGraph, max_gap: u64, seed: u64) -> Vec<TemporalEdge> {
    let mut edges = g.edge_vec();
    edges.sort_by_key(|&(u, v)| u.max(v));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0u64;
    edges
        .into_iter()
        .map(|(u, v)| {
            t += rng.gen_range(1..=max_gap.max(1));
            TemporalEdge { u, v, t }
        })
        .collect()
}

/// Groups a temporal stream into **update batches** for the batched
/// maintenance engine: each batch spans at most `span` time units and
/// holds at most `max_len` edges (whichever closes first). The stream is
/// sorted by timestamp first, so concatenating the batches reproduces
/// the arrival order.
///
/// This is the shape real ingestion pipelines deliver — a micro-batch
/// per flush interval — and what `OrderCore::insert_edges` is optimised
/// for.
pub fn batch_stream(
    edges: &[TemporalEdge],
    span: u64,
    max_len: usize,
) -> Vec<Vec<(VertexId, VertexId)>> {
    assert!(span > 0, "batch span must be positive");
    assert!(max_len > 0, "batch capacity must be positive");
    let mut sorted: Vec<TemporalEdge> = edges.to_vec();
    sorted.sort_by_key(|e| e.t);
    let mut batches = Vec::new();
    let mut current: Vec<(VertexId, VertexId)> = Vec::new();
    let mut window_start = sorted.first().map(|e| e.t).unwrap_or(0);
    for e in &sorted {
        if !current.is_empty()
            && (e.t >= window_start.saturating_add(span) || current.len() >= max_len)
        {
            batches.push(std::mem::take(&mut current));
            window_start = e.t;
        }
        if current.is_empty() {
            window_start = e.t;
        }
        current.push((e.u, e.v));
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// A sliding-window view over a temporal stream: maintains the graph of
/// edges whose timestamp lies within the last `window` time units,
/// yielding the inserts and expiries the caller must apply.
pub struct SlidingWindow {
    edges: Vec<TemporalEdge>,
    window: u64,
    /// next edge to admit
    head: usize,
    /// oldest edge still inside the window
    tail: usize,
}

/// One window transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOp {
    /// Edge enters the window.
    Admit(VertexId, VertexId),
    /// Edge falls out of the window.
    Expire(VertexId, VertexId),
}

impl SlidingWindow {
    /// A window of width `window` over a timestamp-sorted stream.
    pub fn new(mut edges: Vec<TemporalEdge>, window: u64) -> Self {
        edges.sort_by_key(|e| e.t);
        SlidingWindow {
            edges,
            window,
            head: 0,
            tail: 0,
        }
    }

    /// `true` once every edge has been admitted and expired.
    pub fn is_done(&self) -> bool {
        self.head == self.edges.len() && self.tail == self.edges.len()
    }

    /// Advances by one event: expiries are emitted before admissions so
    /// the live edge set always matches the window exactly.
    pub fn step(&mut self) -> Option<WindowOp> {
        // expire if the oldest live edge has left the window of the next
        // admission (or of the final timestamp once the stream is drained)
        let now = if self.head < self.edges.len() {
            self.edges[self.head].t
        } else {
            self.edges
                .last()
                .map(|e| e.t + self.window + 1)
                .unwrap_or(0)
        };
        if self.tail < self.head {
            let oldest = self.edges[self.tail];
            if oldest.t + self.window < now {
                self.tail += 1;
                return Some(WindowOp::Expire(oldest.u, oldest.v));
            }
        }
        if self.head < self.edges.len() {
            let e = self.edges[self.head];
            self.head += 1;
            return Some(WindowOp::Admit(e.u, e.v));
        }
        if self.tail < self.head {
            let oldest = self.edges[self.tail];
            self.tail += 1;
            return Some(WindowOp::Expire(oldest.u, oldest.v));
        }
        None
    }

    /// Number of edges currently inside the window.
    pub fn live(&self) -> usize {
        self.head - self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let g = barabasi_albert(200, 3, 1);
        let ts = timestamp_edges(&g, 5, 2);
        assert_eq!(ts.len(), g.num_edges());
        for w in ts.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn batch_stream_partitions_the_stream() {
        let g = barabasi_albert(150, 3, 5);
        let ts = timestamp_edges(&g, 4, 6);
        for (span, max_len) in [(1, usize::MAX), (10, usize::MAX), (u64::MAX, 7), (25, 16)] {
            let batches = batch_stream(&ts, span, max_len);
            let total: usize = batches.iter().map(Vec::len).sum();
            assert_eq!(total, ts.len(), "no edge lost or duplicated");
            assert!(batches.iter().all(|b| !b.is_empty()));
            assert!(batches.iter().all(|b| b.len() <= max_len));
            // concatenation preserves timestamp order
            let flat: Vec<(u32, u32)> = batches.concat();
            let mut sorted = ts.clone();
            sorted.sort_by_key(|e| e.t);
            let expect: Vec<(u32, u32)> = sorted.iter().map(|e| (e.u, e.v)).collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn window_admits_then_expires_everything() {
        let edges = vec![
            TemporalEdge { u: 0, v: 1, t: 1 },
            TemporalEdge { u: 1, v: 2, t: 5 },
            TemporalEdge { u: 2, v: 3, t: 20 },
        ];
        let mut w = SlidingWindow::new(edges, 10);
        let mut admits = 0;
        let mut expires = 0;
        let mut live_max = 0;
        while let Some(op) = w.step() {
            match op {
                WindowOp::Admit(..) => admits += 1,
                WindowOp::Expire(..) => expires += 1,
            }
            live_max = live_max.max(w.live());
        }
        assert!(w.is_done());
        assert_eq!(admits, 3);
        assert_eq!(expires, 3);
        // (0,1)@1 and (1,2)@5 overlap; (2,3)@20 forces both out first
        assert_eq!(live_max, 2);
    }

    #[test]
    fn window_stream_drives_maintenance_consistently() {
        // Integration: a windowed core maintainer must equal a from-scratch
        // decomposition of the live window at every step.
        use kcore_decomp::core_decomposition;
        let g = barabasi_albert(60, 2, 9);
        let ts = timestamp_edges(&g, 3, 4);
        let mut w = SlidingWindow::new(ts, 40);
        let mut live = DynamicGraph::with_vertices(60);
        let mut steps = 0;
        while let Some(op) = w.step() {
            match op {
                WindowOp::Admit(u, v) => live.insert_edge_unchecked(u, v),
                WindowOp::Expire(u, v) => live.remove_edge(u, v).unwrap(),
            }
            steps += 1;
            if steps % 17 == 0 {
                // spot-check structural sanity
                live.check_consistency().unwrap();
                let _ = core_decomposition(&live);
            }
        }
        assert_eq!(live.num_edges(), 0);
    }
}
