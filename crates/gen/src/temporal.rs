//! Timestamped edge streams: the bridge between the generators (which
//! emit edges in arrival order) and workloads that want explicit
//! timestamps — sliding-window maintenance, replay at a given rate, and
//! the Konect-style `u v t` files `kcore-graph::io` reads and writes.

use kcore_graph::io::TemporalEdge;
use kcore_graph::{edge_key, DynamicGraph, FxHashMap, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attaches synthetic timestamps to a generator's edge list, preserving
/// arrival order (edges of BA-family generators arrive vertex by vertex;
/// `DynamicGraph::edges()` iterates by vertex id, so sorting by
/// `max(u, v)` recovers arrival order up to intra-step ties).
///
/// Gaps between consecutive timestamps are drawn uniformly from
/// `1..=max_gap`, modelling bursty arrivals.
pub fn timestamp_edges(g: &DynamicGraph, max_gap: u64, seed: u64) -> Vec<TemporalEdge> {
    let mut edges = g.edge_vec();
    edges.sort_by_key(|&(u, v)| u.max(v));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0u64;
    edges
        .into_iter()
        .map(|(u, v)| {
            t += rng.gen_range(1..=max_gap.max(1));
            TemporalEdge { u, v, t }
        })
        .collect()
}

/// Groups a temporal stream into **update batches** for the batched
/// maintenance engine: each batch spans at most `span` time units and
/// holds at most `max_len` edges (whichever closes first). The stream is
/// sorted by timestamp first, so concatenating the batches reproduces
/// the arrival order.
///
/// This is the shape real ingestion pipelines deliver — a micro-batch
/// per flush interval — and what `OrderCore::insert_edges` is optimised
/// for.
pub fn batch_stream(
    edges: &[TemporalEdge],
    span: u64,
    max_len: usize,
) -> Vec<Vec<(VertexId, VertexId)>> {
    assert!(span > 0, "batch span must be positive");
    assert!(max_len > 0, "batch capacity must be positive");
    let mut sorted: Vec<TemporalEdge> = edges.to_vec();
    sorted.sort_by_key(|e| e.t);
    let mut batches = Vec::new();
    let mut current: Vec<(VertexId, VertexId)> = Vec::new();
    let mut window_start = sorted.first().map(|e| e.t).unwrap_or(0);
    for e in &sorted {
        if !current.is_empty()
            && (e.t >= window_start.saturating_add(span) || current.len() >= max_len)
        {
            batches.push(std::mem::take(&mut current));
            window_start = e.t;
        }
        if current.is_empty() {
            window_start = e.t;
        }
        current.push((e.u, e.v));
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// One micro-batch of a churn stream: `inserts` are applied first, then
/// `removes` (which may therefore include edges inserted by the same
/// batch — short-lived links are exactly what churn workloads exhibit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnBatch {
    /// Fresh edges, valid to insert (in order) after every prior batch.
    pub inserts: Vec<(VertexId, VertexId)>,
    /// Live edges, valid to remove (in order) after this batch's inserts.
    pub removes: Vec<(VertexId, VertexId)>,
}

impl ChurnBatch {
    /// Total edge operations in the batch.
    pub fn ops(&self) -> usize {
        self.inserts.len() + self.removes.len()
    }
}

/// Generates `batches` interleaved insert/remove micro-batches over the
/// live edge set that starts as `g`'s edges — the mixed workload the
/// batched maintenance engine sees from a real ingest loop.
///
/// Inserts are **degree-weighted** (each endpoint is drawn as a random
/// half-edge target of the *current* live set, i.e. with probability
/// proportional to its live degree — the preferential-attachment model
/// power-law streams follow) and always fresh; removes are **uniform**
/// over the live edges. Replaying the batches in order — all of a
/// batch's inserts, then its removes — is therefore always valid: no
/// duplicate insert, no missing removal (`UpdateStats::skipped` stays 0
/// through any engine's batch entry points).
///
/// `removes_per_batch` is capped by the live-edge count so the stream
/// never drains the graph; insert sampling gives up after a bounded
/// number of rejected draws (relevant only for near-complete graphs), so
/// batches may come up short rather than loop forever.
pub fn churn_stream(
    g: &DynamicGraph,
    batches: usize,
    inserts_per_batch: usize,
    removes_per_batch: usize,
    seed: u64,
) -> Vec<ChurnBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Live edge set: dense vector for uniform picks + index map for O(1)
    // membership tests and swap-removal.
    let mut live: Vec<(VertexId, VertexId)> = g.edge_vec();
    let mut index: FxHashMap<u64, usize> = FxHashMap::default();
    for (i, &(u, v)) in live.iter().enumerate() {
        index.insert(edge_key(u, v), i);
    }
    assert!(!live.is_empty(), "churn needs a non-empty base edge set");

    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = ChurnBatch::default();

        // Degree-weighted fresh inserts against the current live set.
        let mut rejections = 0usize;
        while batch.inserts.len() < inserts_per_batch {
            let pick = |rng: &mut SmallRng, live: &[(VertexId, VertexId)]| {
                let (a, b) = live[rng.gen_range(0..live.len())];
                if rng.gen_bool(0.5) {
                    a
                } else {
                    b
                }
            };
            let u = pick(&mut rng, &live);
            let v = pick(&mut rng, &live);
            let key = edge_key(u, v);
            if u == v || index.contains_key(&key) {
                rejections += 1;
                if rejections > 50 * (inserts_per_batch + 1) {
                    break; // graph (nearly) complete — stop short
                }
                continue;
            }
            index.insert(key, live.len());
            live.push((u, v));
            batch.inserts.push((u, v));
        }

        // Uniform removals of live edges (capped: never drain the set).
        let removes = removes_per_batch.min(live.len().saturating_sub(1));
        for _ in 0..removes {
            let at = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(at);
            index.remove(&edge_key(u, v));
            if at < live.len() {
                let (a, b) = live[at];
                index.insert(edge_key(a, b), at);
            }
            batch.removes.push((u, v));
        }

        out.push(batch);
    }
    out
}

/// A sliding-window view over a temporal stream: maintains the graph of
/// edges whose timestamp lies within the last `window` time units,
/// yielding the inserts and expiries the caller must apply.
pub struct SlidingWindow {
    edges: Vec<TemporalEdge>,
    window: u64,
    /// next edge to admit
    head: usize,
    /// oldest edge still inside the window
    tail: usize,
}

/// One window transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOp {
    /// Edge enters the window.
    Admit(VertexId, VertexId),
    /// Edge falls out of the window.
    Expire(VertexId, VertexId),
}

impl SlidingWindow {
    /// A window of width `window` over a timestamp-sorted stream.
    pub fn new(mut edges: Vec<TemporalEdge>, window: u64) -> Self {
        edges.sort_by_key(|e| e.t);
        SlidingWindow {
            edges,
            window,
            head: 0,
            tail: 0,
        }
    }

    /// `true` once every edge has been admitted and expired.
    pub fn is_done(&self) -> bool {
        self.head == self.edges.len() && self.tail == self.edges.len()
    }

    /// Advances by one event: expiries are emitted before admissions so
    /// the live edge set always matches the window exactly.
    pub fn step(&mut self) -> Option<WindowOp> {
        // expire if the oldest live edge has left the window of the next
        // admission (or of the final timestamp once the stream is drained)
        let now = if self.head < self.edges.len() {
            self.edges[self.head].t
        } else {
            self.edges
                .last()
                .map(|e| e.t + self.window + 1)
                .unwrap_or(0)
        };
        if self.tail < self.head {
            let oldest = self.edges[self.tail];
            if oldest.t + self.window < now {
                self.tail += 1;
                return Some(WindowOp::Expire(oldest.u, oldest.v));
            }
        }
        if self.head < self.edges.len() {
            let e = self.edges[self.head];
            self.head += 1;
            return Some(WindowOp::Admit(e.u, e.v));
        }
        if self.tail < self.head {
            let oldest = self.edges[self.tail];
            self.tail += 1;
            return Some(WindowOp::Expire(oldest.u, oldest.v));
        }
        None
    }

    /// Number of edges currently inside the window.
    pub fn live(&self) -> usize {
        self.head - self.tail
    }
}

/// A window is an iterator over its transitions — `for op in window`
/// drains admits and expiries in stream order, which is what lets it
/// feed an event-based consumer (e.g. a streaming ingest service)
/// directly.
impl Iterator for SlidingWindow {
    type Item = WindowOp;

    fn next(&mut self) -> Option<WindowOp> {
        self.step()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Every edge is admitted once and expired once.
        let remaining = (self.edges.len() - self.head) + (self.edges.len() - self.tail);
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn timestamps_are_strictly_increasing() {
        let g = barabasi_albert(200, 3, 1);
        let ts = timestamp_edges(&g, 5, 2);
        assert_eq!(ts.len(), g.num_edges());
        for w in ts.windows(2) {
            assert!(w[0].t < w[1].t);
        }
    }

    #[test]
    fn batch_stream_partitions_the_stream() {
        let g = barabasi_albert(150, 3, 5);
        let ts = timestamp_edges(&g, 4, 6);
        for (span, max_len) in [(1, usize::MAX), (10, usize::MAX), (u64::MAX, 7), (25, 16)] {
            let batches = batch_stream(&ts, span, max_len);
            let total: usize = batches.iter().map(Vec::len).sum();
            assert_eq!(total, ts.len(), "no edge lost or duplicated");
            assert!(batches.iter().all(|b| !b.is_empty()));
            assert!(batches.iter().all(|b| b.len() <= max_len));
            // concatenation preserves timestamp order
            let flat: Vec<(u32, u32)> = batches.concat();
            let mut sorted = ts.clone();
            sorted.sort_by_key(|e| e.t);
            let expect: Vec<(u32, u32)> = sorted.iter().map(|e| (e.u, e.v)).collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn churn_stream_replays_cleanly() {
        // Every insert fresh, every removal live — replay against a plain
        // edge-set model must never conflict.
        let g = barabasi_albert(120, 3, 11);
        let mut model = g.clone();
        let batches = churn_stream(&g, 25, 8, 6, 17);
        assert_eq!(batches.len(), 25);
        let mut ins_total = 0;
        let mut rem_total = 0;
        for b in &batches {
            for &(u, v) in &b.inserts {
                model.insert_edge(u, v).expect("churn insert must be fresh");
            }
            for &(u, v) in &b.removes {
                model.remove_edge(u, v).expect("churn removal must be live");
            }
            ins_total += b.inserts.len();
            rem_total += b.removes.len();
            assert_eq!(b.ops(), b.inserts.len() + b.removes.len());
        }
        assert_eq!(ins_total, 25 * 8, "base graph large enough to not stall");
        assert_eq!(rem_total, 25 * 6);
        assert_eq!(model.num_edges(), g.num_edges() + ins_total - rem_total);
        model.check_consistency().unwrap();
    }

    #[test]
    fn churn_stream_is_seeded_and_never_drains() {
        let g = barabasi_albert(40, 2, 3);
        assert_eq!(churn_stream(&g, 5, 4, 4, 9), churn_stream(&g, 5, 4, 4, 9));
        assert_ne!(churn_stream(&g, 5, 4, 4, 9), churn_stream(&g, 5, 4, 4, 10));
        // Removal-heavy stream: the cap keeps at least one live edge.
        let m = g.num_edges();
        let heavy = churn_stream(&g, 10, 0, m, 5);
        let mut live = m as i64;
        for b in &heavy {
            live += b.inserts.len() as i64 - b.removes.len() as i64;
            assert!(live >= 1);
        }
    }

    #[test]
    fn window_admits_then_expires_everything() {
        let edges = vec![
            TemporalEdge { u: 0, v: 1, t: 1 },
            TemporalEdge { u: 1, v: 2, t: 5 },
            TemporalEdge { u: 2, v: 3, t: 20 },
        ];
        let mut w = SlidingWindow::new(edges, 10);
        let mut admits = 0;
        let mut expires = 0;
        let mut live_max = 0;
        while let Some(op) = w.step() {
            match op {
                WindowOp::Admit(..) => admits += 1,
                WindowOp::Expire(..) => expires += 1,
            }
            live_max = live_max.max(w.live());
        }
        assert!(w.is_done());
        assert_eq!(admits, 3);
        assert_eq!(expires, 3);
        // (0,1)@1 and (1,2)@5 overlap; (2,3)@20 forces both out first
        assert_eq!(live_max, 2);
    }

    #[test]
    fn window_iterator_matches_step_and_size_hint() {
        let g = barabasi_albert(40, 2, 13);
        let ts = timestamp_edges(&g, 3, 7);
        let stepped: Vec<WindowOp> = {
            let mut w = SlidingWindow::new(ts.clone(), 12);
            std::iter::from_fn(move || w.step()).collect()
        };
        let mut w = SlidingWindow::new(ts, 12);
        assert_eq!(w.size_hint(), (stepped.len(), Some(stepped.len())));
        let iterated: Vec<WindowOp> = w.by_ref().collect();
        assert_eq!(iterated, stepped);
        assert!(w.is_done());
        assert_eq!(w.size_hint(), (0, Some(0)));
    }

    #[test]
    fn window_stream_drives_maintenance_consistently() {
        // Integration: a windowed core maintainer must equal a from-scratch
        // decomposition of the live window at every step.
        use kcore_decomp::core_decomposition;
        let g = barabasi_albert(60, 2, 9);
        let ts = timestamp_edges(&g, 3, 4);
        let mut w = SlidingWindow::new(ts, 40);
        let mut live = DynamicGraph::with_vertices(60);
        let mut steps = 0;
        while let Some(op) = w.step() {
            match op {
                WindowOp::Admit(u, v) => live.insert_edge_unchecked(u, v),
                WindowOp::Expire(u, v) => live.remove_edge(u, v).unwrap(),
            }
            steps += 1;
            if steps % 17 == 0 {
                // spot-check structural sanity
                live.check_consistency().unwrap();
                let _ = core_decomposition(&live);
            }
        }
        assert_eq!(live.num_edges(), 0);
    }
}
