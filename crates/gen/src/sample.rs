//! Edge and vertex samplers implementing the experiment protocols of
//! Section VII (update streams, Fig 11 scalability subgraphs).

use kcore_graph::{DynamicGraph, FxHashSet, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniformly samples `count` distinct existing edges.
pub fn sample_edges(g: &DynamicGraph, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut edges = g.edge_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    let count = count.min(edges.len());
    edges.partial_shuffle(&mut rng, count);
    edges.truncate(count);
    edges
}

/// Uniformly samples `count` distinct vertices.
pub fn sample_vertices(g: &DynamicGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = g.vertices().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let count = count.min(vs.len());
    vs.partial_shuffle(&mut rng, count);
    vs.truncate(count);
    vs
}

/// The Fig 11a protocol: sample a fraction `ratio` of the vertices and
/// take the induced subgraph (vertex ids are preserved; non-sampled
/// vertices become isolated).
pub fn induced_vertex_sample(g: &DynamicGraph, ratio: f64, seed: u64) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&ratio));
    let n = g.num_vertices();
    let keep_n = (n as f64 * ratio) as usize;
    let mut keep = vec![false; n];
    for v in sample_vertices(g, keep_n, seed) {
        keep[v as usize] = true;
    }
    let mut sub = DynamicGraph::with_vertices(n);
    for (u, v) in g.edges() {
        if keep[u as usize] && keep[v as usize] {
            sub.insert_edge_unchecked(u, v);
        }
    }
    sub
}

/// The Fig 11c protocol: sample a fraction `ratio` of the edges, keeping
/// their incident vertices.
pub fn sample_edge_subgraph(g: &DynamicGraph, ratio: f64, seed: u64) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&ratio));
    let m = g.num_edges();
    let take = (m as f64 * ratio) as usize;
    let edges = sample_edges(g, take, seed);
    let mut sub = DynamicGraph::with_vertices(g.num_vertices());
    for (u, v) in edges {
        sub.insert_edge_unchecked(u, v);
    }
    sub
}

/// A reusable mixed-workload sampler: yields insert/remove operations
/// against a live graph, keeping track of which edges currently exist
/// (used by the Fig 12 stability experiment with removal probability `p`).
pub struct EdgeSampler {
    rng: SmallRng,
    /// Edges currently present (insertable pool drained as we go).
    pool: Vec<(VertexId, VertexId)>,
    /// Edges inserted so far (candidates for removal).
    inserted: Vec<(VertexId, VertexId)>,
    seen: FxHashSet<u64>,
}

/// One operation from the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert this edge.
    Insert(VertexId, VertexId),
    /// Remove this edge.
    Remove(VertexId, VertexId),
}

impl EdgeSampler {
    /// A sampler that replays `pool` (insertions) and, with probability
    /// `p` after each insertion, removes a random previously inserted
    /// edge.
    pub fn new(pool: Vec<(VertexId, VertexId)>, seed: u64) -> Self {
        EdgeSampler {
            rng: SmallRng::seed_from_u64(seed),
            pool,
            inserted: Vec::new(),
            seen: FxHashSet::default(),
        }
    }

    /// Next insertion (None when the pool is drained).
    pub fn next_insert(&mut self) -> Option<Op> {
        let e = self.pool.pop()?;
        self.inserted.push(e);
        self.seen.insert(kcore_graph::edge_key(e.0, e.1));
        Some(Op::Insert(e.0, e.1))
    }

    /// With probability `p`, a removal of a random previously inserted
    /// edge.
    pub fn maybe_remove(&mut self, p: f64) -> Option<Op> {
        if self.inserted.is_empty() || !self.rng.gen_bool(p) {
            return None;
        }
        let idx = self.rng.gen_range(0..self.inserted.len());
        let e = self.inserted.swap_remove(idx);
        self.seen.remove(&kcore_graph::edge_key(e.0, e.1));
        Some(Op::Remove(e.0, e.1))
    }

    /// Remaining pool length.
    pub fn remaining(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::fixtures;

    #[test]
    fn edge_samples_are_distinct_and_present() {
        let g = fixtures::clique(10); // 45 edges
        let s = sample_edges(&g, 20, 3);
        assert_eq!(s.len(), 20);
        let mut keys: Vec<u64> = s
            .iter()
            .map(|&(u, v)| kcore_graph::edge_key(u, v))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 20);
        for (u, v) in s {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn sample_more_than_available_clamps() {
        let g = fixtures::triangle();
        assert_eq!(sample_edges(&g, 50, 1).len(), 3);
        assert_eq!(sample_vertices(&g, 50, 1).len(), 3);
    }

    #[test]
    fn induced_sample_keeps_only_sampled_pairs() {
        let g = fixtures::clique(20);
        let sub = induced_vertex_sample(&g, 0.5, 7);
        let kept: Vec<_> = sub.vertices().filter(|&v| sub.degree(v) > 0).collect();
        assert_eq!(kept.len(), 10);
        assert_eq!(sub.num_edges(), 10 * 9 / 2);
    }

    #[test]
    fn edge_subgraph_ratio() {
        let g = fixtures::clique(30); // 435 edges
        let sub = sample_edge_subgraph(&g, 0.4, 11);
        assert_eq!(sub.num_edges(), 174);
        sub.check_consistency().unwrap();
    }

    #[test]
    fn sampler_tracks_inserted_edges() {
        let mut s = EdgeSampler::new(vec![(0, 1), (1, 2), (2, 3)], 5);
        let mut inserts = 0;
        while let Some(Op::Insert(..)) = s.next_insert() {
            inserts += 1;
        }
        assert_eq!(inserts, 3);
        assert_eq!(s.remaining(), 0);
        // p = 1.0 must produce removals until the inserted list drains
        let mut removals = 0;
        while let Some(Op::Remove(..)) = s.maybe_remove(1.0) {
            removals += 1;
        }
        assert_eq!(removals, 3);
        assert!(s.maybe_remove(1.0).is_none());
    }

    #[test]
    fn zero_probability_never_removes() {
        let mut s = EdgeSampler::new(vec![(0, 1)], 5);
        s.next_insert();
        for _ in 0..100 {
            assert!(s.maybe_remove(0.0).is_none());
        }
    }
}
