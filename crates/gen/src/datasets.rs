//! The dataset registry: eleven synthetic stand-ins for the paper's
//! Table I graphs, matched by structural family and (scaled) size.
//!
//! | name        | paper original            | family             | generator |
//! |-------------|---------------------------|--------------------|-----------|
//! | facebook    | Facebook (Konect)         | temporal social    | Holme–Kim |
//! | youtube     | Youtube (Konect)          | temporal social    | BA, sparse|
//! | dblp        | DBLP (Konect)             | temporal collab    | paper-clique model |
//! | patents     | Patents (SNAP)            | citation           | BA, sparse|
//! | orkut       | Orkut (SNAP)              | dense social       | Holme–Kim, dense |
//! | livejournal | LiveJournal (SNAP)        | social             | Holme–Kim |
//! | gowalla     | Gowalla (SNAP)            | location social    | Holme–Kim |
//! | ca          | CA road network (SNAP)    | road               | grid + diagonals |
//! | pokec       | Pokec (SNAP)              | social             | Holme–Kim |
//! | berkstan    | BerkStan (SNAP)           | web                | R-MAT |
//! | google      | Google web (SNAP)         | web                | R-MAT |
//!
//! Sizes default to ≈1/50 of the originals (tens of thousands of vertices)
//! so the full experiment suite runs on a laptop; `Scale` adjusts that.

use crate::generators::*;
use crate::sample::sample_edges;
use kcore_graph::{DynamicGraph, VertexId};

/// Size multiplier for the whole registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~1/10 of the default sizes: unit tests, smoke runs.
    Tiny,
    /// ~1/4 of the default sizes: quick experiment passes.
    Small,
    /// The default: tens of thousands of vertices per graph.
    Medium,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.1,
            Scale::Small => 0.25,
            Scale::Medium => 1.0,
        }
    }

    /// Parses `tiny` / `small` / `medium` (CLI flag support).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// Generator family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Family {
    /// Holme–Kim clustered power law with a planted dense nucleus of
    /// `nucleus` vertices (real social graphs owe their deep max-k to a
    /// small dense community; plain BA caps the degeneracy at `m_per`).
    Social {
        m_per: usize,
        p_triangle: f64,
        nucleus: usize,
    },
    /// R-MAT web graph: edges ≈ `avg_deg · n / 2`.
    Web { avg_deg: f64 },
    /// Collaboration clique model: `papers ≈ papers_per_author · n`.
    Collaboration { papers_per_author: f64 },
    /// Road grid: `p_diag` diagonal density.
    Road { p_diag: f64 },
}

/// Static description of one registry entry.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Registry key (lowercase).
    pub name: &'static str,
    /// The Table I graph this stands in for.
    pub stands_for: &'static str,
    /// Vertex count at `Scale::Medium`.
    pub base_n: usize,
    /// Whether the original is a temporal (timestamped) graph — these use
    /// the *latest* edges as the update stream, like the paper.
    pub temporal: bool,
    family: Family,
    seed: u64,
}

/// All eleven registry entries, in the paper's Table I order.
pub const DATASETS: [DatasetSpec; 11] = [
    DatasetSpec {
        name: "facebook",
        stands_for: "Facebook (63.7k / 817k, avg 25.6, max k 52)",
        base_n: 16_000,
        temporal: true,
        family: Family::Social {
            m_per: 16,
            p_triangle: 0.5,
            nucleus: 16,
        },
        seed: 0xFACE,
    },
    DatasetSpec {
        name: "youtube",
        stands_for: "Youtube (3.2M / 9.4M, avg 5.8, max k 88)",
        base_n: 64_000,
        temporal: true,
        family: Family::Social {
            m_per: 4,
            p_triangle: 0.25,
            nucleus: 18,
        },
        seed: 0x70BE,
    },
    DatasetSpec {
        name: "dblp",
        stands_for: "DBLP (1.3M / 5.4M, avg 8.2, max k 118)",
        base_n: 40_000,
        temporal: true,
        family: Family::Collaboration {
            papers_per_author: 0.9,
        },
        seed: 0xDB17,
    },
    DatasetSpec {
        name: "patents",
        stands_for: "Patents (3.8M / 16.5M, avg 8.75, max k 64)",
        base_n: 76_000,
        temporal: false,
        family: Family::Social {
            m_per: 5,
            p_triangle: 0.35,
            nucleus: 12,
        },
        seed: 0x9A7E,
    },
    DatasetSpec {
        name: "orkut",
        stands_for: "Orkut (3.1M / 117M, avg 76.3, max k 253)",
        base_n: 24_000,
        temporal: false,
        family: Family::Social {
            m_per: 46,
            p_triangle: 0.45,
            nucleus: 42,
        },
        seed: 0x0847,
    },
    DatasetSpec {
        name: "livejournal",
        stands_for: "LiveJournal (4.8M / 42.9M, avg 17.7, max k 372)",
        base_n: 60_000,
        temporal: false,
        family: Family::Social {
            m_per: 11,
            p_triangle: 0.55,
            nucleus: 26,
        },
        seed: 0x111E,
    },
    DatasetSpec {
        name: "gowalla",
        stands_for: "Gowalla (197k / 950k, avg 9.7, max k 51)",
        base_n: 20_000,
        temporal: false,
        family: Family::Social {
            m_per: 6,
            p_triangle: 0.5,
            nucleus: 12,
        },
        seed: 0x60A1,
    },
    DatasetSpec {
        name: "ca",
        stands_for: "CA road network (2.0M / 2.8M, avg 2.8, max k 3)",
        base_n: 78_400,
        temporal: false,
        family: Family::Road { p_diag: 0.10 },
        seed: 0xCA,
    },
    DatasetSpec {
        name: "pokec",
        stands_for: "Pokec (1.6M / 22.3M, avg 27.3, max k 47)",
        base_n: 40_000,
        temporal: false,
        family: Family::Social {
            m_per: 17,
            p_triangle: 0.3,
            nucleus: 16,
        },
        seed: 0x90CE,
    },
    DatasetSpec {
        name: "berkstan",
        stands_for: "BerkStan web (685k / 6.6M, avg 19.4, max k 201)",
        base_n: 32_768,
        temporal: false,
        family: Family::Web { avg_deg: 19.4 },
        seed: 0xBE8C,
    },
    DatasetSpec {
        name: "google",
        stands_for: "Google web (876k / 4.3M, avg 9.9, max k 44)",
        base_n: 32_768,
        temporal: false,
        family: Family::Web { avg_deg: 9.9 },
        seed: 0x6006,
    },
];

/// A generated dataset plus its update stream.
pub struct Dataset {
    /// Registry entry.
    pub spec: DatasetSpec,
    /// Base graph **without** the stream edges.
    pub base: DynamicGraph,
    /// Edges to insert (then remove) one by one — the paper's sampled
    /// 100,000. For temporal datasets these are the latest edges of the
    /// generative order; otherwise a uniform sample.
    pub stream: Vec<(VertexId, VertexId)>,
}

impl Dataset {
    /// The full graph (base + stream), e.g. for index-creation timing.
    pub fn full_graph(&self) -> DynamicGraph {
        let mut g = self.base.clone();
        for &(u, v) in &self.stream {
            g.insert_edge_unchecked(u, v);
        }
        g
    }
}

/// Looks a spec up by name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name == name)
}

fn generate_full(spec: &DatasetSpec, scale: Scale) -> DynamicGraph {
    let n = ((spec.base_n as f64 * scale.factor()) as usize).max(256);
    match spec.family {
        Family::Social {
            m_per,
            p_triangle,
            nucleus,
        } => {
            let mut g = heterogeneous_social(n, m_per, p_triangle, spec.seed);
            plant_nucleus(&mut g, nucleus, spec.seed ^ 0x7C11);
            g
        }
        Family::Web { avg_deg } => {
            // round n up to a power of two for R-MAT
            let scale_bits = (n as f64).log2().ceil() as u32;
            let m = (avg_deg * n as f64 / 2.0) as usize;
            rmat(scale_bits, m, 0.57, 0.19, 0.19, spec.seed)
        }
        Family::Collaboration { papers_per_author } => {
            collaboration_graph((n as f64 * papers_per_author) as usize, n, spec.seed)
        }
        Family::Road { p_diag } => {
            let side = (n as f64).sqrt() as usize;
            grid_road_network(side, side, p_diag, spec.seed)
        }
    }
}

/// Plants a clique over `size` random vertices — the dense nucleus that
/// gives social graphs their deep innermost cores.
fn plant_nucleus(g: &mut DynamicGraph, size: usize, seed: u64) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut vs: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    let (chosen, _) = vs.partial_shuffle(&mut rng, size);
    for i in 0..chosen.len() {
        for j in (i + 1)..chosen.len() {
            if !g.has_edge(chosen[i], chosen[j]) {
                g.insert_edge_unchecked(chosen[i], chosen[j]);
            }
        }
    }
}

/// Generates a dataset and splits off an update stream of `stream_len`
/// edges (clamped to 20% of the graph).
///
/// Protocol per the paper (§VII): temporal graphs contribute their
/// *latest* edges; static graphs a uniform random sample. The stream
/// edges are withdrawn from the base graph so that "insert the stream,
/// then remove it" starts from a graph that has never seen them.
pub fn load_dataset(name: &str, scale: Scale, stream_len: usize) -> Dataset {
    let spec = *spec(name).unwrap_or_else(|| panic!("unknown dataset {name:?}"));
    let full = generate_full(&spec, scale);
    let m = full.num_edges();
    let take = stream_len.min(m / 5);
    let stream: Vec<(VertexId, VertexId)> = if spec.temporal {
        // Generators emit edges in temporal order; take the latest.
        let edges = ordered_edges(&full, spec.seed);
        edges[edges.len() - take..].to_vec()
    } else {
        sample_edges(&full, take, spec.seed ^ 0x5EED)
    };
    let mut base = full;
    for &(u, v) in &stream {
        base.remove_edge(u, v).expect("stream edge present");
    }
    Dataset { spec, base, stream }
}

/// Reconstructs a generation-ordered edge list. The generators insert
/// edges in arrival order, but `DynamicGraph` does not record it; rerun
/// the generator recording insertions.
///
/// To keep this cheap we exploit that `edges()` iterates by vertex id and
/// BA-family vertices arrive in id order: sorting by `max(u, v)` recovers
/// arrival order up to ties, which is temporal enough for "latest edges".
fn ordered_edges(g: &DynamicGraph, _seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut edges = g.edge_vec();
    edges.sort_by_key(|&(u, v)| u.max(v));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_decomp::{core_decomposition, max_core};

    #[test]
    fn registry_is_complete_and_named_uniquely() {
        assert_eq!(DATASETS.len(), 11);
        let mut names: Vec<_> = DATASETS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        assert!(spec("orkut").is_some());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn tiny_datasets_generate_and_split() {
        for d in &DATASETS {
            let ds = load_dataset(d.name, Scale::Tiny, 500);
            assert!(ds.base.num_vertices() >= 256, "{}", d.name);
            assert!(!ds.stream.is_empty(), "{}", d.name);
            // stream edges are absent from the base
            for &(u, v) in &ds.stream {
                assert!(!ds.base.has_edge(u, v), "{}: ({u},{v})", d.name);
            }
            ds.base.check_consistency().unwrap();
            // and re-inserting them restores the full edge count
            let full = ds.full_graph();
            assert_eq!(full.num_edges(), ds.base.num_edges() + ds.stream.len());
        }
    }

    #[test]
    fn families_have_expected_core_depth() {
        let road = load_dataset("ca", Scale::Tiny, 100).full_graph();
        let k_road = max_core(&core_decomposition(&road));
        assert!(k_road <= 3, "road max k = {k_road}");

        let orkut = load_dataset("orkut", Scale::Tiny, 100).full_graph();
        let k_orkut = max_core(&core_decomposition(&orkut));
        assert!(k_orkut >= 30, "orkut-like max k = {k_orkut}");

        let dblp = load_dataset("dblp", Scale::Tiny, 100).full_graph();
        let k_dblp = max_core(&core_decomposition(&dblp));
        assert!(k_dblp >= 7, "dblp-like max k = {k_dblp}");
    }

    #[test]
    fn scales_are_ordered() {
        let t = load_dataset("gowalla", Scale::Tiny, 10).full_graph();
        let s = load_dataset("gowalla", Scale::Small, 10).full_graph();
        assert!(t.num_vertices() < s.num_vertices());
        assert_eq!(Scale::parse("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load_dataset("google", Scale::Tiny, 50);
        let b = load_dataset("google", Scale::Tiny, 50);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.base.num_edges(), b.base.num_edges());
    }
}
