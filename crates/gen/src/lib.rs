//! # kcore-gen
//!
//! Workload substrate: seeded synthetic graph generators, a registry of
//! eleven datasets standing in for the paper's real graphs (Table I), and
//! the edge/vertex samplers used by the experiment protocol.
//!
//! The paper evaluates on SNAP/Konect dumps that are not redistributable
//! here; each is replaced by a generator from the same *structural family*
//! (see `DESIGN.md` §3). What the algorithms are sensitive to — degree
//! tails, core-number distribution, subcore/pure-core size distribution —
//! is a property of the family, which is what makes the relative results
//! (who wins, by what factor, where Trav-h crosses over) transfer.
//!
//! Everything is deterministic given a seed.

pub mod datasets;
pub mod generators;
pub mod sample;
pub mod temporal;

pub use datasets::{load_dataset, Dataset, DatasetSpec, Scale, DATASETS};
pub use generators::{
    barabasi_albert, collaboration_graph, erdos_renyi_gnm, forest_fire, grid_road_network,
    heterogeneous_social, holme_kim, rmat, watts_strogatz,
};
pub use sample::{induced_vertex_sample, sample_edge_subgraph, sample_edges, EdgeSampler};
pub use temporal::{
    batch_stream, churn_stream, timestamp_edges, ChurnBatch, SlidingWindow, WindowOp,
};
