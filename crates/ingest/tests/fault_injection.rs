//! Fault-injection integration tests: the kill-at-every-failpoint sweep
//! and the supervised self-healing writer, all under the scripted clock
//! and the scripted [`StorageHandle`] — zero wall-clock sleeps, zero
//! nondeterminism, including on the 1-CPU CI container.
//!
//! The sweep is profile-then-kill: one clean run over instrumented
//! storage records how many operations of each class the workload
//! performs, then one run per (class, nth) crashes storage at exactly
//! that operation and asserts recovery is bit-identical to the
//! decomposition oracle on the prefix the [`RecoveryReport`] claims
//! durable — never a silently wrong state.

use kcore_decomp::core_decomposition;
use kcore_graph::DynamicGraph;
use kcore_ingest::sources::apply_events;
use kcore_ingest::{
    recover, DurabilityConfig, FaultKind, FaultPlan, FlakyEngine, GraphEvent, IngestConfig,
    IngestService, OpClass, RecoveryPolicy, RetryBudget, ServiceHealth, StorageHandle,
};
use kcore_maint::{PlannedCore, PlannerConfig};
use std::path::PathBuf;

const N: usize = 16;
const SEED: u64 = 7;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("kcore_ingest_faults_it")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 40 deterministic mixed events over an empty 16-vertex graph
/// (duplicates and no-op removals included — both sides use the shared
/// skip-semantics model).
fn sweep_events() -> Vec<GraphEvent> {
    let mut ev = Vec::new();
    for i in 0u32..40 {
        if i % 7 == 6 {
            let u = (i * 3) % N as u32;
            ev.push(GraphEvent::EdgeRemoved(u, (u + 1) % N as u32));
        } else {
            let u = (i * 7 + 3) % N as u32;
            let v = (i * 5 + 1) % N as u32;
            let v = if u == v { (v + 1) % N as u32 } else { v };
            ev.push(GraphEvent::EdgeInserted(u, v));
        }
    }
    ev
}

fn oracle(prefix: &[GraphEvent]) -> Vec<u32> {
    core_decomposition(&apply_events(&DynamicGraph::with_vertices(N), prefix))
}

/// Runs the sweep workload over `storage`: durable scripted service,
/// fsync on, periodic snapshots, 10 size-flushes, then an *unclean*
/// abort (the storage crash is the kill; aborting skips the graceful
/// final persist a real kill would also lose).
fn run_sweep_workload(dir: &std::path::Path, storage: StorageHandle) {
    let mut d = DurabilityConfig::in_dir(dir)
        .snapshot_every(3)
        .generations(2)
        .with_storage(storage);
    d.fsync = true;
    let cfg = IngestConfig::scripted().max_batch(4).durable(d);
    let svc = match IngestService::spawn_planned(DynamicGraph::with_vertices(N), SEED, cfg) {
        Ok(svc) => svc,
        // The crash fired during sink open or checkpoint zero: the
        // "service never started" outcome, also covered by the sweep.
        Err(_) => return,
    };
    for e in sweep_events() {
        svc.submit(e).unwrap();
    }
    svc.flush().unwrap();
    svc.abort();
}

#[test]
fn fault_kill_at_every_failpoint_recovers_reported_prefix() {
    // Profile pass: no faults, but instrumented storage counts every
    // operation the deterministic workload performs, per class.
    let profile = StorageHandle::faulty(FaultPlan::new());
    run_sweep_workload(&tmpdir("sweep_profile"), profile.clone());
    let counts = profile.op_counts();
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    assert!(total >= 30, "workload too small to be a meaningful sweep");
    assert!(
        counts.iter().all(|&(c, n)| n > 0 || c == OpClass::Truncate),
        "profile left an op class unexercised: {counts:?}"
    );

    let events = sweep_events();
    for &(class, count) in &counts {
        // Fault indices are 0-based: `nth` is the value of the class
        // counter when the operation is attempted.
        for nth in 0..count {
            let dir = tmpdir(&format!("sweep_{class:?}_{nth}"));
            let storage = StorageHandle::faulty(FaultPlan::new().crash(class, nth));
            run_sweep_workload(&dir, storage.clone());
            assert!(
                storage.crashed(),
                "crash at ({class:?}, {nth}) never fired — profile out of sync"
            );
            // Recover with plain storage, exactly as a restarted
            // process would.
            let rd = DurabilityConfig::in_dir(&dir).generations(2);
            match recover(&rd, SEED, PlannerConfig::default(), 8) {
                Ok(rec) => {
                    let durable = rec.report.durable_ops as usize;
                    assert_eq!(
                        rec.next_seq, rec.report.durable_ops,
                        "({class:?}, {nth}): report and resume seq disagree"
                    );
                    assert!(durable <= events.len());
                    assert_eq!(
                        rec.engine.cores(),
                        &oracle(&events[..durable])[..],
                        "({class:?}, {nth}): recovered state is not the oracle on the \
                         reported durable prefix (rung {})",
                        rec.report.rung
                    );
                }
                Err(e) => {
                    // Only legitimate when the kill predates any
                    // durable journal bytes at all.
                    let len = std::fs::metadata(&rd.journal_path).map(|m| m.len()).ok();
                    assert!(
                        len.is_none() || len == Some(0),
                        "({class:?}, {nth}): recovery failed ({e}) despite a journal \
                         of {len:?} bytes on disk"
                    );
                }
            }
        }
    }
}

/// 16 inserts over an empty 12-vertex graph, flushed 4 at a time.
fn heal_events() -> Vec<GraphEvent> {
    (0u32..16)
        .map(|i| {
            let u = i % 11;
            GraphEvent::EdgeInserted(u, (u + 1 + (i / 11)) % 12)
        })
        .collect()
}

fn heal_oracle(events: &[GraphEvent], skip: std::ops::Range<usize>) -> Vec<u32> {
    let kept: Vec<GraphEvent> = events[..skip.start]
        .iter()
        .chain(&events[skip.end..])
        .copied()
        .collect();
    core_decomposition(&apply_events(&DynamicGraph::with_vertices(12), &kept))
}

#[test]
fn fault_supervised_writer_self_heals_after_engine_panic() {
    let dir = tmpdir("self_heal");
    let events = heal_events();
    let inner =
        PlannedCore::with_config(DynamicGraph::with_vertices(12), 9, PlannerConfig::default());
    // Third batch entry point (0-based index 2) panics mid-batch.
    let engine = FlakyEngine::new(inner, &[2]);
    let probe = engine.probe();
    let cfg = IngestConfig::scripted()
        .max_batch(4)
        .durable(DurabilityConfig::in_dir(&dir))
        .self_healing(RecoveryPolicy {
            max_attempts: 3,
            backoff_base_ns: 100,
            backoff_factor: 2,
            seed: 9,
            replay_batch: 4,
            healthy_after: 1,
        });
    let svc = IngestService::spawn_with_engine(engine, 0, cfg).unwrap();
    let snaps = svc.subscribe().unwrap();

    // Two clean flushes, then the poisoned one: the panic is caught, the
    // supervisor rebuilds from journal + checkpoint, and readers never
    // see a torn epoch.
    for e in &events[..12] {
        svc.submit(*e).unwrap();
    }
    let s1 = snaps.recv().unwrap();
    let s2 = snaps.recv().unwrap();
    assert_eq!((s1.epoch, s1.ops), (1, 4));
    assert_eq!((s2.epoch, s2.ops), (2, 8));
    // Recovery publishes its own epoch: monotone epoch, regressed ops —
    // the lost batch is visible in `ops`, never as corrupt state.
    let s3 = snaps.recv().unwrap();
    assert_eq!((s3.epoch, s3.ops), (3, 8));
    assert_eq!(
        s3.cores.to_vec(),
        heal_oracle(&events, 8..16),
        "recovered snapshot must equal the oracle on the surviving prefix"
    );

    // The healed service keeps ingesting on the same journal.
    for e in &events[12..] {
        svc.submit(*e).unwrap();
    }
    let s4 = snaps.recv().unwrap();
    assert_eq!((s4.epoch, s4.ops), (4, 12));
    svc.flush().unwrap();
    assert_eq!(
        svc.health(),
        ServiceHealth::Healthy,
        "one clean flush heals"
    );

    // The registry's recovery-rung counters must tell the same story as
    // the report: one panic, one recovery, taken on the primary rung
    // (clean journal — no tail damage, no generation fallback).
    let metrics = svc.metrics().expect("observability is on by default");
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("ingest_engine_panics_total"), Some(1));
    assert_eq!(snap.counter("ingest_recoveries_total"), Some(1));
    assert_eq!(snap.counter("ingest_recovery_retries_total"), Some(0));
    assert_eq!(snap.counter("ingest_recovery_failures_total"), Some(0));
    assert_eq!(snap.counter("ingest_recovery_rung_primary_total"), Some(1));
    for rung in [
        "ingest_recovery_rung_truncated_tail_total",
        "ingest_recovery_rung_older_generation_total",
        "ingest_recovery_rung_snapshot_only_total",
        "ingest_recovery_rung_genesis_replay_total",
    ] {
        assert_eq!(snap.counter(rung), Some(0), "rung {rung} must stay 0");
    }
    let rec_hist = snap.histogram("ingest_recovery_ns").unwrap();
    assert_eq!(rec_hist.count, 1, "one recovery timing sample");
    assert_eq!(snap.counter("ingest_events_lost_total"), Some(4));
    assert_eq!(snap.counter("ingest_events_total"), Some(16));
    assert_eq!(
        snap.gauge("ingest_health"),
        Some(ServiceHealth::Healthy as u8 as f64)
    );

    let (report, engine) = svc.shutdown();
    assert_eq!(report.engine_panics, 1);
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.recovery_retries, 0);
    assert_eq!(report.recovery_failures, 0);
    assert_eq!(report.events_lost, 4);
    assert_eq!(report.events, 16);
    assert_eq!(report.final_health, ServiceHealth::Healthy);
    assert_eq!(probe.batches(), 4);
    assert_eq!(probe.panics_left(), 0);
    assert_eq!(engine.inner().cores(), &heal_oracle(&events, 8..12)[..]);

    // And the journal survives a *subsequent* plain recovery: the
    // self-heal left durable state consistent, not just in-memory state.
    let rec = recover(
        &DurabilityConfig::in_dir(&dir),
        9,
        PlannerConfig::default(),
        8,
    )
    .unwrap();
    assert_eq!(rec.engine.cores(), &heal_oracle(&events, 8..12)[..]);
    assert_eq!(rec.report.durable_ops, 12);
    // Same ladder, same rung: the counter the writer bumped corresponds
    // to the rung a plain recovery reports for this journal.
    assert_eq!(rec.report.rung_metric(), "primary");
}

#[test]
fn fault_recovery_backoff_is_scripted_and_bounded() {
    let dir = tmpdir("backoff");
    let events = heal_events();
    // Read op 0 is the spawn-time sink open; ops 1 and 2 are the journal
    // reads of recovery attempts 1 and 2 — both fail, attempt 3 is clean.
    let storage = StorageHandle::faulty(
        FaultPlan::new()
            .fault(OpClass::Read, 1, FaultKind::IoError)
            .fault(OpClass::Read, 2, FaultKind::IoError),
    );
    let inner =
        PlannedCore::with_config(DynamicGraph::with_vertices(12), 9, PlannerConfig::default());
    let engine = FlakyEngine::new(inner, &[1]); // second batch panics
    let cfg = IngestConfig::scripted()
        .max_batch(4)
        .durable(DurabilityConfig::in_dir(&dir).with_storage(storage.clone()))
        .self_healing(RecoveryPolicy {
            max_attempts: 3,
            backoff_base_ns: 1_000,
            backoff_factor: 2,
            seed: 9,
            replay_batch: 4,
            healthy_after: 1,
        });
    let svc = IngestService::spawn_with_engine(engine, 0, cfg).unwrap();

    // Flush 1 clean; flush 2 panics at scripted t=0. Attempt 1 fires
    // immediately and fails (faulted read) → next attempt due at t=1000.
    for e in &events[..8] {
        svc.submit(*e).unwrap();
    }
    svc.flush().unwrap();
    assert_eq!(svc.health(), ServiceHealth::Recovering);

    // One tick *below* the backoff deadline must not retry…
    svc.tick(999).unwrap();
    svc.flush().unwrap();
    assert_eq!(svc.health(), ServiceHealth::Recovering);
    assert_eq!(storage.fired_faults().len(), 1);

    // …the deadline tick retries (and fails again: due moves to t=3000
    // under the doubled delay)…
    svc.tick(1_000).unwrap();
    svc.flush().unwrap();
    assert_eq!(svc.health(), ServiceHealth::Recovering);
    assert_eq!(storage.fired_faults().len(), 2);
    svc.tick(2_999).unwrap();
    svc.flush().unwrap();
    assert_eq!(svc.health(), ServiceHealth::Recovering);

    // …and the third attempt (clean storage from here) succeeds.
    svc.tick(3_000).unwrap();
    svc.flush().unwrap();
    assert_ne!(svc.health(), ServiceHealth::Recovering);
    assert_ne!(svc.health(), ServiceHealth::Failed);

    for e in &events[8..12] {
        svc.submit(*e).unwrap();
    }
    svc.flush().unwrap();
    assert_eq!(svc.health(), ServiceHealth::Healthy);

    let (report, engine) = svc.shutdown();
    assert_eq!(report.engine_panics, 1);
    assert_eq!(report.recovery_retries, 2);
    assert_eq!(report.recoveries, 1);
    assert_eq!(report.recovery_failures, 0);
    assert_eq!(report.events_lost, 4);
    assert_eq!(report.final_health, ServiceHealth::Healthy);
    assert_eq!(
        engine.inner().cores(),
        &heal_oracle(&events[..12], 4..8)[..]
    );
}

#[test]
fn fault_submit_with_retry_backs_off_deterministically() {
    let svc = IngestService::spawn_planned(
        DynamicGraph::with_vertices(8),
        3,
        IngestConfig::scripted().queue_capacity(2).max_batch(64),
    )
    .unwrap();
    // Park the writer so the bounded queue genuinely fills.
    let pause = svc.pause().unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 1)).unwrap();
    svc.submit(GraphEvent::EdgeInserted(1, 2)).unwrap();

    // Budget exhausted while parked: the full backoff schedule runs
    // (base 100, doubling, capped at 350) and the submit still reports
    // honest backpressure.
    let mut delays = Vec::new();
    let budget = RetryBudget {
        attempts: 5,
        base_delay_ns: 100,
        factor: 2,
        max_delay_ns: 350,
    };
    let err = svc.submit_with_retry_by(GraphEvent::EdgeInserted(2, 3), budget, |ns| {
        delays.push(ns);
    });
    assert!(matches!(err, Err(kcore_ingest::IngestError::QueueFull)));
    assert_eq!(delays, vec![100, 200, 350, 350, 350]);

    // Resume and drain; with room available the helper succeeds without
    // a single wait.
    drop(pause);
    svc.flush().unwrap();
    let retries = svc
        .submit_with_retry_by(GraphEvent::EdgeInserted(2, 3), budget, |_| {
            panic!("no wait expected with a drained queue")
        })
        .unwrap();
    assert_eq!(retries, 0);

    let (report, _) = svc.shutdown();
    assert_eq!(report.events, 3);
    assert_eq!(report.final_health, ServiceHealth::Healthy);
}
